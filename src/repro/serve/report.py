"""Serve-mode views: /metrics text, the live dashboard, timeline checks.

Three consumers read the same state:

- :func:`render_prometheus` — the ``/metrics`` scrape body, in the
  Prometheus exposition idiom (counters/gauges verbatim, distributions
  as count/sum/quantile rows) so standard tooling and the CI smoke job
  can grep it.
- :func:`render_serve_dashboard` — the operator console: heartbeat
  panel, per-endpoint latency sparklines from Monarch, alert and
  admission state.
- :func:`normalize_alert_timeline` / :func:`check_timeline` — the
  golden comparison for wall-clock runs.  Real-time timelines cannot be
  compared byte-for-byte (timestamps and burn values jitter), so the
  golden pins what *must* be invariant: per-(slo, severity) state
  transitions in order, required final states, and exemplar presence on
  firing events.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.obs.dashboard import render_heartbeat, render_panel
from repro.obs.metrics import MetricRegistry
from repro.obs.monarch import Monarch

__all__ = ["render_prometheus", "render_serve_dashboard",
           "normalize_alert_timeline", "check_timeline"]

_QUANTILES = ((50, "0.5"), (95, "0.95"), (99, "0.99"))


def _metric_name(name: str) -> str:
    """Monarch metric path -> Prometheus metric name."""
    return name.replace("/", "_").replace("-", "_").replace(".", "_")


def _label_text(labelset: Tuple[Tuple[str, str], ...],
                extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = tuple(labelset) + tuple(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + inner + "}"


def render_prometheus(registry: MetricRegistry) -> str:
    """The registry in Prometheus exposition format (sorted, stable)."""
    lines: List[str] = []
    for (name, labelset), counter in sorted(registry.counters.items()):
        lines.append(f"{_metric_name(name)}_total"
                     f"{_label_text(labelset)} {counter.value:g}")
    for (name, labelset), gauge in sorted(registry.gauges.items()):
        lines.append(f"{_metric_name(name)}"
                     f"{_label_text(labelset)} {gauge.read():g}")
    for (name, labelset), dist in sorted(registry.distributions.items()):
        base = _metric_name(name)
        lines.append(f"{base}_count{_label_text(labelset)} {dist.count}")
        lines.append(f"{base}_sum{_label_text(labelset)} {dist.sum:g}")
        for q, tag in _QUANTILES:
            lines.append(f"{base}{_label_text(labelset, (('quantile', tag),))}"
                         f" {dist.percentile(q):g}")
    return "\n".join(lines) + "\n"


def render_serve_dashboard(snapshot: Dict[str, float], monarch: Monarch,
                           alerts, admission, title: str = "serve") -> str:
    """The live operator view: heartbeat, latency panels, alert state."""
    sections = [render_heartbeat(snapshot, title=title)]
    sections.append(render_panel(monarch, "serve/p99_latency_s",
                                 group_label="endpoint"))
    sections.append(render_panel(monarch, "alerts/burn_rate_short",
                                 group_label="severity"))
    lines = ["-- alerts"]
    firing = alerts.firing()
    if not firing:
        lines.append("  (none firing)")
    for spec, rule in firing:
        lines.append(f"  FIRING {spec.name} [{rule.severity}]")
    lines.append(f"-- admission: "
                 f"{'SHEDDING' if admission.shedding else 'admitting'} "
                 f"({admission.shed_total} shed, "
                 f"{admission.transitions} transitions)")
    sections.append("\n".join(lines))
    return "\n".join(sections)


# ----------------------------------------------------------------------
# Golden timeline comparison
# ----------------------------------------------------------------------
def normalize_alert_timeline(events: Sequence) -> Dict[str, List[str]]:
    """``"slo/severity" -> ordered state names`` from alert events.

    Accepts :class:`~repro.obs.alerting.AlertEvent` objects or their
    ``to_dict`` documents (a manifest's ``alerts`` list).  Timestamps
    and burn values are deliberately dropped: on a wall-clock run they
    jitter with the host, while the transition *order* is the invariant
    the golden pins.
    """
    out: Dict[str, List[str]] = {}
    docs = [e.to_dict() if hasattr(e, "to_dict") else dict(e)
            for e in events]
    for doc in sorted(docs, key=lambda d: (float(d["t"]), str(d["slo"]),
                                           str(d["severity"]))):
        key = f"{doc['slo']}/{doc['severity']}"
        out.setdefault(key, []).append(str(doc["state"]))
    return out


def _is_subsequence(needle: Sequence[str], haystack: Sequence[str]) -> bool:
    it = iter(haystack)
    return all(any(got == want for got in it) for want in needle)


def check_timeline(events: Sequence, golden: Dict) -> List[str]:
    """Validate an alert timeline against a golden document.

    The golden schema::

        {"required": {"slo/severity": ["pending", "firing", "resolved"]},
         "final":    {"slo/severity": "resolved"},
         "require_exemplars": ["slo/severity"]}

    ``required`` sequences must appear *in order* (as a subsequence, so
    a flapping alert that fires twice still passes); ``final`` pins the
    last state *ignoring trailing pending edges* (a breach that subsided
    before escalating emits no resolution event, so a stray ``pending``
    at the tail is noise, not an outcome); ``require_exemplars`` demands
    at least one firing event with exemplar trace ids attached.  Returns
    a list of human-readable problems — empty means the timeline matches.
    """
    problems: List[str] = []
    observed = normalize_alert_timeline(events)
    for key, want in golden.get("required", {}).items():
        got = observed.get(key, [])
        if not _is_subsequence(list(want), got):
            problems.append(f"{key}: expected subsequence {want}, got {got}")
    for key, want_final in golden.get("final", {}).items():
        got = [s for s in observed.get(key, []) if s != "pending"]
        if not got or got[-1] != want_final:
            problems.append(f"{key}: expected final state {want_final!r}, "
                            f"got {got[-1] if got else None!r}")
    docs = [e.to_dict() if hasattr(e, "to_dict") else dict(e)
            for e in events]
    for key in golden.get("require_exemplars", []):
        slo, _sep, severity = key.partition("/")
        hits = [d for d in docs
                if d["slo"] == slo and d["severity"] == severity
                and d["state"] == "firing" and d.get("exemplars")]
        if not hits:
            problems.append(f"{key}: no firing event carries exemplars")
    return problems
