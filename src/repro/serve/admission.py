"""Alert-driven admission control: shed load while the SLO burns.

The robustness loop the paper's fleets close in production: when the
latency SLO's page rule fires, serving more traffic only digs the
latency hole deeper, so the server starts answering work endpoints with
503 + ``Retry-After`` until the burn recovers.  The controller is a
pure consumer of :class:`~repro.obs.alerting.AlertManager` state — it
adds no new detection logic, which is the point: the same burn-rate
rules that page a human also gate the server's own front door.

Every transition is observable three ways:

- a Monarch gauge series ``serve/shedding`` (0/1),
- ``shedding``/``recovered`` :class:`~repro.obs.alerting.AlertEvent`
  records (severity ``admission``) that merge into the incident report
  and the run manifest next to the alerts that caused them,
- per-request ``serve/shed`` counters and span annotations from the app.

The controller refreshes from a ``sim.every`` task created *after* the
alert manager, so at coincident times the engine's FIFO tie-break
evaluates the rules first and the admission decision reads this
interval's state, not last interval's.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.obs.alerting import AlertEvent, AlertManager
from repro.obs.monarch import Monarch
from repro.sim.engine import Simulator

__all__ = ["AdmissionController"]

#: The synthetic severity admission transitions are recorded under.
ADMISSION_SEVERITY = "admission"


class AdmissionController:
    """Sheds load while any gating (SLO, severity) alert is firing."""

    def __init__(self, sim: Simulator, alerts: AlertManager,
                 monarch: Optional[Monarch] = None,
                 interval_s: Optional[float] = None,
                 slo_names: Optional[Sequence[str]] = None,
                 gate_severity: str = "page",
                 retry_after_s: float = 1.0):
        self.sim = sim
        self.alerts = alerts
        self.monarch = monarch
        self.slo_names = None if slo_names is None else set(slo_names)
        self.gate_severity = gate_severity
        self.retry_after_s = retry_after_s
        self.shedding = False
        self.shed_total = 0
        self.transitions = 0
        #: ``shedding``/``recovered`` transition events, manifest-ready.
        self.events: List[AlertEvent] = []
        self._task = sim.every(interval_s or alerts.interval_s,
                               self.refresh,
                               start_after=interval_s or alerts.interval_s)

    def stop(self) -> None:
        """Stop the periodic refresh chain."""
        self._task.cancel()

    # ------------------------------------------------------------------
    def _gating(self):
        """The firing (spec, rule) pairs that gate admission."""
        return [(spec, rule) for spec, rule in self.alerts.firing()
                if rule.severity == self.gate_severity
                and (self.slo_names is None or spec.name in self.slo_names)]

    def refresh(self) -> None:
        """Re-read alert state; record a transition event if it changed."""
        gating = self._gating()
        want_shed = bool(gating)
        if want_shed != self.shedding:
            self.shedding = want_shed
            self.transitions += 1
            slo = gating[0][0].name if gating else self._last_slo()
            t = self.sim.now
            self.events.append(AlertEvent(
                t=t, slo=slo, severity=ADMISSION_SEVERITY,
                state="shedding" if want_shed else "recovered",
                burn_long=self._last_burn(slo, "long"),
                burn_short=self._last_burn(slo, "short"),
            ))
        if self.monarch is not None:
            self.monarch.write("serve/shedding", {}, self.sim.now,
                               1.0 if self.shedding else 0.0)

    def should_admit(self) -> bool:
        """Cheap per-request gate (state changes only on :meth:`refresh`)."""
        return not self.shedding

    def count_shed(self) -> None:
        """Record one request turned away."""
        self.shed_total += 1

    # ------------------------------------------------------------------
    def _last_slo(self) -> str:
        for event in reversed(self.events):
            return event.slo
        return "unknown"

    def _last_burn(self, slo: str, which: str) -> float:
        """The gating SLO's latest recorded burn rate (0 when absent)."""
        if self.monarch is None:
            return 0.0
        _times, values = self.monarch.read(
            f"alerts/burn_rate_{which}",
            {"slo": slo, "severity": self.gate_severity})
        return float(values[-1]) if len(values) else 0.0
