"""Serve mode: the study engine as a live, self-observing service.

The paper characterizes RPCs by watching production services through
Monarch, Dapper, and GWP.  This package turns the reproduction's own
study engine into such a service: a stdlib-asyncio HTTP server fronting
the content-addressed study cache, observed — on real time — by the
very observability stack built in the earlier PRs, down to burn-rate
paging and alert-driven load shedding.

- :mod:`repro.serve.http` — just-enough HTTP/1.1 on asyncio streams
- :mod:`repro.serve.app` — the wired application (:class:`ServeApp`)
- :mod:`repro.serve.admission` — alert-driven load shedding
- :mod:`repro.serve.loadgen` — open/closed-loop Zipf + diurnal traffic
- :mod:`repro.serve.report` — /metrics text, dashboard, golden timeline

See ``docs/SERVING.md`` for the endpoint reference and the dogfood
walkthrough in ``examples/serve_dogfood.py``.
"""

from repro.serve.admission import AdmissionController
from repro.serve.app import ServeApp, ServeConfig, default_serve_slos
from repro.serve.http import HttpRequest, HttpResponse
from repro.serve.loadgen import (
    EndpointSpec,
    LoadGenConfig,
    LoadGenResult,
    ZipfPopularity,
    default_endpoints,
    run_loadgen,
)
from repro.serve.report import (
    check_timeline,
    normalize_alert_timeline,
    render_prometheus,
    render_serve_dashboard,
)

__all__ = [
    "AdmissionController", "ServeApp", "ServeConfig", "default_serve_slos",
    "HttpRequest", "HttpResponse",
    "EndpointSpec", "LoadGenConfig", "LoadGenResult", "ZipfPopularity",
    "default_endpoints", "run_loadgen",
    "check_timeline", "normalize_alert_timeline", "render_prometheus",
    "render_serve_dashboard",
]
