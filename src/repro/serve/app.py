"""The serve-mode application: the study engine behind an HTTP front.

This is the repo's own "production service" — the workload the paper's
observability triad exists to watch.  :class:`ServeApp` wires a normal
:class:`~repro.sim.engine.Simulator` (the time domain every observer
already runs on) to real time: a housekeeping task periodically calls
``sim.run_until(wall_elapsed)``, so the Monarch scraper, the burn-rate
alert manager, the adaptive trace sampler, and the admission controller
all run *unchanged* against the host clock.  Nothing in the obs stack
knows it left the simulator.

Per request, the app:

1. mints a trace id and offers it to Dapper head sampling
   (:meth:`~repro.obs.dapper.DapperCollector.sample_root`, steered by
   the :class:`~repro.obs.alerting.AdaptiveSamplingController`),
2. times the parse → cache lookup → compute → serialize phases and, if
   sampled, records them as a span tree,
3. observes latency into ``serve/request_latency_s`` (with the trace id
   as exemplar) and the error indicator into ``serve/request_error`` —
   the two metrics the default SLO specs compile burn-rate rules over,
4. consults the :class:`~repro.serve.admission.AdmissionController`:
   while the latency SLO's page rule fires, work endpoints answer 503 +
   ``Retry-After`` (shed responses are counted but *not* observed into
   the latency distribution, so the burn window drains and the alert —
   and the shedding — can resolve).

A latency regression can be injected (``slowdown``) to rehearse the
full incident loop: page fires with exemplar trace ids → shed →
recover → a manifest whose alert timeline a golden can pin.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cache import DEFAULT_CACHE_DIR, StudyCache, study_key
from repro.core.parallel import run_tree_study_cached
from repro.obs.alerting import (
    AdaptiveSamplingController,
    AlertManager,
    SloSpec,
)
from repro.obs.dapper import DapperCollector
from repro.obs.manifest import ManifestBuilder, RunManifest
from repro.obs.metrics import MetricRegistry
from repro.obs.monarch import Monarch, MonarchScraper
from repro.obs.query import SpanListSource, group_by_method
from repro.obs.query import traces as warehouse_traces
from repro.obs.spanstore import SpanStore, SpanStoreSink
from repro.rpc.errors import StatusCode
from repro.rpc.stack import LatencyBreakdown
from repro.rpc.tracing import Span
from repro.serve.admission import AdmissionController
from repro.serve.http import (
    BadRequest,
    HttpRequest,
    HttpResponse,
    read_request,
    write_response,
)
from repro.serve.report import render_prometheus, render_serve_dashboard
from repro.sim.clock import WallClock
from repro.sim.engine import Simulator
from repro.sim.random import derive_seed

__all__ = ["ServeConfig", "ServeApp", "default_serve_slos"]

#: Request phases, in span-tree order.
PHASES = ("parse", "cache_lookup", "compute", "serialize")

#: Endpoints that admission control may shed (health and observability
#: endpoints always answer: a shedding server must stay diagnosable).
SHEDDABLE = frozenset({"study", "whatif"})


def default_serve_slos(latency_threshold_s: float,
                       window_s: float) -> List[SloSpec]:
    """The serve-mode SLO pair: request latency and error rate.

    ``for_s=0`` keeps escalation deterministic at serve cadences: a
    breach goes pending on one evaluation and fires on the next.  The
    error SLO reuses the latency machinery on a 0/1 indicator series —
    an observation of 1.0 (a 5xx) lands above the 0.5 "threshold", so
    burn rate *is* the error rate over the window, scaled by the budget.
    """
    return [
        SloSpec(name="serve-latency", threshold_s=latency_threshold_s,
                window_s=window_s, target=0.99,
                metric="serve/request_latency_s", for_s=0.0),
        SloSpec(name="serve-errors", threshold_s=0.5,
                window_s=window_s, target=0.99,
                metric="serve/request_error", for_s=0.0),
    ]


@dataclass
class ServeConfig:
    """Everything serve mode can be told; JSON-safe for the manifest."""

    host: str = "127.0.0.1"
    port: int = 8123
    seed: int = 7
    #: Monarch scrape + alert evaluation + sampler cadence (real seconds).
    scrape_interval_s: float = 0.25
    #: Housekeeping tick driving ``sim.run_until(wall)``.
    tick_s: float = 0.05
    #: Latency SLO: 99% of requests within this bound.
    latency_threshold_s: float = 0.05
    #: SLO window (real seconds); small so burn windows suit live demos.
    slo_window_s: float = 240.0
    #: Adaptive head-sampling budget (root traces per scrape interval).
    trace_budget: float = 64.0
    retry_after_s: float = 1.0
    cache_dir: str = DEFAULT_CACHE_DIR
    #: Precompute the default study/what-if results before serving, so
    #: steady-state traffic is cache-hot (and demo latencies honest).
    prewarm: bool = True
    #: Injected regression: after ``slowdown_after_s`` of uptime, work
    #: endpoints dwell an extra ``slowdown_extra_s`` in their compute
    #: phase, for ``slowdown_duration_s`` seconds.
    slowdown_after_s: Optional[float] = None
    slowdown_extra_s: float = 0.0
    slowdown_duration_s: float = 0.0
    #: Default study parameters (also the prewarmed key).
    study_methods: int = 40
    study_trees: int = 30
    study_max_nodes: int = 2000
    #: Default what-if parameters (also the prewarmed key).
    whatif_service: str = "Bigtable"
    whatif_duration_s: float = 2.0
    #: When set, spool sampled spans into a columnar span warehouse under
    #: this directory (run key ``serve``) instead of an in-memory list;
    #: ``/debug/traces`` and ``/debug/query`` then read the warehouse.
    warehouse_dir: Optional[str] = None
    warehouse_shard_size: int = 4096


def _compute_whatif(service: str, method: Optional[str], duration_s: float,
                    seed: int, percentile: float) -> Dict[str, object]:
    """Run a small DES study and distill one service's what-if answer."""
    from repro.core.whatif import what_if_for_service
    from repro.studies import run_service_study
    from repro.workloads.services import SERVICE_SPECS

    method = method or SERVICE_SPECS[service].method
    study = run_service_study(services=[service], n_clusters=1,
                              duration_s=duration_s, seed=seed,
                              dapper_sampling=1.0)
    result = what_if_for_service(study.dapper, service, method,
                                 tail_percentile=percentile)
    return {
        "service": service,
        "method": method,
        "duration_s": duration_s,
        "tail_percentile": percentile,
        "dominant": result.dominant(),
        "percent_rescued": dict(result.percent_rescued),
        "n_tail": result.n_tail,
    }


def whatif_cached(cache: StudyCache, service: str, method: Optional[str],
                  duration_s: float, seed: int, percentile: float
                  ) -> Tuple[Dict[str, object], bool]:
    """``(what-if document, was_cache_hit)`` through the study cache."""
    key = study_key("serve-whatif", seed, {
        "service": service,
        "method": method,
        "duration_s": duration_s,
    }, params={"percentile": percentile})
    return cache.get_or_compute(
        key, lambda: _compute_whatif(service, method, duration_s, seed,
                                     percentile))


def _compute_theory_profile(service: str, method: Optional[str],
                            duration_s: float, seed: int) -> Dict[str, object]:
    """Run the ground-truth DES once and distill its component profile."""
    from repro.studies import run_service_study
    from repro.theory.convolve import ComponentProfile
    from repro.workloads.services import SERVICE_SPECS

    method = method or SERVICE_SPECS[service].method
    study = run_service_study(services=[service], n_clusters=1,
                              duration_s=duration_s, seed=seed,
                              dapper_sampling=1.0)
    matrix = study.dapper.matrix_for_method(f"{service}/{method}")
    profile = ComponentProfile.from_matrix(matrix, service=service)
    return profile.to_dict()


def _theory_profile_key(service: str, method: Optional[str],
                        duration_s: float, seed: int) -> str:
    return study_key("serve-theory-profile", seed, {
        "service": service,
        "method": method,
        "duration_s": duration_s,
    })


def theory_profile_cached(cache: StudyCache, service: str,
                          method: Optional[str], duration_s: float,
                          seed: int) -> Tuple[Dict[str, object], bool]:
    """``(profile document, was_cache_hit)`` through the study cache.

    The profile is percentile-only telemetry — a few hundred bytes —
    and is the *only* DES-derived input the analytic path needs, so one
    cached study answers every (percentile, mode=analytic) query.
    """
    key = _theory_profile_key(service, method, duration_s, seed)
    return cache.get_or_compute(
        key, lambda: _compute_theory_profile(service, method, duration_s,
                                             seed))


def whatif_analytic(cache: StudyCache, service: str, method: Optional[str],
                    duration_s: float, seed: int, percentile: float,
                    engines: Optional[Dict[str, object]] = None
                    ) -> Tuple[Dict[str, object], bool]:
    """The closed-form what-if answer from the cached profile.

    ``was_cache_hit`` reports the *profile* lookup. ``engines`` is an
    optional in-process memo (profile key -> :class:`AnalyticWhatIf`):
    the engine's component convolutions are built once per profile and
    every subsequent query is pure array lookups — the steady-state
    per-query cost serve mode advertises (see docs/PERFORMANCE.md,
    "Analytic fast path").
    """
    from repro.theory.convolve import (WHATIF_RESCUED_TOLERANCE_PTS,
                                       AnalyticWhatIf, ComponentProfile)
    from repro.workloads.services import SERVICE_SPECS

    doc, hit = theory_profile_cached(cache, service, method, duration_s,
                                     seed)
    key = _theory_profile_key(service, method, duration_s, seed)
    engine = engines.get(key) if engines is not None else None
    if engine is None:
        engine = AnalyticWhatIf(ComponentProfile.from_dict(doc))
        if engines is not None:
            engines[key] = engine
    result = engine.result(percentile)
    return {
        "service": service,
        "method": method or SERVICE_SPECS[service].method,
        "duration_s": duration_s,
        "tail_percentile": percentile,
        "dominant": result.dominant(),
        "percent_rescued": dict(result.percent_rescued),
        "n_tail": result.n_tail,
        "mode": "analytic",
        "tolerance_pts": WHATIF_RESCUED_TOLERANCE_PTS,
        "profile_n_samples": engine.profile.n_samples,
    }, hit


@dataclass
class _RequestTimer:
    """Wall-time phase accounting for one request's span tree."""

    phase_s: Dict[str, float] = field(default_factory=dict)

    def charge(self, phase: str, elapsed_s: float) -> None:
        self.phase_s[phase] = self.phase_s.get(phase, 0.0) + elapsed_s


class ServeApp:
    """The wired application; see the module docstring for the loop."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 slos: Optional[Sequence[SloSpec]] = None):
        self.config = config or ServeConfig()
        cfg = self.config
        self.wall = WallClock()
        self.sim = Simulator()
        self.monarch = Monarch()
        self.registry = MetricRegistry()
        self.dapper = DapperCollector(
            sampling_rate=1.0,
            rng=np.random.default_rng(derive_seed(cfg.seed, "serve",
                                                  "dapper")))
        self.span_sink: Optional[SpanStoreSink] = None
        if cfg.warehouse_dir is not None:
            self.span_sink = SpanStoreSink(
                SpanStore(cfg.warehouse_dir, "serve"),
                shard_size=cfg.warehouse_shard_size)
            self.dapper.spool_to(self.span_sink, keep_in_memory=False)
        # Construction order is load-bearing (engine FIFO tie-break):
        # scrape, then alert evaluation, then sampling adjustment, then
        # admission refresh, all on the same cadence.
        self.scraper = MonarchScraper(self.sim, self.monarch,
                                      interval_s=cfg.scrape_interval_s,
                                      wall_clock=self.wall)
        self.scraper.register(self.registry)
        self.scraper.add_collector(self._collect_endpoint_percentiles)
        self.slos = list(slos) if slos is not None else default_serve_slos(
            cfg.latency_threshold_s, cfg.slo_window_s)
        self.alerts = AlertManager(self.sim, self.monarch, self.slos,
                                   interval_s=cfg.scrape_interval_s,
                                   wall_clock=self.wall)
        self.sampling = AdaptiveSamplingController(
            self.sim, self.dapper, interval_s=cfg.scrape_interval_s,
            trace_budget=cfg.trace_budget, alerts=self.alerts)
        self.admission = AdmissionController(
            self.sim, self.alerts, self.monarch,
            slo_names=["serve-latency"], retry_after_s=cfg.retry_after_s)
        self.cache = StudyCache(cfg.cache_dir)
        # Profile key -> AnalyticWhatIf: the convolution engines behind
        # /v1/whatif?mode=analytic, built once per profile.
        self._whatif_engines: Dict[str, object] = {}
        self.requests_total = 0
        self.errors_total = 0
        self._catalogs: Dict[Tuple[int, int], object] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._housekeeping_task: Optional[asyncio.Task] = None
        self._routes = {
            "/healthz": ("healthz", self._handle_healthz),
            "/metrics": ("metrics", self._handle_metrics),
            "/debug/traces": ("traces", self._handle_traces),
            "/debug/query": ("query", self._handle_query),
            "/debug/dashboard": ("dashboard", self._handle_dashboard),
            "/v1/study": ("study", self._handle_study),
            "/v1/whatif": ("whatif", self._handle_whatif),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Prewarm caches, bind the socket, start housekeeping."""
        if self.config.prewarm:
            self.prewarm()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port)
        self._housekeeping_task = asyncio.ensure_future(self._housekeep())

    @property
    def listen_address(self) -> str:
        """``host:port`` actually bound (resolves an ephemeral port 0)."""
        if self._server is None or not self._server.sockets:
            return f"{self.config.host}:{self.config.port}"
        host, port = self._server.sockets[0].getsockname()[:2]
        return f"{host}:{port}"

    @property
    def port(self) -> int:
        """The bound TCP port."""
        return int(self.listen_address.rsplit(":", 1)[1])

    def prewarm(self) -> None:
        """Compute the default study + what-if entries into the cache."""
        cfg = self.config
        self._study_result(cfg.study_methods, cfg.study_trees, cfg.seed,
                           cfg.study_max_nodes)
        whatif_cached(self.cache, cfg.whatif_service, None,
                      cfg.whatif_duration_s, cfg.seed, 95.0)
        theory_profile_cached(self.cache, cfg.whatif_service, None,
                              cfg.whatif_duration_s, cfg.seed)

    async def stop(self) -> None:
        """Tear down: close the socket, stop periodic observers."""
        if self._housekeeping_task is not None:
            self._housekeeping_task.cancel()
            try:
                await self._housekeeping_task
            except asyncio.CancelledError:
                pass
            self._housekeeping_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.advance()  # final catch-up so the last scrape lands
        self.scraper.stop()
        self.alerts.stop()
        self.sampling.stop()
        self.admission.stop()
        if self.span_sink is not None and not self.span_sink.closed:
            # Commit the warehouse so the run's spans survive shutdown.
            self.span_sink.close()

    async def wait_for_quiet(self, timeout_s: float = 30.0,
                             poll_s: float = 0.1) -> bool:
        """Wait until no alert fires and admission recovered (or timeout)."""
        deadline_s = self.wall() + timeout_s
        while self.wall() < deadline_s:
            if not self.alerts.firing() and not self.admission.shedding:
                return True
            await asyncio.sleep(poll_s)
        return False

    async def _housekeep(self) -> None:
        while True:
            await asyncio.sleep(self.config.tick_s)
            self.advance()

    def advance(self) -> None:
        """Drive the obs time domain up to the wall clock."""
        target_s = self.wall()
        if target_s > self.sim.now:
            self.sim.run_until(target_s)

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except BadRequest:
                    self.errors_total += 1
                    write_response(writer, HttpResponse(
                        status=400, body=b'{"error": "bad request"}'),
                        keep_alive=False)
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self.handle(request)
                keep = request.keep_alive
                write_response(writer, response, keep_alive=keep)
                await writer.drain()
                if not keep:
                    break
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # The instrumented request path
    # ------------------------------------------------------------------
    async def handle(self, request: HttpRequest) -> HttpResponse:
        """Serve one request: trace it, meter it, maybe shed it."""
        endpoint, handler = self._routes.get(request.path,
                                             ("unknown", None))
        start_s = self.wall()
        trace_id = self.sim.mint_id("trace")
        sampled = self.dapper.sample_root(trace_id, f"serve/{endpoint}")
        self.requests_total += 1
        self.registry.counter("serve/requests",
                              {"endpoint": endpoint}).add()

        if endpoint in SHEDDABLE and not self.admission.should_admit():
            self.admission.count_shed()
            self.registry.counter("serve/shed",
                                  {"endpoint": endpoint}).add()
            if sampled:
                self._record_spans(trace_id, endpoint, start_s,
                                   {"parse": 0.0},
                                   status=StatusCode.RESOURCE_EXHAUSTED,
                                   annotations={"shed": 1.0})
            return HttpResponse(
                status=503,
                body=b'{"error": "shedding load: latency SLO burning"}',
                headers={"retry-after":
                         f"{self.admission.retry_after_s:g}"})

        timer = _RequestTimer()
        status = 200
        try:
            if handler is None:
                status, body = 404, {"error": f"no route {request.path}"}
            else:
                status, body = await handler(request, timer)
        except BadRequest as err:
            status, body = 400, {"error": str(err)}
        except Exception as err:  # the 500 backstop: serve must not die
            status, body = 500, {"error": f"{type(err).__name__}: {err}"}

        serialize_start_s = self.wall()
        if isinstance(body, (bytes, str)):
            payload = body.encode() if isinstance(body, str) else body
            content_type = "text/plain; charset=utf-8"
        else:
            payload = json.dumps(body, sort_keys=True).encode()
            content_type = "application/json"
        timer.charge("serialize", self.wall() - serialize_start_s)

        latency_s = self.wall() - start_s
        self.registry.distribution(
            "serve/request_latency_s",
            {"endpoint": endpoint}).observe(latency_s, exemplar=trace_id)
        self.registry.distribution(
            "serve/request_error",
            {"endpoint": endpoint}).observe(1.0 if status >= 500 else 0.0)
        if status >= 500:
            self.errors_total += 1
            self.registry.counter("serve/errors",
                                  {"endpoint": endpoint}).add()
        if sampled:
            self._record_spans(
                trace_id, endpoint, start_s, timer.phase_s,
                status=(StatusCode.OK if status < 500
                        else StatusCode.INTERNAL),
                response_bytes=len(payload))
        return HttpResponse(status=status, body=payload,
                            content_type=content_type)

    def _record_spans(self, trace_id: int, endpoint: str, start_s: float,
                      phase_s: Dict[str, float],
                      status: StatusCode = StatusCode.OK,
                      response_bytes: int = 0,
                      annotations: Optional[Dict[str, float]] = None
                      ) -> None:
        """One root span + one child per timed phase."""
        root_id = self.sim.mint_id("span")
        total_s = sum(phase_s.values())
        self.dapper.record(Span(
            trace_id=trace_id, span_id=root_id, parent_id=None,
            service="serve", method=endpoint,
            client_cluster="client", server_cluster="serve",
            server_machine=self.listen_address, start_time=start_s,
            breakdown=LatencyBreakdown(server_application=total_s),
            status=status, response_bytes=response_bytes,
            annotations=dict(annotations or {})))
        offset_s = start_s
        for phase in PHASES:
            if phase not in phase_s:
                continue
            self.dapper.record(Span(
                trace_id=trace_id, span_id=self.sim.mint_id("span"),
                parent_id=root_id, service="serve",
                method=f"{endpoint}/{phase}",
                client_cluster="serve", server_cluster="serve",
                server_machine=self.listen_address, start_time=offset_s,
                breakdown=LatencyBreakdown(
                    server_application=phase_s[phase]),
                status=status))
            offset_s += phase_s[phase]

    def _slowdown_active(self) -> bool:
        cfg = self.config
        if cfg.slowdown_after_s is None:
            return False
        elapsed_s = self.wall()
        return (cfg.slowdown_after_s <= elapsed_s
                < cfg.slowdown_after_s + cfg.slowdown_duration_s)

    async def _maybe_slow(self, timer: _RequestTimer) -> None:
        """The injected regression: an extra compute-phase dwell."""
        if self._slowdown_active():
            dwell_start_s = self.wall()
            await asyncio.sleep(self.config.slowdown_extra_s)
            timer.charge("compute", self.wall() - dwell_start_s)

    # ------------------------------------------------------------------
    # Endpoint handlers (each returns (status, body))
    # ------------------------------------------------------------------
    async def _handle_healthz(self, request: HttpRequest,
                              timer: _RequestTimer):
        return 200, {"status": "ok", "uptime_s": round(self.wall(), 3),
                     "shedding": self.admission.shedding}

    async def _handle_metrics(self, request: HttpRequest,
                              timer: _RequestTimer):
        return 200, render_prometheus(self.registry)

    def span_source(self):
        """Where span queries read from: warehouse sink or memory."""
        if self.span_sink is not None:
            return self.span_sink
        return SpanListSource(self.dapper.spans)

    def trace_trees(self) -> Dict[int, List[Span]]:
        """Spans grouped by trace id, from whichever store holds them."""
        if self.span_sink is not None:
            return warehouse_traces(self.span_sink)
        return self.dapper.traces()

    async def _handle_traces(self, request: HttpRequest,
                             timer: _RequestTimer):
        limit = int(request.query.get("limit", "50"))
        traces = []
        for tid, spans in sorted(self.trace_trees().items(),
                                 reverse=True)[:max(limit, 0)]:
            root = next((s for s in spans if s.parent_id is None), spans[0])
            traces.append({
                "trace_id": tid,
                "root": root.full_method,
                "spans": len(spans),
                "total_ms": round(root.breakdown.total() * 1e3, 3),
            })
        return 200, {"traces": traces,
                     "recorded": self.dapper.spans_recorded}

    async def _handle_query(self, request: HttpRequest,
                            timer: _RequestTimer):
        """Warehouse drill-down: group-by service·method with percentiles."""
        from repro.obs.query import SpanFilter

        query = request.query
        try:
            quantiles = [float(q) / 100.0 for q in
                         query.get("percentiles", "50,95,99").split(",")]
        except ValueError as err:
            raise BadRequest(f"bad percentiles: {err}") from err
        if not all(0.0 <= q <= 1.0 for q in quantiles):
            raise BadRequest("percentiles must be in [0, 100]")
        where = SpanFilter(
            service=query.get("service") or None,
            method=query.get("method") or None,
            ok_only=query.get("ok_only", "1") not in ("0", "false"),
        )
        metric = query.get("metric", "total")
        try:
            groups = group_by_method(self.span_source(), where,
                                     metric=metric)
        except KeyError as err:
            raise BadRequest(str(err)) from err
        rows = []
        for (service, method), agg in sorted(groups.items()):
            rows.append({
                "service": service,
                "method": method,
                "count": agg.count,
                "errors": agg.error_count,
                "mean_ms": round(agg.mean_value_s * 1e3, 6),
                **{f"p{q * 100:g}_ms": round(agg.quantile(q) * 1e3, 6)
                   for q in quantiles},
            })
        return 200, {
            "metric": metric,
            "warehouse": self.span_sink is not None,
            "recorded": self.dapper.spans_recorded,
            "groups": rows,
        }

    async def _handle_dashboard(self, request: HttpRequest,
                                timer: _RequestTimer):
        return 200, render_serve_dashboard(
            self.heartbeat_snapshot(), self.monarch, self.alerts,
            self.admission, title=f"serve {self.listen_address}")

    async def _handle_study(self, request: HttpRequest,
                            timer: _RequestTimer):
        parse_start_s = self.wall()
        if request.method != "POST":
            return 405, {"error": "POST a study request"}
        try:
            params = json.loads(request.body or b"{}")
        except json.JSONDecodeError as err:
            raise BadRequest(f"study body is not JSON: {err}") from err
        if not isinstance(params, dict):
            raise BadRequest("study body must be a JSON object")
        cfg = self.config
        study = params.get("study", "trees")
        if study != "trees":
            raise BadRequest(f"unknown study {study!r} (have: trees)")
        methods = min(int(params.get("methods", cfg.study_methods)), 2000)
        trees = min(int(params.get("trees", cfg.study_trees)), 2000)
        seed = int(params.get("seed", cfg.seed))
        max_nodes = min(int(params.get("max_nodes", cfg.study_max_nodes)),
                        50000)
        timer.charge("parse", self.wall() - parse_start_s)

        await self._maybe_slow(timer)
        work_start_s = self.wall()
        result, hit = self._study_result(methods, trees, seed, max_nodes)
        timer.charge("cache_lookup" if hit else "compute",
                     self.wall() - work_start_s)
        return 200, {
            "study": "trees",
            "cache_hit": hit,
            "methods": methods,
            "trees": trees,
            "seed": seed,
            "render": result.render(),
        }

    def _study_result(self, methods: int, trees: int, seed: int,
                      max_nodes: int):
        from repro.workloads.catalog import CatalogConfig, build_catalog

        catalog_key = (methods, seed)
        if catalog_key not in self._catalogs:
            self._catalogs[catalog_key] = build_catalog(
                CatalogConfig(n_methods=methods, seed=seed))
        return run_tree_study_cached(self._catalogs[catalog_key],
                                     n_trees=trees, seed=seed,
                                     max_nodes=max_nodes, cache=self.cache)

    async def _handle_whatif(self, request: HttpRequest,
                             timer: _RequestTimer):
        from repro.workloads.services import SERVICE_SPECS

        parse_start_s = self.wall()
        query = request.query
        service = query.get("service", self.config.whatif_service)
        if service not in SERVICE_SPECS:
            raise BadRequest(f"unknown service {service!r} "
                             f"(have: {sorted(SERVICE_SPECS)})")
        method = query.get("method") or None
        duration_s = float(query.get("duration_s",
                                     self.config.whatif_duration_s))
        percentile = float(query.get("percentile", "95"))
        seed = int(query.get("seed", self.config.seed))
        mode = query.get("mode", "des")
        if mode not in ("des", "analytic"):
            raise BadRequest(f"unknown mode {mode!r} (have: des, analytic)")
        timer.charge("parse", self.wall() - parse_start_s)

        await self._maybe_slow(timer)
        work_start_s = self.wall()
        if mode == "analytic":
            doc, hit = whatif_analytic(self.cache, service, method,
                                       duration_s, seed, percentile,
                                       engines=self._whatif_engines)
        else:
            doc, hit = whatif_cached(self.cache, service, method,
                                     duration_s, seed, percentile)
            doc = dict(doc, mode="des")
        timer.charge("cache_lookup" if hit else "compute",
                     self.wall() - work_start_s)
        return 200, dict(doc, cache_hit=hit)

    # ------------------------------------------------------------------
    # Observability surfaces
    # ------------------------------------------------------------------
    def _collect_endpoint_percentiles(self, t: float):
        """Scalar p99 series per endpoint (the dashboard's panels)."""
        for (name, labelset), dist in self.registry.distributions.items():
            if name != "serve/request_latency_s" or not dist.count:
                continue
            yield ("serve/p99_latency_s", dict(labelset),
                   dist.percentile(99))

    def heartbeat_snapshot(self) -> Dict[str, float]:
        """A :func:`~repro.obs.dashboard.render_heartbeat` snapshot."""
        wall_s = self.wall()
        return {
            "sim_time_s": self.sim.now,
            "events_fired": self.sim.events_fired,
            "events_scheduled": (self.sim.events_fired
                                 + self.sim.pending_events),
            "rpcs_completed": self.requests_total,
            "hedges": 0,
            "wall_s": wall_s,
            "events_per_s": (self.sim.events_fired / wall_s
                             if wall_s > 0 else 0.0),
            "sim_time_rate": self.sim.now / wall_s if wall_s > 0 else 0.0,
        }

    def endpoint_p99_s(self) -> Dict[str, float]:
        """Final per-endpoint p99 latency, for the shutdown manifest."""
        out: Dict[str, float] = {}
        for (name, labelset), dist in sorted(
                self.registry.distributions.items()):
            if name != "serve/request_latency_s" or not dist.count:
                continue
            endpoint = dict(labelset).get("endpoint", "unknown")
            out[endpoint] = round(dist.percentile(99), 6)
        return out

    def alert_timeline(self):
        """Alert + admission transitions, merged in time order."""
        return sorted(self.alerts.events + self.admission.events,
                      key=lambda e: (e.t, e.slo, e.severity, e.state))

    def build_manifest(self, run_id: str = "serve") -> RunManifest:
        """The digest-validated shutdown record of this serve session."""
        cfg = self.config
        builder = ManifestBuilder(run_id, seed=cfg.seed,
                                  wall_clock=self.wall)
        builder.set_config(serve={
            "listen_address": self.listen_address,
            "scrape_interval_s": cfg.scrape_interval_s,
            "latency_threshold_s": cfg.latency_threshold_s,
            "slo_window_s": cfg.slo_window_s,
            "trace_budget": cfg.trace_budget,
            "slowdown_after_s": cfg.slowdown_after_s,
            "slowdown_extra_s": cfg.slowdown_extra_s,
            "slowdown_duration_s": cfg.slowdown_duration_s,
            "slos": [s.to_dict() for s in self.slos],
            "endpoint_p99_s": self.endpoint_p99_s(),
        })
        builder.add_counts(
            requests_total=self.requests_total,
            shed_total=self.admission.shed_total,
            errors_total=self.errors_total,
            spans_recorded=self.dapper.spans_recorded,
            alert_events=len(self.alerts.events),
            admission_transitions=self.admission.transitions,
            alert_evaluations=self.alerts.evaluations,
        )
        builder.observe_sim(self.sim)
        builder.add_alerts(self.alert_timeline())
        return builder.finish()

    def obs_overhead_fraction(self) -> float:
        """Scrape + alert-eval self-time as a fraction of uptime."""
        wall_s = self.wall()
        if wall_s <= 0:
            return 0.0
        return (self.scraper.scrape_wall_s
                + self.alerts.eval_wall_s) / wall_s
