"""Open- and closed-loop load generation against a serve-mode server.

The traffic model mirrors the repo's DES drivers, re-anchored to wall
time:

- **Endpoint popularity is Zipfian** (the paper's Fig. 7 observation
  that a handful of methods dominate call volume): endpoint *rank k*
  gets weight ``1 / k**alpha``.
- **Arrivals are diurnal** — the open-loop Poisson rate is modulated by
  the same ``1 + amplitude * sin`` wave as
  :class:`repro.workloads.drivers.DiurnalPattern` (Fig. 18), with the
  24-hour day compressed to ``day_s`` real seconds so a demo sees a
  full cycle.
- **Open loop** fires arrivals on the Poisson schedule regardless of
  completions (each in-flight call is its own task), so a slow server
  accumulates concurrency the way real front-ends do.  **Closed loop**
  runs ``users`` keep-alive connections in request → think-time cycles
  and backs off by the server's ``Retry-After`` when shed.

Both loops share one seeded RNG stream per role, so a loadgen run's
*schedule* is a pure function of its config; only service latencies
come from the live server.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.report import format_table
from repro.serve.http import http_call
from repro.sim.clock import WallClock
from repro.sim.random import derive_seed
from repro.workloads.drivers import DAY_SECONDS, DiurnalPattern

__all__ = ["EndpointSpec", "LoadGenConfig", "LoadGenResult",
           "ZipfPopularity", "run_loadgen", "default_endpoints"]


@dataclass(frozen=True)
class EndpointSpec:
    """One callable endpoint: how the loadgen exercises it."""

    name: str
    method: str
    target: str
    body: bytes = b""


def default_endpoints(seed: int = 7) -> List[EndpointSpec]:
    """Popularity-ranked endpoints (hottest first, like Fig. 7)."""
    study_body = json.dumps({"study": "trees", "methods": 40, "trees": 30,
                             "seed": seed, "max_nodes": 2000}).encode()
    return [
        EndpointSpec("study", "POST", "/v1/study", study_body),
        EndpointSpec("healthz", "GET", "/healthz"),
        EndpointSpec("whatif", "GET",
                     f"/v1/whatif?service=Bigtable&seed={seed}"),
        EndpointSpec("metrics", "GET", "/metrics"),
    ]


class ZipfPopularity:
    """Zipf(alpha) draw over a ranked endpoint list."""

    def __init__(self, n: int, alpha: float, rng: np.random.Generator):
        if n < 1:
            raise ValueError(f"need at least one endpoint, got {n}")
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha!r}")
        weights = 1.0 / np.arange(1, n + 1, dtype=float) ** alpha
        self.probabilities = weights / weights.sum()
        self._rng = rng

    def draw(self) -> int:
        """The next endpoint index (0 = most popular)."""
        return int(self._rng.choice(len(self.probabilities),
                                    p=self.probabilities))


@dataclass
class LoadGenConfig:
    """Shape of one loadgen run."""

    duration_s: float = 10.0
    #: Open-loop base arrival rate (requests per second); 0 disables.
    rate: float = 50.0
    #: Closed-loop user count; 0 disables.
    users: int = 0
    think_s: float = 0.05
    zipf_alpha: float = 1.2
    seed: int = 7
    #: Diurnal modulation of the open-loop rate; ``day_s`` compresses
    #: the 24-hour wave into this many real seconds.
    diurnal_amplitude: float = 0.3
    day_s: float = 60.0
    call_timeout_s: float = 30.0
    endpoints: Optional[List[EndpointSpec]] = None


@dataclass
class LoadGenResult:
    """What happened, per endpoint and overall."""

    duration_s: float
    sent: int = 0
    ok: int = 0
    shed: int = 0
    errors: int = 0
    latencies_s: Dict[str, List[float]] = field(default_factory=dict)
    status_counts: Dict[int, int] = field(default_factory=dict)

    def record(self, endpoint: str, status: int, latency_s: float) -> None:
        """Fold one completed exchange into the tallies."""
        self.sent += 1
        self.status_counts[status] = self.status_counts.get(status, 0) + 1
        if status == 503:
            self.shed += 1
        elif status >= 400 or status == 0:
            self.errors += 1
        else:
            self.ok += 1
            self.latencies_s.setdefault(endpoint, []).append(latency_s)

    def percentile_s(self, endpoint: str, q: float) -> float:
        """Latency percentile for one endpoint (0.0 when unobserved)."""
        values = self.latencies_s.get(endpoint)
        if not values:
            return 0.0
        return float(np.percentile(np.asarray(values), q))

    @property
    def achieved_rps(self) -> float:
        """Completed-OK throughput over the run."""
        return self.ok / self.duration_s if self.duration_s > 0 else 0.0

    def render(self) -> str:
        """An aligned per-endpoint summary table."""
        rows = []
        for endpoint in sorted(self.latencies_s):
            values = self.latencies_s[endpoint]
            rows.append((endpoint, len(values),
                         f"{self.percentile_s(endpoint, 50) * 1e3:.2f}",
                         f"{self.percentile_s(endpoint, 99) * 1e3:.2f}"))
        table = format_table(("endpoint", "ok", "p50 ms", "p99 ms"), rows,
                             title="loadgen — per-endpoint latency")
        summary = (f"sent {self.sent}  ok {self.ok}  shed {self.shed}  "
                   f"errors {self.errors}  "
                   f"rps {self.achieved_rps:.1f}")
        return f"{table}\n{summary}"


async def _one_call(host: str, port: int, spec: EndpointSpec,
                    config: LoadGenConfig, result: LoadGenResult,
                    wall: WallClock,
                    conn: Optional[Tuple[asyncio.StreamReader,
                                         asyncio.StreamWriter]] = None
                    ) -> Tuple[int, Dict[str, str]]:
    """Issue one exchange and record it; returns (status, headers)."""
    start_s = wall()
    try:
        status, headers, _body = await asyncio.wait_for(
            http_call(host, port, spec.method, spec.target, spec.body,
                      reader=conn[0] if conn else None,
                      writer=conn[1] if conn else None),
            timeout=config.call_timeout_s)
    except (ConnectionError, asyncio.TimeoutError, OSError,
            asyncio.IncompleteReadError):
        result.record(spec.name, 0, wall() - start_s)
        return 0, {}
    result.record(spec.name, status, wall() - start_s)
    return status, headers


async def _open_loop(host: str, port: int, config: LoadGenConfig,
                     endpoints: List[EndpointSpec],
                     result: LoadGenResult, wall: WallClock) -> None:
    rng = np.random.default_rng(derive_seed(config.seed, "loadgen", "open"))
    popularity = ZipfPopularity(len(endpoints), config.zipf_alpha, rng)
    diurnal = DiurnalPattern(amplitude=config.diurnal_amplitude)
    in_flight: List[asyncio.Task] = []
    while wall() < config.duration_s:
        # Fig.-18-style wave, one "day" compressed into day_s seconds.
        mult = diurnal.multiplier(wall() * DAY_SECONDS / config.day_s)
        rate = max(config.rate * mult, 1e-9)
        await asyncio.sleep(float(rng.exponential(1.0 / rate)))
        if wall() >= config.duration_s:
            break
        spec = endpoints[popularity.draw()]
        in_flight.append(asyncio.ensure_future(
            _one_call(host, port, spec, config, result, wall)))
        in_flight = [t for t in in_flight if not t.done()]
    if in_flight:
        await asyncio.gather(*in_flight, return_exceptions=True)


async def _closed_user(host: str, port: int, config: LoadGenConfig,
                       endpoints: List[EndpointSpec],
                       result: LoadGenResult, wall: WallClock,
                       user_index: int) -> None:
    rng = np.random.default_rng(
        derive_seed(config.seed, "loadgen", "user", user_index))
    popularity = ZipfPopularity(len(endpoints), config.zipf_alpha, rng)
    reader = writer = None
    try:
        while wall() < config.duration_s:
            if writer is None:
                try:
                    reader, writer = await asyncio.open_connection(host,
                                                                   port)
                except (ConnectionError, OSError):
                    await asyncio.sleep(0.05)
                    continue
            spec = endpoints[popularity.draw()]
            status, headers = await _one_call(host, port, spec, config,
                                              result, wall,
                                              conn=(reader, writer))
            if status == 0:  # connection died: reconnect next cycle
                writer.close()
                reader = writer = None
                continue
            if status == 503:  # shed: honor the server's Retry-After
                await asyncio.sleep(
                    float(headers.get("retry-after",
                                      f"{config.think_s:g}")))
                continue
            await asyncio.sleep(float(rng.exponential(config.think_s)))
    finally:
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass


async def run_loadgen(host: str, port: int,
                      config: Optional[LoadGenConfig] = None
                      ) -> LoadGenResult:
    """Run the configured open and/or closed loops to completion."""
    config = config or LoadGenConfig()
    endpoints = config.endpoints or default_endpoints(config.seed)
    result = LoadGenResult(duration_s=config.duration_s)
    wall = WallClock()
    loops = []
    if config.rate > 0:
        loops.append(_open_loop(host, port, config, endpoints, result,
                                wall))
    for user_index in range(config.users):
        loops.append(_closed_user(host, port, config, endpoints, result,
                                  wall, user_index))
    if not loops:
        raise ValueError("loadgen needs rate > 0 or users > 0")
    await asyncio.gather(*loops)
    return result
