"""A minimal HTTP/1.1 layer on asyncio streams (stdlib only).

Serve mode needs just enough HTTP to front the study engine and be
driven by the load generator and ``curl``: request-line + header
parsing, ``Content-Length`` bodies, keep-alive connections, and a tiny
client for the load generator and tests.  It is deliberately not a web
framework — no chunked encoding, no TLS, no routing DSL — because every
feature here is attack surface the observability story does not need.

The parser is strict about what it accepts (bounded line and body
sizes, a known method set) and maps malformed input to
:class:`BadRequest` so the server can answer 400 instead of dying.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

__all__ = ["HttpRequest", "HttpResponse", "BadRequest", "read_request",
           "write_response", "http_call", "REASON_PHRASES"]

#: Request-line methods the server accepts.
_METHODS = frozenset({"GET", "POST", "HEAD", "PUT", "DELETE"})

#: Bounds that keep a misbehaving peer from ballooning memory.
MAX_LINE_BYTES = 8192
MAX_HEADERS = 64
MAX_BODY_BYTES = 4 * 1024 * 1024

REASON_PHRASES = {
    200: "OK", 204: "No Content", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class BadRequest(ValueError):
    """Malformed HTTP input; the server answers 400 and drops the link."""


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    target: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def path(self) -> str:
        """The target's path component (query string stripped)."""
        return urlsplit(self.target).path

    @property
    def query(self) -> Dict[str, str]:
        """Query parameters as a flat dict (last value wins)."""
        return dict(parse_qsl(urlsplit(self.target).query))

    @property
    def keep_alive(self) -> bool:
        """Whether the connection should survive this exchange."""
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class HttpResponse:
    """One response about to be serialized."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def reason(self) -> str:
        """The status line's reason phrase."""
        return REASON_PHRASES.get(self.status, "Unknown")


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as err:
        if not err.partial:
            return b""  # clean EOF between requests
        raise BadRequest("truncated request line") from err
    except asyncio.LimitOverrunError as err:
        raise BadRequest("request line too long") from err
    if len(line) > MAX_LINE_BYTES:
        raise BadRequest("request line too long")
    return line[:-2]


async def read_request(reader: asyncio.StreamReader
                       ) -> Optional[HttpRequest]:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`BadRequest` on malformed input.
    """
    request_line = await _read_line(reader)
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest(f"malformed request line {request_line!r}")
    method, target, _version = parts
    if method not in _METHODS:
        raise BadRequest(f"unsupported method {method!r}")
    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        line = await _read_line(reader)
        if not line:
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise BadRequest(f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise BadRequest("too many headers")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as err:
            raise BadRequest("bad content-length") from err
        if not 0 <= length <= MAX_BODY_BYTES:
            raise BadRequest(f"content-length {length} out of bounds")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as err:
            raise BadRequest("truncated body") from err
    return HttpRequest(method=method, target=target, headers=headers,
                       body=body)


def write_response(writer: asyncio.StreamWriter, response: HttpResponse,
                   keep_alive: bool = True) -> None:
    """Serialize ``response`` onto the stream (caller drains)."""
    head = [f"HTTP/1.1 {response.status} {response.reason}",
            f"content-type: {response.content_type}",
            f"content-length: {len(response.body)}",
            f"connection: {'keep-alive' if keep_alive else 'close'}"]
    head += [f"{name}: {value}" for name, value in response.headers.items()]
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    writer.write(response.body)


async def http_call(host: str, port: int, method: str, target: str,
                    body: bytes = b"",
                    reader: Optional[asyncio.StreamReader] = None,
                    writer: Optional[asyncio.StreamWriter] = None,
                    ) -> Tuple[int, Dict[str, str], bytes]:
    """One client exchange: ``(status, headers, body)``.

    Pass an existing ``(reader, writer)`` pair to reuse a keep-alive
    connection (the closed-loop load generator does); otherwise a fresh
    connection is opened and closed around the exchange.
    """
    own = reader is None or writer is None
    if own:
        reader, writer = await asyncio.open_connection(host, port)
    try:
        head = [f"{method} {target} HTTP/1.1",
                f"host: {host}:{port}",
                f"content-length: {len(body)}"]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()
        status_line = await reader.readuntil(b"\r\n")
        parts = status_line.decode("latin-1").split(" ", 2)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readuntil(b"\r\n")
            if line == b"\r\n":
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        payload = await reader.readexactly(int(headers.get("content-length",
                                                           "0")))
        return status, headers, payload
    finally:
        if own:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
