"""Cross-validation: closed forms vs the DES, with stated tolerances.

Trust in the analytic fast path is *earned* here, not assumed. Three
sweeps, each comparing a theory prediction against a matched
ground-truth measurement:

- **Queueing** (:func:`sweep_queueing`): a utilization x variability x
  servers grid of single-station runs
  (:func:`repro.studies.run_queueing_study`). M/M/1 and M/G/1 points
  check *exact* formulas (disagreement bounded by DES sampling noise
  only); M/G/k points check the Kingman/Allen-Cunneen approximation
  against its documented regime band.
- **Fanout** (:func:`sweep_fanout`): DDist serial convolution and
  parallel-max against vectorized Monte Carlo quantiles of the same
  lognormal stages.
- **What-if** (:func:`sweep_whatif`): the analytic fig15 counterfactual
  against :func:`repro.core.whatif.what_if_components` run on samples
  drawn from the *same* component model — isolating the cost of
  discretization + percentile fitting from model mismatch.

Every point carries its tolerance; :class:`AgreementReport` aggregates
them into the JSON artifact CI uploads (``repro-rpc theory --sweep``)
and fails on any breach.

Determinism: all randomness flows from the caller's seed through
``RngRegistry``/``default_rng``; two runs of the same grid are
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.report import format_table
from repro.core.whatif import what_if_components
from repro.rpc.stack import ComponentMatrix
from repro.sim.distributions import Exponential, LogNormal
from repro.studies import run_queueing_study
from repro.theory.convolve import (
    AnalyticWhatIf,
    ComponentProfile,
    WHATIF_RESCUED_TOLERANCE_PTS,
)
from repro.theory.ddist import DDist
from repro.theory.mgk import (
    LognormalFit,
    MgkModel,
    mm1_mean_wait,
    mm1_wait_quantile,
)

__all__ = ["ValidationPoint", "AgreementReport", "run_validation",
           "sweep_queueing", "sweep_fanout", "sweep_whatif", "GRIDS"]

#: Mean service time shared by all queueing grid points (1 ms — the
#: order of the paper's mid-range RPC service times).
MEAN_SERVICE_S = 1e-3

#: DES-noise slack: tolerance gains this many i.i.d. standard errors of
#: the measured mean on top of the regime band (waits are
#: autocorrelated, hence the generous multiplier).
STDERR_SLACK = 6.0

#: Relative tolerance for DDist-vs-Monte-Carlo quantiles (grid
#: resolution + MC noise).
FANOUT_REL_TOL = 0.05

GRIDS: Dict[str, Dict[str, object]] = {
    # Fast enough for every CI run; full is the nightly-depth grid.
    "ci": {
        "mm1_rhos": (0.3, 0.6, 0.85),
        "mg1": ((0.5, 0.5), (0.8, 1.4)),
        "mgk_rhos": (0.5, 0.7, 0.85),
        "mgk_sigmas": (0.5, 1.0, 1.4),
        "mgk_servers": (4,),
        "n_jobs": 20_000,
    },
    "full": {
        "mm1_rhos": (0.2, 0.3, 0.5, 0.6, 0.7, 0.85),
        "mg1": ((0.5, 0.5), (0.5, 1.0), (0.8, 1.0), (0.8, 1.4)),
        "mgk_rhos": (0.3, 0.5, 0.7, 0.85),
        "mgk_sigmas": (0.5, 1.0, 1.4),
        "mgk_servers": (2, 4, 8),
        "n_jobs": 60_000,
    },
}


@dataclass
class ValidationPoint:
    """One theory-vs-ground-truth comparison.

    Agreement means ``|des - theory| <= max(abs_tol, rel_tol * |theory|)``
    — ``rel_tol`` carries the regime band (plus sampling slack where the
    ground truth is itself noisy), ``abs_tol`` serves scale-free
    quantities like rescued percentages.
    """

    kind: str
    regime: str
    params: Dict[str, object]
    theory: float
    des: float
    rel_tol: float = 0.0
    abs_tol: float = 0.0

    @property
    def error(self) -> float:
        return abs(self.des - self.theory)

    @property
    def rel_error(self) -> float:
        return self.error / abs(self.theory) if self.theory else float("inf")

    @property
    def allowed(self) -> float:
        return max(self.abs_tol, self.rel_tol * abs(self.theory))

    @property
    def ok(self) -> bool:
        return self.error <= self.allowed

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind, "regime": self.regime,
            "params": dict(self.params),
            "theory": self.theory, "des": self.des,
            "rel_tol": self.rel_tol, "abs_tol": self.abs_tol,
            "error": self.error, "allowed": self.allowed, "ok": self.ok,
        }


@dataclass
class AgreementReport:
    """All sweep points plus the verdict; JSON-safe for CI artifacts."""

    grid: str
    seed: int
    points: List[ValidationPoint] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.points)

    def breaches(self) -> List[ValidationPoint]:
        return [p for p in self.points if not p.ok]

    def to_dict(self) -> Dict[str, object]:
        return {
            "grid": self.grid,
            "seed": self.seed,
            "ok": self.ok,
            "n_points": len(self.points),
            "n_breaches": len(self.breaches()),
            "points": [p.to_dict() for p in self.points],
        }

    def render(self) -> str:
        rows = []
        for p in self.points:
            label = " ".join(f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
                             for k, v in p.params.items())
            rows.append((p.kind, p.regime, label,
                         f"{p.theory:.3e}", f"{p.des:.3e}",
                         f"{p.error:.2e}", f"{p.allowed:.2e}",
                         "ok" if p.ok else "BREACH"))
        verdict = "all points within tolerance" if self.ok else (
            f"{len(self.breaches())} TOLERANCE BREACH(ES)")
        return format_table(
            ("check", "regime", "point", "theory", "measured",
             "error", "allowed", "verdict"),
            rows,
            title=(f"theory vs DES agreement — grid={self.grid} "
                   f"seed={self.seed}: {verdict}"),
        )


# ----------------------------------------------------------------------
# Queueing sweep
# ----------------------------------------------------------------------
def _queueing_point(kind: str, regime: str, params: Dict[str, object],
                    theory: float, study, rel_tol: float) -> ValidationPoint:
    slack = STDERR_SLACK * study.stderr_mean_wait_s()
    return ValidationPoint(kind=kind, regime=regime, params=params,
                           theory=theory, des=study.mean_wait_s(),
                           rel_tol=rel_tol, abs_tol=slack)


def _jobs_for(rho: float, base: int, cs2: float = 1.0) -> int:
    """Scale job count with utilization and service variability.

    Queue relaxation time grows like 1/(1-rho), and heavy-tailed
    service (large Cs^2) slows sample-mean convergence further; both
    axes get proportionally longer runs so DES noise stays well inside
    the regime bands the sweep is actually testing."""
    return int(base * max(1.0, 0.6 / (1.0 - rho)) * max(1.0, cs2 / 2.0))


def sweep_queueing(grid: str = "ci", seed: int = 23) -> List[ValidationPoint]:
    """The utilization x variability x servers grid vs matched DES runs."""
    cfg = GRIDS[grid]
    n_jobs = int(cfg["n_jobs"])
    points: List[ValidationPoint] = []

    # --- M/M/1: both formulas are exact; residual is sampling noise.
    for i, rho in enumerate(cfg["mm1_rhos"]):
        lam = rho / MEAN_SERVICE_S
        mu = 1.0 / MEAN_SERVICE_S
        # Exponential() takes the mean (scale); mu above is the *rate*.
        study = run_queueing_study(lam, Exponential(MEAN_SERVICE_S),
                                   servers=1, n_jobs=_jobs_for(rho, n_jobs),
                                   seed=seed + i)
        points.append(_queueing_point(
            "mm1-mean-wait", "exact", {"rho": rho},
            mm1_mean_wait(lam, mu), study, rel_tol=0.10))
        p99_theory = mm1_wait_quantile(0.99, lam, mu)
        points.append(ValidationPoint(
            kind="mm1-p99-wait", regime="exact", params={"rho": rho},
            theory=p99_theory, des=study.wait_quantile(0.99),
            rel_tol=0.15))

    # --- M/G/1: Pollaczek-Khinchine, exact in the mean for any service.
    for i, (rho, sigma) in enumerate(cfg["mg1"]):
        lam = rho / MEAN_SERVICE_S
        service = _lognormal_with_mean(MEAN_SERVICE_S, sigma)
        model = MgkModel(arrival_rate=lam, mean_service_s=MEAN_SERVICE_S,
                         cs2=LognormalFit(0.0, sigma).cs2, servers=1)
        study = run_queueing_study(lam, service, servers=1,
                                   n_jobs=_jobs_for(rho, n_jobs, model.cs2),
                                   seed=seed + 100 + i)
        points.append(_queueing_point(
            "mg1-pk-mean-wait", "exact", {"rho": rho, "sigma": sigma},
            model.mean_wait_s(), study, rel_tol=0.12))

    # --- M/G/k: the Allen-Cunneen approximation, banded by regime.
    idx = 0
    for k in cfg["mgk_servers"]:
        for rho in cfg["mgk_rhos"]:
            for sigma in cfg["mgk_sigmas"]:
                lam = rho * k / MEAN_SERVICE_S
                service = _lognormal_with_mean(MEAN_SERVICE_S, sigma)
                model = MgkModel(arrival_rate=lam,
                                 mean_service_s=MEAN_SERVICE_S,
                                 cs2=LognormalFit(0.0, sigma).cs2, servers=k)
                study = run_queueing_study(lam, service, servers=k,
                                           n_jobs=_jobs_for(rho, n_jobs,
                                                            model.cs2),
                                           seed=seed + 1000 + idx)
                points.append(_queueing_point(
                    "mgk-ac-mean-wait", model.regime,
                    {"rho": rho, "sigma": sigma, "k": k},
                    model.mean_wait_s(), study, rel_tol=model.tolerance))
                idx += 1
    return points


def _lognormal_with_mean(mean_s: float, sigma: float) -> LogNormal:
    """A lognormal with the given *mean* (not median) and log-sd."""
    mu = float(np.log(mean_s) - 0.5 * sigma * sigma)
    return LogNormal(mu, sigma)


# ----------------------------------------------------------------------
# Fanout sweep: DDist algebra vs Monte Carlo
# ----------------------------------------------------------------------
def sweep_fanout(seed: int = 23, n_samples: int = 200_000,
                 fanouts: Sequence[int] = (2, 4, 8),
                 ) -> List[ValidationPoint]:
    """Serial convolution and parallel-max vs vectorized Monte Carlo.

    Stage latency is a lognormal (median 1 ms, sigma 0.8). Ground truth
    is the empirical quantile of ``n_samples`` vectorized draws — pure
    numpy, no DES needed, since sums/maxes of independent draws have no
    queueing dynamics.
    """
    mu, sigma = float(np.log(1e-3)), 0.8
    h = 1e-5
    rng = np.random.default_rng(seed)
    stage = DDist.from_lognormal(mu, sigma, h)
    points: List[ValidationPoint] = []
    for n in fanouts:
        draws = rng.lognormal(mu, sigma, size=(n_samples, n))
        serial = stage.add_n(n)
        parallel = stage.max_n(n)
        mc_serial = draws.sum(axis=1)
        mc_parallel = draws.max(axis=1)
        for q in (0.5, 0.99):
            points.append(ValidationPoint(
                kind="fanout-serial", regime="exact",
                params={"n": n, "q": q},
                theory=serial.quantile(q),
                des=float(np.quantile(mc_serial, q)),
                rel_tol=FANOUT_REL_TOL, abs_tol=2 * h))
            points.append(ValidationPoint(
                kind="fanout-parallel", regime="exact",
                params={"n": n, "q": q},
                theory=parallel.quantile(q),
                des=float(np.quantile(mc_parallel, q)),
                rel_tol=FANOUT_REL_TOL, abs_tol=2 * h))
    return points


# ----------------------------------------------------------------------
# What-if sweep: analytic fig15 vs the empirical counterfactual
# ----------------------------------------------------------------------
#: A synthetic nine-component model with one dominant tail contributor
#: (server_application) and zero-heavy queues — the fig15 shape.
_WHATIF_MODEL: Mapping[str, Mapping[str, float]] = {
    "client_send_queue": {"zero": 0.55, "median": 40e-6, "sigma": 0.9},
    "request_proc_stack": {"zero": 0.0, "median": 25e-6, "sigma": 0.35},
    "request_network_wire": {"zero": 0.0, "median": 120e-6, "sigma": 0.5},
    "server_recv_queue": {"zero": 0.35, "median": 140e-6, "sigma": 1.1},
    "server_application": {"zero": 0.0, "median": 900e-6, "sigma": 0.9},
    "server_send_queue": {"zero": 0.6, "median": 30e-6, "sigma": 0.8},
    "response_proc_stack": {"zero": 0.0, "median": 25e-6, "sigma": 0.35},
    "response_network_wire": {"zero": 0.0, "median": 120e-6, "sigma": 0.5},
    "client_recv_queue": {"zero": 0.5, "median": 35e-6, "sigma": 0.9},
}


def _sample_whatif_matrix(rng: np.random.Generator,
                          n: int) -> ComponentMatrix:
    cols = []
    for spec in _WHATIF_MODEL.values():
        vals = rng.lognormal(np.log(spec["median"]), spec["sigma"], size=n)
        zeros = rng.random(n) < spec["zero"]
        vals[zeros] = 0.0
        cols.append(vals)
    return ComponentMatrix(np.column_stack(cols))


def sweep_whatif(seed: int = 23, n_samples: int = 40_000,
                 tail_percentiles: Sequence[float] = (95.0, 99.0),
                 ) -> List[ValidationPoint]:
    """Analytic fig15 vs the empirical counterfactual on shared samples.

    Both sides see the *same* synthetic workload: the empirical side as
    raw samples through :func:`what_if_components`, the analytic side
    as the percentile profile of those samples — exactly the
    information gap between a DES tail and warehouse telemetry.
    """
    rng = np.random.default_rng(seed)
    matrix = _sample_whatif_matrix(rng, n_samples)
    profile = ComponentProfile.from_matrix(matrix, service="synthetic")
    engine = AnalyticWhatIf(profile)
    points: List[ValidationPoint] = []
    for p in tail_percentiles:
        empirical = what_if_components(matrix, service="synthetic",
                                       tail_percentile=p)
        analytic = engine.result(tail_percentile=p)
        # Dominant-component identification is the decision the figure
        # drives; encode it as theory=des=index agreement (0/1 point).
        points.append(ValidationPoint(
            kind="whatif-dominant", regime="exact",
            params={"p": p},
            theory=1.0,
            des=1.0 if analytic.dominant() == empirical.dominant() else 0.0,
            abs_tol=0.0))
        dom = empirical.dominant()
        points.append(ValidationPoint(
            kind="whatif-rescued-dominant", regime="kingman-moderate",
            params={"p": p, "component": dom},
            theory=analytic.percent_rescued[dom],
            des=empirical.percent_rescued[dom],
            abs_tol=WHATIF_RESCUED_TOLERANCE_PTS))
    return points


# ----------------------------------------------------------------------
# The full run
# ----------------------------------------------------------------------
def run_validation(grid: str = "ci", seed: int = 23,
                   sweeps: Optional[Sequence[str]] = None) -> AgreementReport:
    """Run the selected sweeps; default is all of them."""
    if grid not in GRIDS:
        raise ValueError(f"unknown grid {grid!r}; have {sorted(GRIDS)}")
    chosen = tuple(sweeps) if sweeps else ("queueing", "fanout", "whatif")
    report = AgreementReport(grid=grid, seed=seed)
    for name in chosen:
        if name == "queueing":
            report.points.extend(sweep_queueing(grid=grid, seed=seed))
        elif name == "fanout":
            report.points.extend(sweep_fanout(seed=seed))
        elif name == "whatif":
            report.points.extend(sweep_whatif(seed=seed))
        else:
            raise ValueError(f"unknown sweep {name!r}")
    return report
