"""Latency-distribution propagation: analytic fig13 and fig15.

Two decompositions of end-to-end latency, both answered from
:class:`~repro.theory.ddist.DDist` algebra instead of a DES run:

- **Call trees** (:func:`propagate_tree`): given a per-node (or
  per-method) service-time distribution, the response-time distribution
  of a ``FlatTree`` is computed bottom-up — serial children convolve,
  parallel fanout takes the max — exactly the recursion the DES
  executes one sample at a time, but over whole distributions at once.
- **Component matrices** (:class:`ComponentProfile` +
  :func:`what_if_components_analytic`): the nine-component anatomy of
  Fig. 9, modeled as *independent* zero-inflated lognormals fitted from
  per-component percentile telemetry. The fig15 counterfactual
  ("replace component j by its median inside the tail") then has a
  closed form; see :func:`what_if_components_analytic` for the math.

The independence assumption is forced by the input: percentile triples
carry no cross-component correlation. The validation sweep
(:mod:`repro.theory.validate`) measures what that costs against the DES
— dominant-component identification survives it, absolute rescued
percentages carry the documented tolerance band
(:data:`WHATIF_RESCUED_TOLERANCE_PTS`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.whatif import WhatIfResult
from repro.rpc.calltree import FlatTree
from repro.rpc.stack import COMPONENTS, ComponentMatrix
from repro.theory.ddist import DDist, DEFAULT_BIN_S
from repro.theory.mgk import LognormalFit, MgkModel

__all__ = [
    "ComponentProfile",
    "WHATIF_RESCUED_TOLERANCE_PTS",
    "AnalyticWhatIf",
    "analytic_queueing",
    "propagate_tree",
    "what_if_components_analytic",
]

#: Documented tolerance (absolute percentage points) on per-component
#: rescued fractions vs the DES counterfactual, owed to the component
#: independence assumption. Validated by the sweep harness.
WHATIF_RESCUED_TOLERANCE_PTS = 15.0

#: Percentiles a profile stores per component; p50/p95/p99 is exactly
#: what warehouse sketches export.
PROFILE_PERCENTILES = (50.0, 95.0, 99.0)


# ----------------------------------------------------------------------
# Component profiles: telemetry in, distributions out
# ----------------------------------------------------------------------
@dataclass
class ComponentProfile:
    """Per-component percentile telemetry for one service/method.

    ``percentiles[comp]`` maps percentile -> seconds *of the positive
    part* of the component, and ``zero_fraction[comp]`` carries the
    zero-inflation mass (queue components are frequently exactly zero).
    JSON-safe (:meth:`to_dict`), so serve mode caches it via
    ``study_key`` and answers analytic what-ifs without re-running
    anything.
    """

    service: str
    percentiles: Dict[str, Dict[float, float]]
    zero_fraction: Dict[str, float]
    n_samples: int
    components: Sequence[str] = COMPONENTS

    @classmethod
    def from_matrix(cls, matrix: ComponentMatrix, service: str = "",
                    profile_percentiles: Sequence[float] = PROFILE_PERCENTILES,
                    ) -> "ComponentProfile":
        """Profile a component matrix (what a DES study or warehouse
        column scan produces)."""
        if len(matrix) == 0:
            raise ValueError("need at least one span to profile")
        pct: Dict[str, Dict[float, float]] = {}
        zf: Dict[str, float] = {}
        for comp in COMPONENTS:
            col = matrix.column(comp)
            pos = col[col > 0.0]
            zf[comp] = float(1.0 - pos.size / col.size)
            if pos.size:
                pct[comp] = {float(p): float(np.percentile(pos, p))
                             for p in profile_percentiles}
            else:
                pct[comp] = {}
        return cls(service=service, percentiles=pct, zero_fraction=zf,
                   n_samples=len(matrix))

    def component_fit(self, comp: str) -> Optional[LognormalFit]:
        """Lognormal fit of the positive part (None when always zero)."""
        pts = self.percentiles[comp]
        if len(pts) < 2:
            return None
        return LognormalFit.from_percentiles(pts)

    def component_ddist(self, comp: str, h: float = DEFAULT_BIN_S) -> DDist:
        """The zero-inflated discretized distribution of one component."""
        fit = self.component_fit(comp)
        if fit is None:
            return DDist.constant(0.0, h)
        return DDist.zero_inflated_lognormal(
            self.zero_fraction[comp], fit.mu, fit.sigma, h)

    def total_ddist(self, h: float = DEFAULT_BIN_S) -> DDist:
        """End-to-end latency under component independence."""
        total = DDist.constant(0.0, h)
        for comp in self.components:
            total = total.add(self.component_ddist(comp, h))
        return total

    def suggest_bin_s(self) -> float:
        """A bin width resolving this profile's medians and tails.

        Fine enough that the smallest positive component median spans
        >= 4 bins, coarse enough that the largest p99 stays ~1e4 bins.
        """
        medians = [pts.get(50.0) for pts in self.percentiles.values()
                   if pts.get(50.0)]
        p99s = [max(pts.values()) for pts in self.percentiles.values() if pts]
        if not medians:
            return DEFAULT_BIN_S
        fine = min(medians) / 4.0
        coarse = max(p99s) / 10_000.0
        return max(min(DEFAULT_BIN_S, fine), coarse, 1e-9)

    def to_dict(self) -> Dict[str, object]:
        return {
            "service": self.service,
            "n_samples": self.n_samples,
            "components": list(self.components),
            "percentiles": {c: {str(p): v for p, v in pts.items()}
                            for c, pts in self.percentiles.items()},
            "zero_fraction": dict(self.zero_fraction),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "ComponentProfile":
        return cls(
            service=str(doc["service"]),
            percentiles={c: {float(p): float(v) for p, v in pts.items()}
                         for c, pts in doc["percentiles"].items()},
            zero_fraction={c: float(v)
                           for c, v in doc["zero_fraction"].items()},
            n_samples=int(doc["n_samples"]),
            components=tuple(doc["components"]),
        )


# ----------------------------------------------------------------------
# The analytic fig15 counterfactual
# ----------------------------------------------------------------------
class AnalyticWhatIf:
    """The fig15 counterfactual engine over a :class:`ComponentProfile`.

    Build once, query many tail percentiles: the per-component
    distributions and their prefix/suffix convolutions (``rest_j`` =
    total minus component ``j``) are computed in ``__init__``; each
    :meth:`result` call is then pure array lookups.

    The closed form: write total = ``X_j + R_j`` with ``X_j`` the
    component and ``R_j`` the (independent) rest, ``t`` the tail
    threshold, ``m_j`` the component median. Replacing ``X_j`` by
    ``min(X_j, m_j)`` rescues a tail sample iff
    ``X_j + R_j > t >= min(X_j, m_j) + R_j``, so

    ``P(rescued) = sum_{x > m_j} p(x) * [F_R(t - m_j) - F_R(t - x)]^+``
    ``P(tail)    = sum_x p(x) * (1 - F_R(t - x)) = P(total > t)``

    and the reported number is ``100 * P(rescued) / P(tail)`` — the
    distributional limit of the DES's empirical ratio.
    """

    def __init__(self, profile: ComponentProfile, h: Optional[float] = None):
        self.profile = profile
        self.h = float(h) if h else profile.suggest_bin_s()
        comps = list(profile.components)
        self.dists = [profile.component_ddist(c, self.h) for c in comps]
        n = len(comps)
        # prefix[i] = sum of components < i; suffix[i] = sum of > i.
        prefix: List[Optional[DDist]] = [None] * (n + 1)
        suffix: List[Optional[DDist]] = [None] * (n + 1)
        zero = DDist.constant(0.0, self.h)
        prefix[0] = zero
        for i in range(n):
            prefix[i + 1] = prefix[i].add(self.dists[i])
        suffix[n] = zero
        for i in range(n - 1, -1, -1):
            suffix[i] = suffix[i + 1].add(self.dists[i])
        self.total = prefix[n]
        self.rests = [prefix[i].add(suffix[i + 1]) for i in range(n)]

    def result(self, tail_percentile: float = 95.0) -> WhatIfResult:
        """The analytic :class:`WhatIfResult` at one tail percentile."""
        if not 0.0 < tail_percentile < 100.0:
            raise ValueError(
                f"tail percentile must be in (0, 100), got {tail_percentile!r}")
        t = self.total.quantile(tail_percentile / 100.0)
        rescued: Dict[str, float] = {}
        for comp, dist, rest in zip(self.profile.components, self.dists,
                                    self.rests):
            m = dist.median()
            xs = dist.values
            px = dist.pmf
            cdf_rest_at_gap = rest.cdf_many(t - xs)
            tail_mass = float(np.dot(px, 1.0 - cdf_rest_at_gap))
            improvable = xs > m
            gain = np.maximum(0.0, rest.cdf(t - m)
                              - cdf_rest_at_gap[improvable])
            rescue_mass = float(np.dot(px[improvable], gain))
            rescued[comp] = (100.0 * rescue_mass / tail_mass
                             if tail_mass > 0.0 else 0.0)
        n_tail = int(round(self.profile.n_samples * self.total.ccdf(t)))
        return WhatIfResult(service=self.profile.service,
                            percent_rescued=rescued,
                            tail_percentile=tail_percentile,
                            n_tail=n_tail)

    def sweep(self, tail_percentiles: Sequence[float]) -> List[WhatIfResult]:
        """Results across many tail percentiles (distributions reused)."""
        return [self.result(p) for p in tail_percentiles]


def what_if_components_analytic(profile: Union[ComponentProfile,
                                               ComponentMatrix],
                                tail_percentile: float = 95.0,
                                h: Optional[float] = None) -> WhatIfResult:
    """Analytic fig15: same question and result type as
    :func:`repro.core.whatif.what_if_components`, no DES tail needed.

    Accepts either a pre-built profile (the serve-mode cache hit path)
    or a raw :class:`ComponentMatrix` (profiled on the fly).
    """
    if isinstance(profile, ComponentMatrix):
        profile = ComponentProfile.from_matrix(profile)
    return AnalyticWhatIf(profile, h=h).result(tail_percentile)


# ----------------------------------------------------------------------
# Call-tree propagation
# ----------------------------------------------------------------------
def propagate_tree(tree: FlatTree,
                   node_dist: Union[Sequence[DDist],
                                    Callable[[int], DDist]],
                   mode: str = "serial") -> DDist:
    """Response-time distribution of a call tree, bottom-up.

    ``node_dist`` gives each node's *own* service-time distribution
    (indexable by node, or a callable of the node index — use
    ``lambda i: by_method[tree.method_ids[i]]`` for per-method models).

    - ``mode="serial"``: a node's children run back-to-back, so child
      response times *convolve* into the parent (the DES's sequential
      child execution).
    - ``mode="parallel"``: children fan out concurrently; the parent
      waits for the *max* of child response times.

    Either way the node's own distribution is convolved on top. All
    node distributions must share one bin width.
    """
    if mode not in ("serial", "parallel"):
        raise ValueError(f"mode must be 'serial' or 'parallel', got {mode!r}")
    own: Callable[[int], DDist]
    own = node_dist if callable(node_dist) else node_dist.__getitem__
    resp: List[Optional[DDist]] = [None] * tree.size
    for sl in reversed(tree.level_slices()):
        for i in range(sl.start, sl.stop):
            d = own(i)
            kids = tree.children_slice(i)
            combined: Optional[DDist] = None
            for c in range(kids.start, kids.stop):
                child = resp[c]
                combined = (child if combined is None
                            else (combined.add(child) if mode == "serial"
                                  else combined.max(child)))
            resp[i] = d if combined is None else d.add(combined)
    return resp[0]


# ----------------------------------------------------------------------
# Analytic fig13
# ----------------------------------------------------------------------
def analytic_queueing(models: Sequence[MgkModel]):
    """Fig. 13's per-method queueing statistics from closed forms.

    Each model is one method's queueing station; medians and P99s come
    from :meth:`MgkModel.wait_quantile` instead of simulated samples.
    Returns the same :class:`repro.core.tax.QueueResult` the DES path
    produces, so renderers and assertions are shared.
    """
    from repro.core.tax import QueueResult
    from repro.workloads import calibration as cal

    if not models:
        raise ValueError("need at least one station model")
    med = np.array([m.wait_quantile(0.5) for m in models])
    p99 = np.array([m.wait_quantile(0.99) for m in models])
    return QueueResult(
        frac_median_under_360us=float(
            (med <= cal.QUEUE_MEDIAN_HALF_OF_METHODS_S).mean()),
        frac_p99_under_102ms=float(
            (p99 <= cal.QUEUE_P99_HALF_OF_METHODS_S).mean()),
        worst10pct_median_s=float(np.quantile(med, 0.90)),
        worst10pct_p99_s=float(np.quantile(p99, 0.90)),
    )
