"""Closed-form single-station queueing models: M/M/1, M/G/1, M/G/k.

The fleet telemetry we actually have per method is percentile triples
(p50/p95/p99) from ``LatencySketch`` buckets, not full service-time
distributions — so every model here is reachable from exactly that
input, via an *explicit* lognormal assumption:

1. fit ``ln X ~ N(mu, sigma)`` to the observed percentiles
   (:class:`LognormalFit`),
2. read the squared coefficient of variation off the fit
   (``Cs^2 = exp(sigma^2) - 1``),
3. feed ``(arrival rate, mean service, Cs^2, servers)`` to the wait
   models.

The percentile->Cs^2 step is the famous pitfall (a lognormal with
sigma = 1.4 has Cs^2 ~ 6, not Cs ~ 6): the fit object exposes ``cs2``
only, and the validation sweep (:mod:`repro.theory.validate`) pins the
round-trip against known lognormals.

Model hierarchy (each exact where the one below is approximate):

- M/M/1: exact mean *and* exact wait distribution
  (``P(W > t) = rho * exp(-(mu - lambda) t)``).
- M/G/1: Pollaczek-Khinchine mean wait, exact for any service
  distribution given its first two moments.
- M/G/k: Allen-Cunneen / Kingman approximation
  ``E[Wq] ~ ((Ca^2 + Cs^2) / 2) * E[Wq(M/M/k)]`` with the M/M/k term
  from Erlang C. Exact at Cs^2 = Ca^2 = 1 (the property tests pin
  this); within the documented tolerance bands elsewhere.

Wait *quantiles* for G-service use the standard exponential-tail
surrogate matched to the approximate mean: conditional on waiting, the
wait is treated as exponential with mean ``E[Wq] / P(wait)``. This is
exact for M/M/k and a documented approximation otherwise (see
docs/PERFORMANCE.md for the regime trust guide).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.sim.distributions import _ndtr, _ndtri

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.sketch import LatencySketch

__all__ = [
    "LognormalFit",
    "MgkModel",
    "REGIME_TOLERANCE",
    "cs2_from_percentiles",
    "erlang_b",
    "erlang_c",
    "kingman_mean_wait",
    "mm1_mean_wait",
    "mm1_wait_quantile",
    "mmk_mean_wait",
    "pk_mean_wait",
    "regime_for",
]


# ----------------------------------------------------------------------
# Lognormal percentile fitting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LognormalFit:
    """A lognormal ``ln X ~ N(mu, sigma)`` fitted from percentiles.

    Built by least squares in log space over ``(z_p, ln q_p)`` pairs:
    with two percentiles the fit is exact; with three or more it is the
    best straight line through the probit plot, which also gives a
    cheap goodness signal (``max_rel_err``).
    """

    mu: float
    sigma: float

    @property
    def median(self) -> float:
        return math.exp(self.mu)

    @property
    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma * self.sigma)

    @property
    def variance(self) -> float:
        s2 = self.sigma * self.sigma
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self.mu + s2)

    @property
    def cs2(self) -> float:
        """Squared coefficient of variation, ``exp(sigma^2) - 1``.

        This is the quantity queueing formulas want. Note it is Cs
        *squared*: sigma = 1.4 gives cs2 ~ 6.1, i.e. Cs ~ 2.5.
        """
        return math.exp(self.sigma * self.sigma) - 1.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (p in (0, 100)) of the fitted law."""
        return math.exp(self.mu + self.sigma * _ndtri(p / 100.0))

    def cdf(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        if self.sigma == 0.0:
            return 1.0 if math.log(x) >= self.mu else 0.0
        return _ndtr((math.log(x) - self.mu) / self.sigma)

    def to_distribution(self):
        """The matching :class:`repro.sim.distributions.LogNormal`."""
        from repro.sim.distributions import LogNormal

        return LogNormal(self.mu, self.sigma)

    @classmethod
    def from_percentiles(cls, percentiles: Mapping[float, float]) -> "LognormalFit":
        """Fit from ``{percentile: value}`` (e.g. ``{50: .., 99: ..}``).

        Needs at least two distinct percentiles with positive values.
        ``sigma`` is clamped at 0 (a crossed pair — p99 below p50 —
        degrades to a point mass at the geometric mean rather than an
        unphysical negative spread).
        """
        pts = [(float(p), float(v)) for p, v in sorted(percentiles.items())]
        if len(pts) < 2:
            raise ValueError("need at least two percentiles to fit a lognormal")
        if any(v <= 0.0 for _, v in pts):
            raise ValueError("lognormal fit needs strictly positive percentile values")
        zs = [_ndtri(p / 100.0) for p, _ in pts]
        ys = [math.log(v) for _, v in pts]
        n = float(len(pts))
        zbar = sum(zs) / n
        ybar = sum(ys) / n
        szz = sum((z - zbar) ** 2 for z in zs)
        if szz == 0.0:
            raise ValueError("percentiles must be distinct")
        szy = sum((z - zbar) * (y - ybar) for z, y in zip(zs, ys))
        sigma = max(0.0, szy / szz)
        mu = ybar - sigma * zbar
        return cls(mu=mu, sigma=sigma)

    @classmethod
    def from_sketch(cls, sketch: "LatencySketch",
                    percentiles: Sequence[float] = (50.0, 95.0, 99.0),
                    ) -> "LognormalFit":
        """Fit from a :class:`LatencySketch` (warehouse telemetry).

        Prefers the sketch's own bucket-weighted log-moment fit
        (:meth:`LatencySketch.fit_lognormal`), which uses every bucket
        rather than three quantile reads; falls back to the percentile
        fit when the sketch is too sparse for moments (< 2 buckets).
        """
        mu_sigma = sketch.fit_lognormal()
        if mu_sigma is not None:
            return cls(mu=mu_sigma[0], sigma=mu_sigma[1])
        qs = [p / 100.0 for p in percentiles]
        vals = sketch.percentiles(qs)
        return cls.from_percentiles(
            {p: v for p, v in zip(percentiles, vals)})

    def max_rel_err(self, percentiles: Mapping[float, float]) -> float:
        """Worst relative error of the fit over the given percentiles."""
        worst = 0.0
        for p, v in percentiles.items():
            fitted = self.percentile(float(p))
            worst = max(worst, abs(fitted - float(v)) / max(float(v), 1e-300))
        return worst


def cs2_from_percentiles(p50: float, p95: Optional[float] = None,
                         p99: Optional[float] = None) -> float:
    """Squared coefficient of variation from telemetry percentiles.

    Convenience wrapper over :class:`LognormalFit`; at least one tail
    percentile is required.
    """
    pts: Dict[float, float] = {50.0: p50}
    if p95 is not None:
        pts[95.0] = p95
    if p99 is not None:
        pts[99.0] = p99
    if len(pts) < 2:
        raise ValueError("need p95 or p99 alongside p50")
    return LognormalFit.from_percentiles(pts).cs2


# ----------------------------------------------------------------------
# Erlang blocking / delay
# ----------------------------------------------------------------------
def erlang_b(servers: int, offered_load: float) -> float:
    """Erlang B blocking probability for ``k`` servers at load ``a``.

    Computed by the standard stable recurrence
    ``B(0) = 1; B(k) = a B(k-1) / (k + a B(k-1))``.
    """
    if servers < 0:
        raise ValueError(f"servers must be >= 0, got {servers!r}")
    if offered_load < 0.0:
        raise ValueError(f"offered load must be >= 0, got {offered_load!r}")
    b = 1.0
    for k in range(1, servers + 1):
        b = offered_load * b / (k + offered_load * b)
    return b


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang C: P(arrival waits) in M/M/k at offered load ``a = lambda/mu``.

    Requires ``a < k`` (stability); returns 1.0 as the limit at
    saturation is approached from below.
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers!r}")
    if offered_load >= servers:
        raise ValueError(
            f"unstable: offered load {offered_load!r} >= servers {servers!r}")
    rho = offered_load / servers
    b = erlang_b(servers, offered_load)
    return b / (1.0 - rho + rho * b)


# ----------------------------------------------------------------------
# Mean waits
# ----------------------------------------------------------------------
def mm1_mean_wait(arrival_rate: float, service_rate: float) -> float:
    """Exact M/M/1 mean queueing delay ``rho / (mu - lambda)``."""
    if arrival_rate >= service_rate:
        raise ValueError("unstable: arrival rate >= service rate")
    rho = arrival_rate / service_rate
    return rho / (service_rate - arrival_rate)


def mm1_wait_quantile(q: float, arrival_rate: float, service_rate: float) -> float:
    """Exact M/M/1 wait quantile: ``P(W > t) = rho e^{-(mu-lambda) t}``.

    Returns 0 for quantiles inside the ``P(W = 0) = 1 - rho`` atom.
    """
    if not 0.0 <= q < 1.0:
        raise ValueError(f"q must be in [0, 1), got {q!r}")
    if arrival_rate >= service_rate:
        raise ValueError("unstable: arrival rate >= service rate")
    rho = arrival_rate / service_rate
    if q <= 1.0 - rho:
        return 0.0
    return -math.log((1.0 - q) / rho) / (service_rate - arrival_rate)


def pk_mean_wait(arrival_rate: float, mean_service_s: float, cs2: float) -> float:
    """Pollaczek-Khinchine M/G/1 mean wait, exact for any service law.

    ``E[Wq] = (rho / (1 - rho)) * E[S] * (1 + Cs^2) / 2``.
    """
    rho = arrival_rate * mean_service_s
    if rho >= 1.0:
        raise ValueError(f"unstable: utilization {rho!r} >= 1")
    if cs2 < 0.0:
        raise ValueError(f"cs2 must be >= 0, got {cs2!r}")
    return (rho / (1.0 - rho)) * mean_service_s * (1.0 + cs2) / 2.0


def mmk_mean_wait(arrival_rate: float, mean_service_s: float, servers: int) -> float:
    """Exact M/M/k mean wait ``C(k, a) / (k/E[S] - lambda)`` via Erlang C."""
    a = arrival_rate * mean_service_s
    c = erlang_c(servers, a)
    return c * mean_service_s / (servers - a)


def kingman_mean_wait(arrival_rate: float, mean_service_s: float, cs2: float,
                      servers: int = 1, ca2: float = 1.0) -> float:
    """Allen-Cunneen / Kingman G/G/k mean-wait approximation.

    ``E[Wq] ~ ((Ca^2 + Cs^2) / 2) * E[Wq(M/M/k)]``. Exact when
    ``Ca^2 = Cs^2 = 1`` (it *is* M/M/k then), and for ``k = 1`` with
    Poisson arrivals it reduces to Pollaczek-Khinchine exactly.
    """
    if cs2 < 0.0 or ca2 < 0.0:
        raise ValueError("cs2 and ca2 must be >= 0")
    return ((ca2 + cs2) / 2.0) * mmk_mean_wait(
        arrival_rate, mean_service_s, servers)


# ----------------------------------------------------------------------
# Regimes and tolerance bands (the trust guide, in code)
# ----------------------------------------------------------------------
#: Relative tolerance on mean wait per regime, validated by the sweep in
#: :mod:`repro.theory.validate` and documented in docs/PERFORMANCE.md.
#: "exact" regimes are limited only by DES sampling noise.
REGIME_TOLERANCE: Dict[str, float] = {
    "exact": 0.10,
    "kingman-moderate": 0.20,
    "kingman-heavy": 0.40,
}


def regime_for(cs2: float, servers: int, ca2: float = 1.0) -> str:
    """Which trust regime a configuration falls in.

    - ``exact``: a closed form with no distributional approximation
      (M/M/k, or M/G/1 where P-K is exact in the mean).
    - ``kingman-moderate``: M/G/k, k > 1, Cs^2 <= 2.
    - ``kingman-heavy``: M/G/k, k > 1, Cs^2 > 2 — heavy-tailed service;
      the scaling factor is a first-moment heuristic, trust the band.
    """
    if ca2 == 1.0 and (servers == 1 or abs(cs2 - 1.0) < 1e-12):
        return "exact"
    return "kingman-moderate" if cs2 <= 2.0 else "kingman-heavy"


# ----------------------------------------------------------------------
# The model object
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MgkModel:
    """One M/G/k station, parameterized the way telemetry sees it.

    ``cs2`` defaults to 1 (exponential); build from percentiles with
    :meth:`from_percentiles` or from a sketch via
    :class:`LognormalFit`.
    """

    arrival_rate: float
    mean_service_s: float
    cs2: float = 1.0
    servers: int = 1
    ca2: float = 1.0

    def __post_init__(self) -> None:
        if self.arrival_rate < 0.0:
            raise ValueError(f"arrival_rate must be >= 0, got {self.arrival_rate!r}")
        if self.mean_service_s <= 0.0:
            raise ValueError(
                f"mean_service_s must be > 0, got {self.mean_service_s!r}")
        if self.servers < 1:
            raise ValueError(f"servers must be >= 1, got {self.servers!r}")
        if self.utilization >= 1.0:
            raise ValueError(
                f"unstable: utilization {self.utilization:.3f} >= 1")

    @classmethod
    def from_percentiles(cls, arrival_rate: float,
                         percentiles: Mapping[float, float],
                         servers: int = 1, ca2: float = 1.0) -> "MgkModel":
        """Build from service-time percentile telemetry (lognormal fit)."""
        fit = LognormalFit.from_percentiles(percentiles)
        return cls(arrival_rate=arrival_rate, mean_service_s=fit.mean,
                   cs2=fit.cs2, servers=servers, ca2=ca2)

    @property
    def offered_load(self) -> float:
        return self.arrival_rate * self.mean_service_s

    @property
    def utilization(self) -> float:
        return self.offered_load / self.servers

    @property
    def regime(self) -> str:
        return regime_for(self.cs2, self.servers, self.ca2)

    @property
    def tolerance(self) -> float:
        """Documented relative tolerance on the mean wait."""
        return REGIME_TOLERANCE[self.regime]

    def wait_probability(self) -> float:
        """P(an arrival queues): Erlang C (exact for M/M/k; the standard
        surrogate for G service)."""
        return erlang_c(self.servers, self.offered_load)

    def mean_wait_s(self) -> float:
        """Mean queueing delay, dispatching to the tightest closed form."""
        if self.servers == 1 and self.ca2 == 1.0:
            return pk_mean_wait(self.arrival_rate, self.mean_service_s, self.cs2)
        return kingman_mean_wait(self.arrival_rate, self.mean_service_s,
                                 self.cs2, self.servers, self.ca2)

    def mean_sojourn_s(self) -> float:
        """Mean total time in system (wait + service)."""
        return self.mean_wait_s() + self.mean_service_s

    def wait_quantile(self, q: float) -> float:
        """The q-quantile of the queueing delay.

        Exact for M/M/k (``P(W > t) = C e^{-(k - a) t / E[S]}``); for G
        service the conditional wait is approximated exponential with
        mean matched to the approximate ``E[Wq]``.
        """
        if not 0.0 <= q < 1.0:
            raise ValueError(f"q must be in [0, 1), got {q!r}")
        p_wait = self.wait_probability()
        if q <= 1.0 - p_wait or p_wait <= 0.0:
            return 0.0
        mean_wait = self.mean_wait_s()
        cond_mean = mean_wait / p_wait
        return -math.log((1.0 - q) / p_wait) * cond_mean

    def wait_ccdf(self, t: float) -> float:
        """``P(Wq > t)`` under the same exponential-tail surrogate."""
        if t <= 0.0:
            return self.wait_probability()
        p_wait = self.wait_probability()
        if p_wait <= 0.0:
            return 0.0
        cond_mean = self.mean_wait_s() / p_wait
        if cond_mean <= 0.0:
            return 0.0
        return p_wait * math.exp(-t / cond_mean)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe parameters + derived quantities (for reports)."""
        return {
            "arrival_rate": self.arrival_rate,
            "mean_service_s": self.mean_service_s,
            "cs2": self.cs2,
            "servers": self.servers,
            "ca2": self.ca2,
            "utilization": self.utilization,
            "regime": self.regime,
            "tolerance": self.tolerance,
            "mean_wait_s": self.mean_wait_s(),
        }
