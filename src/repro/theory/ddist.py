"""Discretized latency distributions on a uniform grid.

The analytic fig15/fig13 path needs distribution *algebra* — add two
independent latencies (serial RPC children), take the max (parallel
fanout), mix (probabilistic branches) — none of which lognormals are
closed under. :class:`DDist` makes all of them exact up to a grid:

- a pmf over the uniform grid ``value(j) = (start + j) * h`` with bin
  width ``h`` (seconds);
- ``+`` is ``np.convolve`` of pmfs (grid offsets add);
- ``max`` multiplies CDFs on the aligned union grid;
- mixtures add weighted pmfs.

This is the DDist technique from the `cutefish/geods-analyze` snippet
(protocol-latency convolution), grown a proper origin offset so long
chains never materialize leading zero bins. Mass below ``TRIM_EPS`` at
either tail is trimmed after every operation, so support arrays stay
bounded through deep call trees.

Determinism: everything here is pure array math — no clocks, no RNG.
``from_samples`` exists for validation harnesses that *bring* samples.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence, Tuple

import numpy as np

from repro.sim.distributions import _ndtr, _ndtri

__all__ = ["DDist", "DEFAULT_BIN_S"]

#: Default bin width: 50 microseconds resolves the paper's 360 us median
#: threshold while keeping ~10 ms RPC supports at a few hundred bins.
DEFAULT_BIN_S = 50e-6

#: Probability mass trimmed from each tail after an operation.
TRIM_EPS = 1e-12


class DDist:
    """A probability mass function over ``value(j) = (start + j) * h``.

    Immutable by convention: operations return new instances. All
    binary operations require matching bin width ``h``.
    """

    __slots__ = ("h", "start", "pmf")

    def __init__(self, h: float, start: int, pmf: np.ndarray,
                 normalize: bool = True):
        if h <= 0.0:
            raise ValueError(f"bin width must be > 0, got {h!r}")
        pmf = np.asarray(pmf, dtype=float)
        if pmf.ndim != 1 or pmf.size == 0:
            raise ValueError("pmf must be a non-empty 1-d array")
        if (pmf < 0.0).any():
            raise ValueError("pmf must be non-negative")
        total = float(pmf.sum())
        if total <= 0.0:
            raise ValueError("pmf must have positive total mass")
        self.h = float(h)
        self.start = int(start)
        self.pmf = pmf / total if normalize else pmf
        self._trim()

    def _trim(self) -> None:
        keep = np.flatnonzero(np.cumsum(self.pmf) > TRIM_EPS)
        lo = int(keep[0]) if keep.size else 0
        tail = np.flatnonzero(np.cumsum(self.pmf[::-1]) > TRIM_EPS)
        hi = self.pmf.size - (int(tail[0]) if tail.size else 0)
        if lo > 0 or hi < self.pmf.size:
            trimmed = self.pmf[lo:hi].copy()
            total = float(trimmed.sum())
            self.pmf = trimmed / total
            self.start = self.start + lo

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, value: float, h: float = DEFAULT_BIN_S) -> "DDist":
        """A point mass at ``value`` (rounded to the grid)."""
        return cls(h, int(round(value / h)), np.ones(1))

    @classmethod
    def from_samples(cls, samples: Sequence[float],
                     h: float = DEFAULT_BIN_S) -> "DDist":
        """Empirical DDist from observed samples (validation use)."""
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            raise ValueError("need at least one sample")
        idx = np.rint(arr / h).astype(np.int64)
        lo = int(idx.min())
        pmf = np.bincount(idx - lo).astype(float)
        return cls(h, lo, pmf)

    @classmethod
    def from_cdf(cls, cdf: Callable[[np.ndarray], np.ndarray],
                 lo: float, hi: float, h: float = DEFAULT_BIN_S) -> "DDist":
        """Discretize an arbitrary CDF by differencing on bin edges.

        Bin ``j`` (centered at ``(start + j) h``) receives the mass
        between the surrounding half-grid edges, so the discrete mean
        tracks the continuous mean to ``O(h^2)``.
        """
        if hi <= lo:
            raise ValueError(f"need lo < hi, got {lo!r}, {hi!r}")
        start = int(math.floor(lo / h))
        stop = int(math.ceil(hi / h))
        edges = (np.arange(start, stop + 2) - 0.5) * h
        cv = np.asarray(cdf(edges), dtype=float)
        pmf = np.diff(cv)
        # Sweep out-of-range mass into the edge bins so totals stay 1.
        pmf[0] += cv[0]
        pmf[-1] += 1.0 - cv[-1]
        return cls(h, start, np.maximum(pmf, 0.0))

    @classmethod
    def from_lognormal(cls, mu: float, sigma: float,
                       h: float = DEFAULT_BIN_S,
                       tail_mass: float = 1e-6) -> "DDist":
        """Discretize ``ln X ~ N(mu, sigma)``, covering all but
        ``tail_mass`` of each tail."""
        if sigma < 0.0:
            raise ValueError(f"sigma must be >= 0, got {sigma!r}")
        if sigma == 0.0:
            return cls.constant(math.exp(mu), h)
        # Quantile bounds via the exact lognormal quantile function.
        z = _ndtri(1.0 - tail_mass)
        lo = math.exp(mu - sigma * z)
        hi = math.exp(mu + sigma * z)

        def _cdf(x: np.ndarray) -> np.ndarray:
            out = np.zeros_like(x)
            pos = x > 0.0
            out[pos] = [_ndtr((math.log(v) - mu) / sigma) for v in x[pos]]
            return out

        return cls.from_cdf(_cdf, lo, hi, h)

    @classmethod
    def zero_inflated_lognormal(cls, zero_fraction: float, mu: float,
                                sigma: float, h: float = DEFAULT_BIN_S,
                                ) -> "DDist":
        """Mixture of an atom at 0 and a lognormal positive part.

        Latency *components* are frequently zero-heavy (e.g. queues
        that are usually empty); the component-matrix decomposition
        models each as ``P(X = 0) = zero_fraction`` plus a lognormal
        fitted to the positive-part percentiles.
        """
        if not 0.0 <= zero_fraction <= 1.0:
            raise ValueError(
                f"zero_fraction must be in [0, 1], got {zero_fraction!r}")
        if zero_fraction >= 1.0:
            return cls.constant(0.0, h)
        positive = cls.from_lognormal(mu, sigma, h)
        if zero_fraction == 0.0:
            return positive
        return cls.mixture([(zero_fraction, cls.constant(0.0, h)),
                            (1.0 - zero_fraction, positive)])

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The grid values (seconds) carrying the pmf."""
        return (self.start + np.arange(self.pmf.size)) * self.h

    def mean(self) -> float:
        return float(np.dot(self.values, self.pmf))

    def var(self) -> float:
        v = self.values
        m = float(np.dot(v, self.pmf))
        return float(np.dot((v - m) ** 2, self.pmf))

    def std(self) -> float:
        return math.sqrt(self.var())

    def cdf_array(self) -> np.ndarray:
        return np.cumsum(self.pmf)

    def cdf(self, x: float) -> float:
        """``P(X <= x)`` (grid-resolution step function)."""
        j = int(math.floor(x / self.h + 0.5)) - self.start
        if j < 0:
            return 0.0
        if j >= self.pmf.size:
            return 1.0
        return float(self.pmf[: j + 1].sum())

    def ccdf(self, x: float) -> float:
        return 1.0 - self.cdf(x)

    def cdf_many(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cdf` over an array of points."""
        xs = np.asarray(xs, dtype=float)
        j = np.floor(xs / self.h + 0.5).astype(np.int64) - self.start
        cum = np.concatenate(([0.0], self.cdf_array()))
        return cum[np.clip(j + 1, 0, self.pmf.size)]

    def quantile(self, q: float) -> float:
        """Smallest grid value whose CDF reaches ``q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q!r}")
        cum = self.cdf_array()
        j = int(np.searchsorted(cum, min(q, cum[-1]), side="left"))
        j = min(j, self.pmf.size - 1)
        return float((self.start + j) * self.h)

    def percentile(self, p: float) -> float:
        return self.quantile(p / 100.0)

    def median(self) -> float:
        return self.quantile(0.5)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "DDist") -> None:
        if not isinstance(other, DDist):
            raise TypeError(f"expected DDist, got {type(other).__name__}")
        if other.h != self.h:
            raise ValueError(
                f"bin width mismatch: {self.h!r} vs {other.h!r}")

    #: Above this pmf-size product, convolution goes through the FFT
    #: (identical up to float round-off; the direct path is what the
    #: np.convolve property test pins).
    _FFT_THRESHOLD = 1 << 20

    def add(self, other: "DDist") -> "DDist":
        """Distribution of ``X + Y`` for independent X, Y (convolution)."""
        self._check_compatible(other)
        n = self.pmf.size + other.pmf.size - 1
        if self.pmf.size * other.pmf.size > self._FFT_THRESHOLD:
            nfft = 1 << max(1, (n - 1)).bit_length()
            pmf = np.fft.irfft(np.fft.rfft(self.pmf, nfft)
                               * np.fft.rfft(other.pmf, nfft), nfft)[:n]
            pmf = np.maximum(pmf, 0.0)
        else:
            pmf = np.convolve(self.pmf, other.pmf)
        return DDist(self.h, self.start + other.start, pmf)

    __add__ = add

    def shift(self, delta_s: float) -> "DDist":
        """``X + c`` for a constant ``c`` (grid-rounded)."""
        return DDist(self.h, self.start + int(round(delta_s / self.h)),
                     self.pmf.copy())

    def max(self, other: "DDist") -> "DDist":
        """Distribution of ``max(X, Y)`` for independent X, Y.

        CDFs multiply on the aligned union grid.
        """
        self._check_compatible(other)
        lo = min(self.start, other.start)
        hi = max(self.start + self.pmf.size, other.start + other.pmf.size)
        n = hi - lo

        def _aligned_cdf(d: "DDist") -> np.ndarray:
            out = np.zeros(n)
            off = d.start - lo
            out[off: off + d.pmf.size] = np.cumsum(d.pmf)
            out[off + d.pmf.size:] = out[off + d.pmf.size - 1]
            return out

        cdf = _aligned_cdf(self) * _aligned_cdf(other)
        pmf = np.diff(cdf, prepend=0.0)
        return DDist(self.h, lo, np.maximum(pmf, 0.0))

    def max_n(self, n: int) -> "DDist":
        """``max`` of ``n`` i.i.d. copies (CDF raised to the n-th power)."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n!r}")
        if n == 1:
            return self
        cdf = self.cdf_array() ** n
        pmf = np.diff(cdf, prepend=0.0)
        return DDist(self.h, self.start, np.maximum(pmf, 0.0))

    def add_n(self, n: int) -> "DDist":
        """Sum of ``n`` i.i.d. copies (convolution by squaring)."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n!r}")
        result = None
        power = self
        while n:
            if n & 1:
                result = power if result is None else result.add(power)
            n >>= 1
            if n:
                power = power.add(power)
        return result

    @classmethod
    def mixture(cls, parts: Iterable[Tuple[float, "DDist"]]) -> "DDist":
        """Weighted mixture ``sum_i w_i X_i`` of distributions."""
        parts = list(parts)
        if not parts:
            raise ValueError("mixture needs at least one part")
        h = parts[0][1].h
        for _, d in parts:
            if d.h != h:
                raise ValueError("mixture parts must share bin width")
        lo = min(d.start for _, d in parts)
        hi = max(d.start + d.pmf.size for _, d in parts)
        pmf = np.zeros(hi - lo)
        for w, d in parts:
            if w < 0.0:
                raise ValueError(f"mixture weights must be >= 0, got {w!r}")
            off = d.start - lo
            pmf[off: off + d.pmf.size] += w * d.pmf
        return cls(h, lo, pmf)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"DDist(h={self.h:g}, bins={self.pmf.size}, "
                f"mean={self.mean():.3g}, p99={self.percentile(99):.3g})")
