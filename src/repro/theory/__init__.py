"""Closed-form queueing theory: the analytic fast path next to the DES.

The DES answers what-if and capacity questions exactly but at seconds
per configuration; this package answers the same questions in
microseconds from closed forms and discretized-distribution algebra,
and carries the validation harness that proves the approximations
trustworthy against matched DES runs.

- :mod:`repro.theory.mgk` — M/M/1 exact, M/G/1 Pollaczek-Khinchine,
  M/G/k Kingman/Allen-Cunneen, and lognormal percentile->(mu, sigma)
  fitting so telemetry-style p50/p95/p99 (or a ``LatencySketch``) feeds
  the models directly.
- :mod:`repro.theory.ddist` — discretized latency distributions with
  exact convolve/max/mixture algebra on a uniform grid.
- :mod:`repro.theory.convolve` — distribution propagation over
  ``FlatTree`` call trees and the component-matrix decomposition;
  analytic fig13/fig15 including ``what_if_components_analytic``.
- :mod:`repro.theory.validate` — the utilization x variability x fanout
  sweep that cross-validates every closed form against the DES and
  emits a JSON agreement report (``repro-rpc theory --sweep``).
"""

from repro.theory.ddist import DDist
from repro.theory.mgk import (
    LognormalFit,
    MgkModel,
    erlang_c,
    kingman_mean_wait,
    mm1_mean_wait,
    mm1_wait_quantile,
    mmk_mean_wait,
    pk_mean_wait,
)
from repro.theory.convolve import (
    ComponentProfile,
    analytic_queueing,
    propagate_tree,
    what_if_components_analytic,
)
from repro.theory.validate import AgreementReport, run_validation

__all__ = [
    "AgreementReport",
    "ComponentProfile",
    "DDist",
    "LognormalFit",
    "MgkModel",
    "analytic_queueing",
    "erlang_c",
    "kingman_mean_wait",
    "mm1_mean_wait",
    "mm1_wait_quantile",
    "mmk_mean_wait",
    "pk_mean_wait",
    "propagate_tree",
    "run_validation",
    "what_if_components_analytic",
]
