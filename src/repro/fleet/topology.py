"""Fleet geography and containment hierarchy.

The hierarchy is ``Fleet → Region → Datacenter → Cluster → Machine``.
Regions carry 2-D coordinates (in kilometres on an equirectangular plane),
which ground the WAN propagation delays of :mod:`repro.net.latency`: the
paper reports a maximum WAN RTT of roughly 200 ms, i.e. speed-of-light
distances between continents, and Fig. 19's latency-vs-distance staircase
(same datacenter → same country → different continents) falls out of this
geometry.

The default region layout below mimics a global deployment: clusters of
regions inside each continent, continents separated by thousands of km.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Region",
    "Datacenter",
    "Cluster",
    "Fleet",
    "FleetSpec",
    "build_fleet",
    "distance_km",
    "DEFAULT_REGION_SITES",
]

# Approximate site coordinates (x, y) in km on a flattened globe. The exact
# shape is irrelevant; what matters is that intra-continent distances are
# O(100-2000) km and inter-continent distances are O(7000-17000) km, so that
# WAN RTTs span ~1-200 ms as in the paper.
DEFAULT_REGION_SITES: Sequence[Tuple[str, float, float]] = (
    ("us-central", 0.0, 0.0),
    ("us-east", 1600.0, 200.0),
    ("us-west", -2400.0, 100.0),
    ("southamerica-east", 4800.0, -7600.0),
    ("europe-west", 7400.0, 1500.0),
    ("europe-north", 7900.0, 2600.0),
    ("asia-east", 11600.0, -900.0),
    ("asia-south", 13100.0, -2400.0),
    ("asia-northeast", 10200.0, 700.0),
    ("australia-southeast", 15200.0, -7900.0),
)


@dataclass(frozen=True)
class Region:
    """A geographic region hosting one or more datacenters."""

    name: str
    x_km: float
    y_km: float


@dataclass(frozen=True)
class Datacenter:
    """A physical datacenter within a region."""

    name: str
    region: Region


@dataclass
class Cluster:
    """A cluster of machines within a datacenter.

    ``speed_factor`` captures persistent cluster-to-cluster heterogeneity
    (hardware generation, typical co-location pressure): the paper finds
    1.24–10× latency spread across clusters for the *same* RPC (§3.3.3) and
    attributes it to cluster state. Values > 1 mean a slower cluster.
    """

    name: str
    datacenter: Datacenter
    index: int
    speed_factor: float = 1.0
    machines: list = field(default_factory=list)  # populated by the DES tier

    @property
    def region(self) -> Region:
        """The region this cluster's datacenter belongs to."""
        return self.datacenter.region

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:
        return f"Cluster({self.name!r}, dc={self.datacenter.name!r})"


def distance_km(a: Region, b: Region) -> float:
    """Euclidean distance between two regions on the flattened-globe plane."""
    return math.hypot(a.x_km - b.x_km, a.y_km - b.y_km)


@dataclass
class FleetSpec:
    """Parameters for :func:`build_fleet`.

    The defaults produce a small but fully global fleet suitable for tests
    and benches; scale up ``clusters_per_datacenter`` for larger studies.
    """

    datacenters_per_region: int = 2
    clusters_per_datacenter: int = 3
    sites: Sequence[Tuple[str, float, float]] = DEFAULT_REGION_SITES
    # Lognormal sigma of the per-cluster speed factor; 0 disables
    # heterogeneity. 0.45 yields roughly the 1.2-10x spread of §3.3.3.
    cluster_speed_sigma: float = 0.45


class Fleet:
    """The assembled topology."""

    def __init__(self, regions: List[Region], datacenters: List[Datacenter],
                 clusters: List[Cluster]):
        self.regions = regions
        self.datacenters = datacenters
        self.clusters = clusters
        self._clusters_by_name: Dict[str, Cluster] = {c.name: c for c in clusters}

    def cluster(self, name: str) -> Cluster:
        """The cluster hosting this task's machine."""
        return self._clusters_by_name[name]

    def clusters_in_region(self, region: Region) -> List[Cluster]:
        """All clusters whose region is ``region``."""
        return [c for c in self.clusters if c.region is region]

    def iter_cluster_pairs(self) -> Iterator[Tuple[Cluster, Cluster]]:
        """All unordered cluster pairs."""
        return itertools.combinations(self.clusters, 2)

    def __len__(self) -> int:
        return len(self.clusters)

    def __repr__(self) -> str:
        return (
            f"Fleet(regions={len(self.regions)}, datacenters={len(self.datacenters)}, "
            f"clusters={len(self.clusters)})"
        )


def build_fleet(spec: Optional[FleetSpec] = None, *, seed: int = 0) -> Fleet:
    """Construct a :class:`Fleet` from a :class:`FleetSpec`.

    Cluster speed factors are drawn deterministically from ``seed`` so the
    same spec+seed always yields the same fleet.
    """
    import numpy as np

    from repro.sim.random import derive_seed

    spec = spec or FleetSpec()
    rng = np.random.default_rng(derive_seed(seed, "fleet", "speed_factors"))

    regions = [Region(name, x, y) for name, x, y in spec.sites]
    datacenters: List[Datacenter] = []
    clusters: List[Cluster] = []
    cluster_index = 0
    for region in regions:
        for d in range(spec.datacenters_per_region):
            dc = Datacenter(f"{region.name}-dc{d}", region)
            datacenters.append(dc)
            for c in range(spec.clusters_per_datacenter):
                if spec.cluster_speed_sigma > 0:
                    speed = float(rng.lognormal(0.0, spec.cluster_speed_sigma))
                else:
                    speed = 1.0
                clusters.append(
                    Cluster(
                        name=f"{dc.name}-c{c}",
                        datacenter=dc,
                        index=cluster_index,
                        speed_factor=speed,
                    )
                )
                cluster_index += 1
    return Fleet(regions, datacenters, clusters)
