"""Thread-wakeup model.

The paper's Table-2 "long wakeup rate" is the fraction of OS scheduling
events that take longer than 50 µs — a proxy for run-queue pressure on a
busy machine. We model a wakeup as a two-mode draw: a fast path (the thread
is dispatched almost immediately) and a slow path whose probability grows
with CPU utilization and whose delay is lognormally heavy. The slow-path
probability *is* the exported long-wakeup-rate metric, which is what makes
Fig. 17's wakeup-rate-vs-latency correlation emerge rather than being wired
in directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["WakeupModel", "LONG_WAKEUP_THRESHOLD_S"]

# The paper's definition: a scheduling event is "long" if it exceeds 50 us.
LONG_WAKEUP_THRESHOLD_S = 50e-6


@dataclass
class WakeupModel:
    """Samples thread-wakeup delays as a function of CPU utilization.

    Parameters
    ----------
    fast_mean_s:
        Mean of the fast-path exponential delay (run queue empty).
    slow_median_s / slow_sigma:
        Lognormal parameters of the slow path (preempted / queued wakeups).
    base_long_rate / util_knee / util_slope:
        Logistic curve mapping utilization in [0, 1] to the slow-path
        probability: low and flat until the knee, then rising steeply —
        the classic hockey stick of run-queue delay.
    """

    fast_mean_s: float = 4e-6
    slow_median_s: float = 150e-6
    slow_sigma: float = 1.0
    base_long_rate: float = 0.002
    util_knee: float = 0.70
    util_slope: float = 14.0
    max_long_rate: float = 0.35

    def long_rate(self, utilization: float) -> float:
        """Probability that a wakeup takes the slow (>50 µs) path."""
        u = min(max(utilization, 0.0), 1.0)
        logistic = 1.0 / (1.0 + math.exp(-self.util_slope * (u - self.util_knee)))
        return self.base_long_rate + (self.max_long_rate - self.base_long_rate) * logistic

    def sample(self, rng: np.random.Generator, utilization: float,
               n: int = 1) -> np.ndarray:
        """Draw ``n`` wakeup delays (seconds) at the given utilization."""
        p_long = self.long_rate(utilization)
        slow = rng.random(n) < p_long
        delays = rng.exponential(self.fast_mean_s, size=n)
        n_slow = int(slow.sum())
        if n_slow:
            delays[slow] = rng.lognormal(
                math.log(self.slow_median_s), self.slow_sigma, size=n_slow
            )
        return delays

    def sample_one(self, rng: np.random.Generator, utilization: float) -> float:
        """One scalar draw."""
        return float(self.sample(rng, utilization, 1)[0])
