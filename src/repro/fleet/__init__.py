"""Fleet substrate: geography, datacenters, clusters, and machines.

The paper's fleet is Google's: hundreds of clusters across geo-distributed
datacenters, each cluster holding machines whose *exogenous state* (CPU
utilization, memory bandwidth, long-wakeup rate, cycles-per-instruction —
Table 2) drives RPC latency variation (§3.3.4). This package provides the
synthetic equivalent:

- :mod:`repro.fleet.topology` — regions with geographic coordinates,
  datacenters, clusters, machines, and fleet builders.
- :mod:`repro.fleet.machine` — the machine model: worker pools plus the
  exogenous-state process and its coupling into service times.
- :mod:`repro.fleet.scheduler` — the thread-wakeup model behind the paper's
  "long wakeup rate" variable.
"""

from repro.fleet.machine import ExogenousState, Machine, MachineProfile, populate_cluster
from repro.fleet.scheduler import WakeupModel
from repro.fleet.topology import (
    Cluster,
    Datacenter,
    Fleet,
    FleetSpec,
    Region,
    build_fleet,
    distance_km,
)

__all__ = [
    "Cluster",
    "Datacenter",
    "ExogenousState",
    "Fleet",
    "FleetSpec",
    "Machine",
    "MachineProfile",
    "Region",
    "WakeupModel",
    "build_fleet",
    "distance_km",
    "populate_cluster",
]
