"""The machine model: worker pools plus exogenous state.

Section 3.3.4 of the paper identifies four *exogenous variables* — CPU
utilization, memory bandwidth, long-wakeup rate, and cycles-per-instruction
(Table 2) — whose values correlate with RPC latency. In our substrate these
variables are produced by a per-machine stochastic process and then *fed
through* the service-time model, so the correlations measured by the
analyses are emergent properties of the simulation, not postulated curves:

- background (non-RPC tenant) utilization follows a diurnal wave plus
  band-limited noise, scaled by the cluster's ``speed_factor``;
- memory bandwidth tracks total utilization (co-located tenants stream
  memory roughly in proportion to the CPU they burn);
- CPI rises superlinearly with memory-bandwidth saturation (bandwidth
  contention stalls the core);
- the long-wakeup rate comes from :class:`repro.fleet.scheduler.WakeupModel`
  evaluated at the current utilization;
- the *service-time multiplier* applied to RPC handlers is
  ``CPI / base CPI``, so hot machines are slow machines.

Exogenous state is a deterministic function of simulated time (random
phases drawn at machine construction), which keeps the DES cheap: no
periodic update events are needed, and any component can ask for
``machine.exogenous(t)`` at arbitrary times (the Monarch scraper samples it
every 30 simulated minutes, as in the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.fleet.scheduler import WakeupModel
from repro.fleet.topology import Cluster
from repro.sim.engine import Simulator
from repro.sim.queues import Job, ServerPool
from repro.sim.random import derive_seed

__all__ = ["ExogenousState", "MachineProfile", "Machine", "DAY_SECONDS"]

DAY_SECONDS = 86400.0


@dataclass(frozen=True)
class ExogenousState:
    """A snapshot of Table 2's exogenous variables for one machine."""

    cpu_util: float        # fraction in [0, 1] (the paper plots percent)
    memory_bw_gbps: float  # total memory bandwidth utilized, GB/s
    long_wakeup_rate: float  # fraction of scheduling events > 50 us
    cycles_per_inst: float   # CPI

    def as_dict(self) -> dict:
        """Plain-dict view of the fields."""
        return {
            "cpu_util": self.cpu_util,
            "memory_bw_gbps": self.memory_bw_gbps,
            "long_wakeup_rate": self.long_wakeup_rate,
            "cycles_per_inst": self.cycles_per_inst,
        }


@dataclass
class MachineProfile:
    """Static hardware/configuration parameters of a machine."""

    cores: int = 16
    # Dedicated network-stack worker threads (TX and RX paths).
    tx_workers: int = 2
    rx_workers: int = 2
    base_cpi: float = 0.9
    memory_bw_capacity_gbps: float = 120.0
    # Background (non-RPC tenant) utilization: mean level, diurnal swing, and
    # noise amplitude, all as fractions of capacity.
    background_util_mean: float = 0.35
    diurnal_amplitude: float = 0.15
    noise_amplitude: float = 0.08
    # CPI inflation: cpi = base * (1 + cpi_contention_coeff * saturation^2).
    cpi_contention_coeff: float = 0.8
    # Memory BW as a function of utilization: bw = cap * (idle + slope*util).
    membw_idle_fraction: float = 0.12
    membw_util_slope: float = 0.85
    wakeup: WakeupModel = field(default_factory=WakeupModel)
    # Queue discipline of the handler pool (fifo/sjf/lifo; see
    # repro.sim.queues) - sjf is an oracle bound, not a deployable policy.
    handler_discipline: str = "fifo"
    # Whether RPC serving runs on reserved cores (the paper notes KV-Store
    # does): reserved cores decouple the handler from background CPU/mem-BW
    # pressure, leaving only CPI coupling.
    reserved_cores: bool = False


# Periods (seconds) of the band-limited background-noise components.
_NOISE_PERIODS_S = (421.0, 1777.0, 6991.0)


class Machine:
    """One server: ``cores`` workers serving RPC handler jobs.

    The machine owns a :class:`ServerPool` for handler execution and exposes
    the exogenous-state snapshot used both by the latency model (through
    :meth:`service_multiplier` and :meth:`sample_wakeup`) and by the
    monitoring layer.
    """

    def __init__(self, sim: Simulator, cluster: Cluster, index: int,
                 profile: Optional[MachineProfile] = None,
                 rng: Optional[np.random.Generator] = None):
        self.sim = sim
        self.cluster = cluster
        self.index = index
        self.name = f"{cluster.name}-m{index}"
        self.profile = profile or MachineProfile()
        rng = rng or np.random.default_rng(index)
        # Random phases make each machine's background wave distinct.
        self._diurnal_phase = float(rng.uniform(0, 2 * math.pi))
        self._noise_phases = rng.uniform(0, 2 * math.pi, size=len(_NOISE_PERIODS_S))
        self._noise_weights = rng.dirichlet(np.ones(len(_NOISE_PERIODS_S)))
        # Persistent per-machine offset (some machines just run hotter).
        self._util_offset = float(rng.normal(0.0, 0.05))
        self._exo_cache = None
        # Buffered randomness for the wakeup hot path.
        from repro.sim.random import BufferedDraws

        wk = self.profile.wakeup
        self._wk_fast = BufferedDraws(
            lambda n: rng.exponential(wk.fast_mean_s, n), size=512)
        self._wk_slow = BufferedDraws(
            lambda n: rng.lognormal(math.log(wk.slow_median_s), wk.slow_sigma, n),
            size=128)
        self._wk_uniform = BufferedDraws(lambda n: rng.random(n), size=512)
        self.pool = ServerPool(sim, self.profile.cores, name=self.name,
                               discipline=self.profile.handler_discipline)
        self.tx_pool = ServerPool(sim, self.profile.tx_workers, name=f"{self.name}-tx")
        self.rx_pool = ServerPool(sim, self.profile.rx_workers, name=f"{self.name}-rx")
        self._rng = rng
        # The cluster speed factor shifts the whole background level: slow
        # clusters are slow mostly because they are busy (§3.3.3-3.3.4).
        self._cluster_pressure = min(0.35, 0.27 * math.log(cluster.speed_factor)) \
            if cluster.speed_factor > 1.0 else 0.0

    # ------------------------------------------------------------------
    # Exogenous state
    # ------------------------------------------------------------------
    def background_util(self, t: float) -> float:
        """Non-RPC tenant CPU utilization at simulated time ``t``."""
        p = self.profile
        level = p.background_util_mean + self._util_offset + self._cluster_pressure
        level += p.diurnal_amplitude * math.sin(
            2 * math.pi * t / DAY_SECONDS + self._diurnal_phase
        )
        noise = sum(
            w * math.sin(2 * math.pi * t / period + phase)
            for w, period, phase in zip(
                self._noise_weights, _NOISE_PERIODS_S, self._noise_phases
            )
        )
        level += p.noise_amplitude * noise
        return min(max(level, 0.0), 0.98)

    def rpc_util(self) -> float:
        """Instantaneous utilization from RPC serving on this machine."""
        return self.pool.busy_servers / self.profile.cores

    # Exogenous state changes on second-to-minute scales; cache snapshots
    # per coarse time bucket so per-RPC lookups stay cheap.
    _EXO_CACHE_GRANULARITY_S = 0.5

    def exogenous(self, t: Optional[float] = None) -> ExogenousState:
        """Snapshot of Table 2's variables at time ``t`` (default: now)."""
        t = self.sim.now if t is None else t
        bucket = int(t / self._EXO_CACHE_GRANULARITY_S)
        cached = self._exo_cache
        if cached is not None and cached[0] == bucket:
            return cached[1]
        p = self.profile
        util = min(0.995, self.background_util(t) + self.rpc_util())
        mem_bw = p.memory_bw_capacity_gbps * min(
            1.0, p.membw_idle_fraction + p.membw_util_slope * util
        )
        saturation = mem_bw / p.memory_bw_capacity_gbps
        cpi = p.base_cpi * (1.0 + p.cpi_contention_coeff * saturation**2)
        state = ExogenousState(
            cpu_util=util,
            memory_bw_gbps=mem_bw,
            long_wakeup_rate=p.wakeup.long_rate(util),
            cycles_per_inst=cpi,
        )
        self._exo_cache = (bucket, state)
        return state

    # ------------------------------------------------------------------
    # Coupling into service times
    # ------------------------------------------------------------------
    def service_multiplier(self, t: Optional[float] = None) -> float:
        """How much slower a handler runs here than on an idle machine.

        The multiplier is CPI inflation; on reserved-core machines the
        coupling is damped (the paper observes KV-Store's latency tracks
        CPI but not overall CPU/memory pressure).
        """
        state = self.exogenous(t)
        raw = state.cycles_per_inst / self.profile.base_cpi
        if self.profile.reserved_cores:
            return 1.0 + 0.35 * (raw - 1.0)
        return raw

    def sample_wakeup(self, t: Optional[float] = None) -> float:
        """One thread-wakeup delay at the machine's current utilization."""
        state = self.exogenous(t)
        if self._wk_uniform.next() < state.long_wakeup_rate:
            return self._wk_slow.next()
        return self._wk_fast.next()

    def execute(self, base_service_time: float, on_done) -> Job:
        """Run a handler whose idle-machine time is ``base_service_time``.

        The actual occupancy is inflated by the current service multiplier;
        ``on_done(wait)`` receives the queue wait experienced by the job.
        """
        actual = base_service_time * self.service_multiplier()
        job = Job(service_time=actual, on_done=on_done)
        self.pool.submit(job)
        return job

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Machine({self.name!r})"


def populate_cluster(sim: Simulator, cluster: Cluster, machines: int,
                     profile: Optional[MachineProfile] = None,
                     rng_registry=None) -> List[Machine]:
    """Create ``machines`` machines in ``cluster`` and register them on it."""
    created = []
    for i in range(machines):
        if rng_registry is not None:
            rng = rng_registry.stream("machine", cluster.name, i)
        else:
            # Not hash(): string hashing is salted per process, which would
            # make the fallback seeds differ from run to run.
            rng = np.random.default_rng(derive_seed(0, "machine", cluster.name, i))
        m = Machine(sim, cluster, i, profile=profile, rng=rng)
        cluster.machines.append(m)
        created.append(m)
    return created
