"""Pre-wired studies: the glue between substrates and analyses.

These functions assemble a fleet, network, observability stack, and
deployments, run the simulation, and hand back everything the per-figure
analyses need. Benchmarks and examples call these rather than re-wiring
the world each time.

- :func:`run_service_study` — Tier B: the Table-1 services on a
  multi-cluster fleet (Figs. 14-18, 22, and the ablations).
- :func:`run_cross_cluster_study` — Tier B: one service's servers in a
  home cluster called from clients everywhere (Fig. 19).
- Tier A studies live in :mod:`repro.core.fleetsample`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from typing import Callable, Dict, List, Optional, Sequence

from repro.fleet.topology import Cluster, Fleet, FleetSpec, build_fleet
from repro.net.latency import NetworkModel
from repro.obs.alerting import (
    AdaptiveSamplingController,
    AlertManager,
    SloSpec,
)
from repro.obs.dapper import DapperCollector
from repro.obs.gwp import GwpProfiler
from repro.obs.metrics import MetricRegistry
from repro.obs.monarch import Monarch, MonarchScraper
from repro.obs.telemetry import MetricsProbe
from repro.rpc.errors import ErrorModel
from repro.rpc.hedging import NO_HEDGING, HedgingPolicy
from repro.rpc.tracing import SpanSink
from repro.sim.engine import Simulator
from repro.sim.instrument import Probe, ProbeGroup, resolve_probe
from repro.sim.random import RngRegistry
from repro.workloads.drivers import (
    DeploymentConfig,
    DiurnalPattern,
    OpenLoopDriver,
    ServiceDeployment,
)
from repro.workloads.services import SERVICE_SPECS, ServiceSpec

__all__ = ["ServiceStudy", "QueueingStudy", "run_service_study",
           "run_cross_cluster_study", "run_diurnal_study",
           "run_multitier_study", "run_queueing_study"]


@dataclass
class ServiceStudy:
    """Everything produced by a Tier-B run."""

    sim: Simulator
    fleet: Fleet
    network: NetworkModel
    dapper: DapperCollector
    monarch: Monarch
    gwp: GwpProfiler
    deployments: Dict[str, ServiceDeployment]
    drivers: List[OpenLoopDriver] = field(default_factory=list)
    scraper: Optional[MonarchScraper] = None
    metrics_registry: Optional[MetricRegistry] = None
    alerts: Optional[AlertManager] = None
    sampling: Optional[AdaptiveSamplingController] = None

    def clusters_by_name(self) -> Dict[str, Cluster]:
        """Cluster lookup by name."""
        return {c.name: c for c in self.fleet.clusters}


def run_service_study(
    services: Optional[Sequence[str]] = None,
    n_clusters: int = 2,
    duration_s: float = 8.0,
    seed: int = 11,
    server_machines_per_cluster: int = 3,
    diurnal_amplitude: float = 0.0,
    hedging: HedgingPolicy = NO_HEDGING,
    error_model: Optional[ErrorModel] = None,
    scrape_interval_s: Optional[float] = None,
    rate_scale: float = 1.0,
    per_cluster_rate_spread: float = 0.0,
    dapper_sampling: float = 0.35,
    probe: Optional[Probe] = None,
    slos: Optional[Sequence[SloSpec]] = None,
    alert_eval_interval_s: Optional[float] = None,
    trace_budget: Optional[float] = None,
    on_setup: Optional[Callable[[Simulator, Dict[str, "ServiceDeployment"]],
                                None]] = None,
    alert_wall_clock: Optional[Callable[[], float]] = None,
    span_sink: Optional[SpanSink] = None,
    keep_spans_in_memory: bool = True,
) -> ServiceStudy:
    """Run the Table-1 services with co-located clients in each cluster.

    ``services`` defaults to all eight; ``duration_s`` is simulated time.
    Each service gets its own machines in each of the first ``n_clusters``
    clusters of a default fleet, and one open-loop driver per cluster.
    ``probe`` (any :class:`~repro.sim.instrument.Probe`) observes the
    engine; results are unchanged with or without one.

    The observability control plane is opt-in: ``slos`` attaches an
    :class:`~repro.obs.alerting.AlertManager` evaluating those specs
    every ``alert_eval_interval_s`` (default: the scrape interval);
    ``trace_budget`` attaches an
    :class:`~repro.obs.alerting.AdaptiveSamplingController` steering
    Dapper head sampling toward that many root traces per interval.
    Either implies a :class:`~repro.obs.telemetry.MetricsProbe` grouped
    with ``probe`` whose registry the scraper exports (latency
    distributions become Monarch sketch series with exemplars).
    ``on_setup(sim, deployments)`` runs before the simulation starts —
    the hook studies use to schedule mid-run perturbations (e.g. a
    latency regression flipping a server's ``app_scale``).
    ``alert_wall_clock`` (harness code only) lets the scraper and alert
    manager time their own overhead.
    ``span_sink`` streams every sampled span into a
    :class:`~repro.rpc.tracing.SpanSink` (e.g. a warehouse
    :class:`~repro.obs.spanstore.SpanStoreSink`) as it is recorded;
    ``keep_spans_in_memory=False`` additionally stops the collector from
    accumulating ``dapper.spans``, bounding study RSS by the sink's
    shard size instead of the span count.
    """
    service_names = list(services) if services else list(SERVICE_SPECS)
    unknown = set(service_names) - set(SERVICE_SPECS)
    if unknown:
        raise KeyError(f"unknown services: {sorted(unknown)}")

    if scrape_interval_s is None:
        # The paper's Monarch cadence is 30 minutes; short studies scale
        # it down so several scrapes land inside the run.
        scrape_interval_s = min(1800.0, max(duration_s / 8.0, 0.25))
    control_plane = slos is not None or trace_budget is not None
    metrics_probe: Optional[MetricsProbe] = None
    if control_plane:
        metrics_probe = MetricsProbe()
        probe = resolve_probe(ProbeGroup(probe, metrics_probe))
    sim = Simulator(probe=probe)
    rngs = RngRegistry(seed)
    fleet = build_fleet(FleetSpec(), seed=seed)
    if n_clusters > len(fleet.clusters):
        raise ValueError(
            f"fleet has {len(fleet.clusters)} clusters, asked for {n_clusters}"
        )
    clusters = fleet.clusters[:n_clusters]
    network = NetworkModel()
    dapper = DapperCollector(sampling_rate=dapper_sampling,
                             rng=rngs.stream("dapper"))
    if span_sink is not None:
        # Stream sampled spans straight into the warehouse sink; with
        # keep_spans_in_memory=False the sink holds the only copy and
        # dapper.spans stays empty (out-of-core span corpus).
        dapper.spool_to(span_sink, keep_in_memory=keep_spans_in_memory)
    monarch = Monarch()
    gwp = GwpProfiler()
    # Created before the alert manager: at coincident sim times the
    # engine fires FIFO, so the scrape lands before the rules read it.
    scraper = MonarchScraper(sim, monarch, interval_s=scrape_interval_s,
                             wall_clock=alert_wall_clock)
    if metrics_probe is not None:
        scraper.register(metrics_probe.registry)
    alerts: Optional[AlertManager] = None
    if slos is not None:
        alerts = AlertManager(
            sim, monarch, slos,
            interval_s=alert_eval_interval_s or scrape_interval_s,
            wall_clock=alert_wall_clock,
        )
    sampling: Optional[AdaptiveSamplingController] = None
    if trace_budget is not None:
        sampling = AdaptiveSamplingController(
            sim, dapper, interval_s=scrape_interval_s,
            trace_budget=trace_budget, alerts=alerts,
        )

    deployments: Dict[str, ServiceDeployment] = {}
    drivers: List[OpenLoopDriver] = []
    for name in service_names:
        spec: ServiceSpec = SERVICE_SPECS[name]
        dep = ServiceDeployment(
            sim, spec, clusters, network,
            dapper=dapper, gwp=gwp, rngs=rngs.fork("dep", name),
            config=DeploymentConfig(
                server_machines_per_cluster=server_machines_per_cluster,
                hedging=hedging,
            ),
            error_model=error_model,
        )
        deployments[name] = dep
        scraper.add_collector(dep.monarch_collectors())
        for cluster in clusters:
            # Demand is geographic: with a non-zero spread, clusters see
            # different offered loads (the cluster-level balancer optimizes
            # network latency, not CPU balance — §4.3 / Fig. 22).
            scale = rate_scale
            if per_cluster_rate_spread > 0:
                demand_rng = rngs.stream("demand", name, cluster.name)
                # Clipped so no cluster is pushed past its stability
                # region: the imbalance under study is utilization spread,
                # not queue divergence.
                scale *= float(np.clip(
                    np.exp(demand_rng.normal(0.0, per_cluster_rate_spread)),
                    0.7, 1.18,
                ))
            driver = OpenLoopDriver(
                dep, cluster,
                diurnal=DiurnalPattern(amplitude=diurnal_amplitude),
                rate_scale=scale,
            )
            driver.start(duration_s)
            drivers.append(driver)

    if on_setup is not None:
        on_setup(sim, deployments)
    sim.run_until(duration_s)
    # Stop scraping when offered load stops: cumulative-utilization
    # samples taken during the drain would dilute the usage figures.
    scraper.stop()
    # Let in-flight RPCs drain (bounded: WAN RTT + deep queues). Alert
    # evaluation keeps running so firing alerts resolve as their windows
    # empty out.
    sim.run_until(duration_s + 30.0)
    return ServiceStudy(sim=sim, fleet=fleet, network=network, dapper=dapper,
                        monarch=monarch, gwp=gwp, deployments=deployments,
                        drivers=drivers, scraper=scraper,
                        metrics_registry=(metrics_probe.registry
                                          if metrics_probe else None),
                        alerts=alerts, sampling=sampling)


def run_diurnal_study(
    service: str = "Bigtable",
    n_slices: int = 24,
    slice_duration_s: float = 2.0,
    seed: int = 17,
    clusters: Optional[Sequence[int]] = None,
    probe: Optional[Probe] = None,
) -> ServiceStudy:
    """Fig. 18's setup: one service observed across a full simulated day.

    Simulating 24 continuous hours of RPC traffic is wasteful — the daily
    signal lives in the machines' *exogenous* state, which is a
    deterministic function of simulated time. We therefore sample the day
    with ``n_slices`` short traffic slices at evenly spaced wall-clock
    offsets: each slice re-creates the same deployment (same seed → same
    machine phases → a consistent diurnal trajectory) with its simulator
    clock started at the slice's offset. Spans and Monarch points from all
    slices merge into one study object covering the day.
    """
    from repro.fleet.machine import DAY_SECONDS

    spec = SERVICE_SPECS[service]
    merged_dapper = DapperCollector(sampling_rate=1.0)
    merged_monarch = Monarch()
    gwp = GwpProfiler()
    last_study_parts = {}

    for i in range(n_slices):
        t0 = i * DAY_SECONDS / n_slices
        sim = Simulator(start_time=t0, probe=probe)
        rngs = RngRegistry(seed)  # identical phases in every slice
        fleet = build_fleet(FleetSpec(), seed=seed)
        if clusters is None:
            # The paper contrasts a fast and a slow cluster: pick the
            # extremes of the speed-factor distribution.
            ranked = sorted(fleet.clusters, key=lambda c: c.speed_factor)
            chosen = [ranked[0], ranked[-1]]
        else:
            chosen = [fleet.clusters[j] for j in clusters]
        network = NetworkModel()
        dep = ServiceDeployment(
            sim, spec, chosen, network,
            dapper=merged_dapper, gwp=gwp, rngs=rngs.fork("dep", service),
            config=DeploymentConfig(server_machines_per_cluster=2),
        )
        for cluster in chosen:
            driver = OpenLoopDriver(dep, cluster,
                                    diurnal=DiurnalPattern(amplitude=0.25))
            driver.start(slice_duration_s)
        sim.run_until(t0 + slice_duration_s + 3.0)
        # Exogenous snapshot per machine at the slice midpoint.
        for name, labels, value in dep.monarch_collectors()(t0):
            merged_monarch.write(name, labels, t0, value)
        last_study_parts = dict(sim=sim, fleet=fleet, network=network,
                                deployments={service: dep})

    return ServiceStudy(dapper=merged_dapper, monarch=merged_monarch,
                        gwp=gwp, drivers=[], **last_study_parts)


def run_multitier_study(
    duration_s: float = 3.0,
    seed: int = 41,
    frontend_rps: float = 150.0,
    fanout_bigtable: float = 3.0,
    fanout_kv: float = 2.0,
    fanout_disk: float = 2.0,
    probe: Optional[Probe] = None,
) -> ServiceStudy:
    """A causally nested three-tier application (true Dapper trees).

    ``Frontend/Search`` fans out to Bigtable and KV-Store; Bigtable fans
    out to Network Disk — the paper's archetypal front-end → back-end →
    network-filesystem flow (§2). Every child call is a real DES RPC
    linked into its parent's trace, and the parent's server-application
    component includes the child waits, exactly as Dapper reports it
    (§2.1).
    """
    from repro.rpc.channel import ChildCall, MethodRuntime, RpcClientTask
    from repro.rpc.loadbalancer import LeastLoadedPolicy
    from repro.sim.distributions import Constant, LogNormal, Truncated

    sim = Simulator(probe=probe)
    rngs = RngRegistry(seed)
    fleet = build_fleet(FleetSpec(), seed=seed)
    cluster = fleet.clusters[0]
    network = NetworkModel()
    dapper = DapperCollector(sampling_rate=1.0, rng=rngs.stream("dapper"))
    monarch = Monarch()
    gwp = GwpProfiler()

    deployments: Dict[str, ServiceDeployment] = {}
    for name in ("Bigtable", "NetworkDisk", "KVStore"):
        deployments[name] = ServiceDeployment(
            sim, SERVICE_SPECS[name], [cluster], network,
            dapper=dapper, gwp=gwp, rngs=rngs.fork("dep", name),
            config=DeploymentConfig(server_machines_per_cluster=2),
        )

    # Wire Bigtable -> NetworkDisk.
    disk_rt = deployments["NetworkDisk"].runtime
    bt_dep = deployments["Bigtable"]
    bt_dep.runtime.child_calls.append(ChildCall(
        runtime=disk_rt,
        count=Truncated(LogNormal.from_median_sigma(fanout_disk, 0.4),
                        low=0.0, high=8.0),
    ))
    disk_servers = deployments["NetworkDisk"].servers_by_cluster[cluster.name]
    disk_policy = LeastLoadedPolicy(d=2)
    for server in bt_dep.servers_by_cluster[cluster.name]:
        child_client = RpcClientTask(
            sim, server.machine, network, dapper=dapper, gwp=gwp,
            stack=deployments["NetworkDisk"].stack,
            rng=rngs.stream("childcli", server.machine.name),
        )
        server.configure_children(child_client, {
            disk_rt.full_method:
                lambda rng, s=disk_servers: disk_policy.pick(s, rng),
        })

    # The synthetic front end: fans out to Bigtable and KV-Store.
    bt_rt = deployments["Bigtable"].runtime
    kv_rt = deployments["KVStore"].runtime
    frontend_rt = MethodRuntime(
        service="Frontend", method="Search",
        app_time=LogNormal.from_median_sigma(300e-6, 0.6),
        request_size=Constant(600.0),
        response_size=LogNormal.from_median_sigma(8000.0, 0.8),
        app_cycles=LogNormal.from_median_sigma(0.04, 0.6),
        child_calls=[
            ChildCall(bt_rt, Truncated(
                LogNormal.from_median_sigma(fanout_bigtable, 0.4),
                low=1.0, high=10.0)),
            ChildCall(kv_rt, Truncated(
                LogNormal.from_median_sigma(fanout_kv, 0.4),
                low=0.0, high=8.0)),
        ],
    )
    from repro.fleet.machine import Machine
    from repro.rpc.channel import RpcServerTask
    from repro.workloads.drivers import default_des_profile

    fe_machines = []
    fe_servers = []
    for i in range(2):
        m = Machine(sim, cluster, index=len(cluster.machines),
                    profile=default_des_profile(),
                    rng=rngs.stream("machine", "Frontend", i))
        cluster.machines.append(m)
        srv = RpcServerTask(sim, m, [frontend_rt],
                            rng=rngs.stream("server", "Frontend", i))
        bt_servers = deployments["Bigtable"].servers_by_cluster[cluster.name]
        kv_servers = deployments["KVStore"].servers_by_cluster[cluster.name]
        bt_policy = LeastLoadedPolicy(d=2)
        kv_policy = LeastLoadedPolicy(d=2)
        child_client = RpcClientTask(
            sim, m, network, dapper=dapper, gwp=gwp,
            rng=rngs.stream("fecli", i),
        )
        srv.configure_children(child_client, {
            bt_rt.full_method:
                lambda rng, s=bt_servers, p=bt_policy: p.pick(s, rng),
            kv_rt.full_method:
                lambda rng, s=kv_servers, p=kv_policy: p.pick(s, rng),
        })
        fe_machines.append(m)
        fe_servers.append(srv)

    # An end-user client drives the front end.
    user_machine = Machine(sim, cluster, index=len(cluster.machines),
                           profile=default_des_profile(),
                           rng=rngs.stream("machine", "User", 0))
    cluster.machines.append(user_machine)
    user = RpcClientTask(sim, user_machine, network, dapper=dapper, gwp=gwp,
                         rng=rngs.stream("user"))
    fe_policy = LeastLoadedPolicy(d=2)
    arrival_rng = rngs.stream("arrivals")

    def fire() -> None:
        user.call(frontend_rt,
                  pick_server=lambda rng: fe_policy.pick(fe_servers, rng))
        gap = float(arrival_rng.exponential(1.0 / frontend_rps))
        if sim.now + gap <= duration_s:
            sim.after(gap, fire)

    sim.after(float(arrival_rng.exponential(1.0 / frontend_rps)), fire)
    sim.run_until(duration_s + 20.0)
    return ServiceStudy(sim=sim, fleet=fleet, network=network, dapper=dapper,
                        monarch=monarch, gwp=gwp, deployments=deployments,
                        drivers=[])


@dataclass
class QueueingStudy:
    """A single-station M/G/k run: the theory layer's ground truth.

    ``waits`` holds every post-warmup job's queueing delay in arrival
    order, so means, quantiles, and the wait CCDF can all be checked
    against closed forms at the sample level.
    """

    waits: np.ndarray
    arrival_rate: float
    servers: int
    mean_service_s: float
    utilization: float

    @property
    def n_jobs(self) -> int:
        return int(self.waits.size)

    def mean_wait_s(self) -> float:
        """Mean queueing delay over the measured jobs."""
        return float(self.waits.mean()) if self.waits.size else 0.0

    def wait_quantile(self, q: float) -> float:
        """Empirical wait quantile (0 when no jobs survived warmup)."""
        return float(np.quantile(self.waits, q)) if self.waits.size else 0.0

    def stderr_mean_wait_s(self) -> float:
        """Standard error of the mean wait (i.i.d. approximation).

        Queue waits are autocorrelated, so this *understates* the true
        error; validation tolerances account for that with explicit
        regime bands rather than trusting the CI alone.
        """
        if self.waits.size < 2:
            return 0.0
        return float(self.waits.std(ddof=1) / np.sqrt(self.waits.size))


def run_queueing_study(
    arrival_rate: float,
    service,
    servers: int = 1,
    n_jobs: int = 20_000,
    seed: int = 23,
    warmup_fraction: float = 0.1,
) -> QueueingStudy:
    """One M/G/k station under Poisson arrivals, measured exactly.

    This is the matched DES point for the theory layer's validation
    sweep (:mod:`repro.theory.validate`): ``service`` is any
    :class:`~repro.sim.distributions.Distribution`; ``n_jobs`` arrivals
    are offered, the first ``warmup_fraction`` of completed waits are
    discarded (transient from the empty start), and the rest are
    returned in arrival order. Deterministic in ``seed``.
    """
    from repro.sim.queues import Job, ServerPool

    if arrival_rate <= 0.0:
        raise ValueError(f"arrival_rate must be > 0, got {arrival_rate!r}")
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs!r}")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction!r}")
    sim = Simulator()
    rngs = RngRegistry(seed)
    arrival_rng = rngs.stream("queueing", "arrivals")
    service_rng = rngs.stream("queueing", "service")
    pool = ServerPool(sim, servers, name="station", record_waits=True)
    # Pre-drawn vectorized gaps/services keep the event loop lean and the
    # draws independent of completion interleaving.
    gaps = arrival_rng.exponential(1.0 / arrival_rate, size=n_jobs)
    services = service.sample(service_rng, n_jobs)
    arrivals = np.cumsum(gaps)

    def submit(i: int) -> None:
        pool.submit(Job(service_time=float(services[i])))

    for i, t in enumerate(arrivals):
        sim.at(float(t), lambda i=i: submit(i))
    sim.run()
    waits = np.asarray(pool.stats.waits, dtype=float)
    skip = int(waits.size * warmup_fraction)
    measured = waits[skip:]
    mean_service = float(services.mean())
    busy_window = sim.now - float(arrivals[0])
    utilization = (pool.stats.total_service / (busy_window * servers)
                   if busy_window > 0 else 0.0)
    return QueueingStudy(waits=measured, arrival_rate=arrival_rate,
                         servers=servers, mean_service_s=mean_service,
                         utilization=min(1.0, utilization))


def run_cross_cluster_study(
    service: str = "Spanner",
    n_client_clusters: int = 20,
    duration_s: float = 30.0,
    seed: int = 13,
    calls_per_cluster_rps: float = 25.0,
    probe: Optional[Probe] = None,
) -> ServiceStudy:
    """Fig. 19's setup: servers in one home cluster, clients everywhere.

    The home cluster is the first cluster of the fleet; client clusters
    span the full geography so the distance staircase is visible.
    """
    spec = SERVICE_SPECS[service]
    sim = Simulator(probe=probe)
    rngs = RngRegistry(seed)
    # One cluster per datacenter across all regions for geographic spread.
    fleet = build_fleet(FleetSpec(datacenters_per_region=2,
                                  clusters_per_datacenter=2), seed=seed)
    if n_client_clusters > len(fleet.clusters):
        n_client_clusters = len(fleet.clusters)
    home = fleet.clusters[0]
    client_clusters = fleet.clusters[:n_client_clusters]
    network = NetworkModel()
    dapper = DapperCollector(sampling_rate=1.0, rng=rngs.stream("dapper"))
    monarch = Monarch()
    gwp = GwpProfiler()

    dep = ServiceDeployment(
        sim, spec, list(client_clusters), network,
        dapper=dapper, gwp=gwp, rngs=rngs.fork("dep", service),
        config=DeploymentConfig(server_machines_per_cluster=2,
                                client_machines_per_cluster=1),
    )
    drivers = []
    for cluster in client_clusters:
        driver = OpenLoopDriver(
            dep, cluster, target_cluster=home,
            rate_rps=calls_per_cluster_rps,
        )
        driver.start(duration_s)
        drivers.append(driver)
    sim.run_until(duration_s + 5.0)
    return ServiceStudy(sim=sim, fleet=fleet, network=network, dapper=dapper,
                        monarch=monarch, gwp=gwp,
                        deployments={service: dep}, drivers=drivers)
