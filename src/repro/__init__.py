"""repro-rpc: a reproduction of "A Cloud-Scale Characterization of Remote
Procedure Calls" (Seemakhupt et al., SOSP 2023).

The package is organized as the paper's study was:

- substrates (:mod:`repro.sim`, :mod:`repro.net`, :mod:`repro.fleet`,
  :mod:`repro.rpc`, :mod:`repro.workloads`) recreate the systems the paper
  measured;
- observability (:mod:`repro.obs`) rebuilds Monarch, Dapper, and GWP;
- analyses (:mod:`repro.core`) compute every figure and table from the
  observability layer's output;
- :mod:`repro.studies` pre-wires the discrete-event studies, and
  :mod:`repro.cli` exposes everything as the ``repro-rpc`` command.

See DESIGN.md for the substitution table (what the paper used vs what this
repository builds) and EXPERIMENTS.md for paper-vs-measured values.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
