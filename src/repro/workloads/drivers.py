"""DES deployment and open-loop load generation.

A :class:`ServiceDeployment` places one Table-1 service on dedicated
machines across a set of clusters (server tasks plus co-located client
tasks), and an :class:`OpenLoopDriver` offers load to it:

- arrivals are open-loop (they do not wait for completions — the defining
  property of production front-end traffic, and the reason queues actually
  build);
- the base rate is derived from the spec's target handler-pool
  ``offered_load``;
- a band-limited multiplicative modulator (log-amplitude =
  ``ln(burstiness)``) plus an optional diurnal wave shape the rate over
  time, which is what produces queueing-heavy behaviour for the high-load
  bursty services and the Fig. 18 daily swings.

The deployment also exposes Monarch collector callbacks exporting machine
exogenous state and CPU usage, which the Fig. 17/18/22 analyses query.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.fleet.machine import DAY_SECONDS, Machine, MachineProfile
from repro.fleet.topology import Cluster
from repro.net.latency import NetworkModel
from repro.obs.dapper import DapperCollector
from repro.obs.gwp import GwpProfiler
from repro.obs.monarch import MonarchScraper
from repro.rpc.channel import MethodRuntime, RpcClientTask, RpcServerTask
from repro.rpc.errors import ErrorModel
from repro.rpc.hedging import NO_HEDGING, HedgingPolicy
from repro.rpc.loadbalancer import LeastLoadedPolicy, Policy
from repro.rpc.stack import StackCostModel
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.workloads.services import ServiceSpec, build_method_runtime

__all__ = ["DeploymentConfig", "ServiceDeployment", "OpenLoopDriver",
           "scaled_stack", "DiurnalPattern", "default_des_profile"]


def scaled_stack(base: StackCostModel, multiplier: float) -> StackCostModel:
    """A stack cost model with all *time* constants scaled.

    Used for serialization-heavy schemas (KV-Store's proc_multiplier):
    cycle constants stay put — schema complexity costs wall time through
    the same categories.
    """
    return replace(
        base,
        serialize_base_s=base.serialize_base_s * multiplier,
        serialize_per_byte_s=base.serialize_per_byte_s * multiplier,
        compress_base_s=base.compress_base_s * multiplier,
        compress_per_byte_s=base.compress_per_byte_s * multiplier,
        encrypt_base_s=base.encrypt_base_s * multiplier,
        encrypt_per_byte_s=base.encrypt_per_byte_s * multiplier,
        netstack_base_s=base.netstack_base_s * multiplier,
        netstack_per_byte_s=base.netstack_per_byte_s * multiplier,
        rpc_library_s=base.rpc_library_s * multiplier,
    )


@dataclass(frozen=True)
class DiurnalPattern:
    """A daily load wave: multiplier(t) = 1 + amplitude*sin(2πt/day + phase)."""

    amplitude: float = 0.0
    phase: float = 0.0

    def multiplier(self, t: float) -> float:
        """Rate multiplier at time t."""
        if self.amplitude == 0.0:
            return 1.0
        return max(
            0.05,
            1.0 + self.amplitude * math.sin(2 * math.pi * t / DAY_SECONDS + self.phase),
        )


def default_des_profile() -> MachineProfile:
    """Machine profile for DES studies.

    Small worker pools keep simulated event rates tractable: queueing
    behaviour depends on *utilization*, not absolute core counts, so a
    4-core pool at 85 % load exhibits the same latency anatomy as a
    16-core pool at 85 % load at a quarter of the event volume.
    """
    return MachineProfile(cores=4, tx_workers=2, rx_workers=2)


@dataclass
class DeploymentConfig:
    """How a service is laid out in each cluster."""

    server_machines_per_cluster: int = 2
    client_machines_per_cluster: int = 1
    machine_profile: Optional[MachineProfile] = None
    hedging: HedgingPolicy = NO_HEDGING
    sampling_rate: float = 1.0


# Periods of the arrival-rate modulator (seconds). Kept at seconds scale
# so even short studies see several burst cycles rather than a frozen
# modulator phase (which would silently bias the offered load).
_BURST_PERIODS_S = (5.3, 23.0, 97.0)


class ServiceDeployment:
    """One service deployed on dedicated machines in several clusters."""

    def __init__(self, sim: Simulator, spec: ServiceSpec,
                 clusters: Sequence[Cluster], network: NetworkModel,
                 dapper: Optional[DapperCollector] = None,
                 gwp: Optional[GwpProfiler] = None,
                 rngs: Optional[RngRegistry] = None,
                 config: Optional[DeploymentConfig] = None,
                 error_model: Optional[ErrorModel] = None,
                 base_stack: Optional[StackCostModel] = None):
        if not clusters:
            raise ValueError("need at least one cluster")
        self.sim = sim
        self.spec = spec
        self.clusters = list(clusters)
        self.network = network
        self.dapper = dapper
        self.gwp = gwp
        self.rngs = rngs or RngRegistry(0)
        self.config = config or DeploymentConfig()

        stack = base_stack or StackCostModel()
        if spec.proc_multiplier != 1.0:
            stack = scaled_stack(stack, spec.proc_multiplier)
        self.stack = stack
        self.runtime: MethodRuntime = build_method_runtime(spec, error_model)

        profile = self.config.machine_profile or default_des_profile()
        if spec.reserved_cores and not profile.reserved_cores:
            profile = replace(profile, reserved_cores=True)
        self.profile = profile

        self.servers_by_cluster: Dict[str, List[RpcServerTask]] = {}
        self.clients_by_cluster: Dict[str, List[RpcClientTask]] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        cfg = self.config
        for cluster in self.clusters:
            servers = []
            for i in range(cfg.server_machines_per_cluster):
                machine = Machine(
                    self.sim, cluster, index=len(cluster.machines),
                    profile=self.profile,
                    rng=self.rngs.stream("machine", self.spec.name,
                                         cluster.name, "srv", i),
                )
                cluster.machines.append(machine)
                servers.append(RpcServerTask(
                    self.sim, machine, [self.runtime], stack=self.stack,
                    rng=self.rngs.stream("server", self.spec.name,
                                         cluster.name, i),
                ))
            self.servers_by_cluster[cluster.name] = servers

            clients = []
            client_profile = replace(self.profile, tx_workers=16, rx_workers=16)
            for i in range(cfg.client_machines_per_cluster):
                machine = Machine(
                    self.sim, cluster, index=len(cluster.machines),
                    profile=client_profile,
                    rng=self.rngs.stream("machine", self.spec.name,
                                         cluster.name, "cli", i),
                )
                cluster.machines.append(machine)
                clients.append(RpcClientTask(
                    self.sim, machine, self.network,
                    dapper=self.dapper, gwp=self.gwp, stack=self.stack,
                    rng=self.rngs.stream("client", self.spec.name,
                                         cluster.name, i),
                    hedging=cfg.hedging,
                ))
            self.clients_by_cluster[cluster.name] = clients

    # ------------------------------------------------------------------
    def all_servers(self) -> List[RpcServerTask]:
        """Every server task across clusters."""
        return [s for servers in self.servers_by_cluster.values() for s in servers]

    def all_server_machines(self) -> List[Machine]:
        """Every server machine across clusters."""
        return [s.machine for s in self.all_servers()]

    def base_rate_per_cluster(self, cluster: Optional[Cluster] = None) -> float:
        """Arrival rate (RPS per cluster) hitting the target handler load.

        Pacing is per cluster: a slow cluster's machines inflate service
        times (CPI), so its stable arrival rate is lower — production
        autoscalers provision per cluster for exactly this reason. With no
        ``cluster``, a fleet-average interference estimate is used.
        """
        # Lognormal mean from the spec's (median, sigma); the truncation at
        # 400x the median shaves a negligible sliver off it.
        mean_app = self.spec.app_median_s * math.exp(self.spec.app_sigma**2 / 2)
        if cluster is not None and cluster.name in self.servers_by_cluster:
            machines = [srv.machine
                        for srv in self.servers_by_cluster[cluster.name]]
            # Sample the deterministic exogenous trajectory over the first
            # simulated hour for a stable estimate.
            probes = [m.service_multiplier(t)
                      for m in machines for t in (0.0, 900.0, 2700.0)]
            interference = sum(probes) / len(probes)
        else:
            interference = 1.35
        servers = (self.config.server_machines_per_cluster
                   * self.profile.cores)
        return self.spec.offered_load * servers / (mean_app * interference)

    # ------------------------------------------------------------------
    def monarch_collectors(self):
        """Collector callbacks exporting exogenous state and CPU usage."""
        def collect(t: float) -> Iterable[Tuple[str, Dict[str, str], float]]:
            for cluster_name, servers in self.servers_by_cluster.items():
                for s in servers:
                    exo = s.machine.exogenous(t)
                    labels = {
                        "service": self.spec.name,
                        "cluster": cluster_name,
                        "machine": s.machine.name,
                    }
                    yield "machine/cpu_util", labels, exo.cpu_util
                    yield "machine/memory_bw_gbps", labels, exo.memory_bw_gbps
                    yield "machine/long_wakeup_rate", labels, exo.long_wakeup_rate
                    yield "machine/cycles_per_inst", labels, exo.cycles_per_inst
                    yield "server/rpcs_served", labels, float(s.rpcs_served)
                    # The service task's own CPU usage relative to its
                    # allocation (Fig. 22's used/limit ratio) — distinct
                    # from machine-wide utilization, which background
                    # tenants dominate.
                    yield "server/rpc_util", labels, \
                        s.machine.pool.utilization(since=0.0, now=t)
        return collect


class OpenLoopDriver:
    """Offers open-loop load to one cluster of a deployment."""

    def __init__(self, deployment: ServiceDeployment, cluster: Cluster,
                 policy: Optional[Policy] = None,
                 rate_rps: Optional[float] = None,
                 diurnal: DiurnalPattern = DiurnalPattern(),
                 target_cluster: Optional[Cluster] = None,
                 rate_scale: float = 1.0):
        self.deployment = deployment
        self.cluster = cluster
        self.target_cluster = target_cluster or cluster
        self.policy = policy or LeastLoadedPolicy(
            d=2, load_of=lambda s: s.load()
        )
        self.base_rate = (rate_rps if rate_rps is not None
                          else deployment.base_rate_per_cluster(cluster)
                          ) * rate_scale
        if self.base_rate <= 0:
            raise ValueError(f"non-positive arrival rate {self.base_rate!r}")
        self.diurnal = diurnal
        self.sim = deployment.sim
        spec = deployment.spec
        self._rng = deployment.rngs.stream("driver", spec.name, cluster.name)
        # Burst modulator phases (deterministic per driver).
        self._log_burst = math.log(max(spec.burstiness, 1.0))
        self._phases = self._rng.uniform(0, 2 * math.pi, size=len(_BURST_PERIODS_S))
        self._weights = self._rng.dirichlet(np.ones(len(_BURST_PERIODS_S)))
        self._stop_at: Optional[float] = None
        self.calls_offered = 0

    # ------------------------------------------------------------------
    def rate(self, t: float) -> float:
        """Offered arrival rate at time t."""
        burst = sum(
            w * math.sin(2 * math.pi * t / period + phase)
            for w, period, phase in zip(self._weights, _BURST_PERIODS_S,
                                        self._phases)
        )
        return (self.base_rate * math.exp(self._log_burst * burst)
                * self.diurnal.multiplier(t))

    def start(self, duration_s: float) -> None:
        """Begin offering load for a duration."""
        self._stop_at = self.sim.now + duration_s
        self._schedule_next()

    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        rate = self.rate(self.sim.now)
        gap = float(self._rng.exponential(1.0 / rate))
        if self._stop_at is not None and self.sim.now + gap > self._stop_at:
            return
        self.sim.after(gap, self._fire)

    def _fire(self) -> None:
        clients = self.deployment.clients_by_cluster[self.cluster.name]
        servers = self.deployment.servers_by_cluster[self.target_cluster.name]
        client = clients[int(self._rng.integers(len(clients)))]
        client.call(
            self.deployment.runtime,
            pick_server=lambda rng: self.policy.pick(servers, rng),
        )
        self.calls_offered += 1
        self._schedule_next()
