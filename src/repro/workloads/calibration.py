"""Paper anchors: every number the reproduction calibrates against.

Each constant cites the paper section it comes from. The catalog generator
consumes these, the benchmarks print measured-vs-paper rows from them, and
EXPERIMENTS.md is generated against them — so there is exactly one place
where a paper number can live.

All latencies are seconds, sizes are bytes, cycles are normalized cycles.
"""

from __future__ import annotations

__all__ = [name for name in dir() if name.isupper()]  # re-computed at bottom

# ----------------------------------------------------------------------
# §2.2 / Fig. 1 — growth
# ----------------------------------------------------------------------
STUDY_DAYS = 700
RPS_PER_CPU_ANNUAL_GROWTH = 0.30       # ~30 % per year
RPS_PER_CPU_TOTAL_GROWTH = 0.64        # 64 % over the 700-day interval

# ----------------------------------------------------------------------
# §2.3 / Fig. 2 — per-method completion-time distribution
# ----------------------------------------------------------------------
METHOD_COUNT = 10_000                  # "over 10,000 different RPC methods"
P1_LATENCY_90PCT_OF_METHODS_S = 657e-6   # 90 % of methods: P1 <= 657 us
MEDIAN_LATENCY_90PCT_OF_METHODS_S = 10.7e-3  # 90 % of methods: median >= 10.7 ms
P99_GE_1MS_FRACTION = 0.995            # 99.5 % of methods: P99 >= 1 ms
P99_LATENCY_MEDIAN_METHOD_S = 225e-3   # 50 % of methods: P99 >= 225 ms
SLOWEST_5PCT_P1_S = 166e-3             # slowest 5 % of methods: P1 >= 166 ms
SLOWEST_5PCT_P99_S = 5.0               # slowest 5 % of methods: P99 >= 5 s

# ----------------------------------------------------------------------
# §2.3 / Fig. 3 — popularity skew
# ----------------------------------------------------------------------
FASTEST_100_CALL_SHARE = 0.40          # 100 lowest-latency methods: 40 % of calls
NETWORK_DISK_WRITE_CALL_SHARE = 0.28   # a single Write method: 28 % of calls
TOP_10_CALL_SHARE = 0.58               # 10 most popular methods: 58 %
TOP_100_CALL_SHARE = 0.91              # 100 most popular: 91 %
SLOWEST_1000_CALL_SHARE = 0.011        # slowest 1000 methods: 1.1 % of calls
SLOWEST_1000_TIME_SHARE = 0.89         # ... but 89 % of total RPC time

# ----------------------------------------------------------------------
# §2.4 / Figs. 4-5 — call-tree shape
# ----------------------------------------------------------------------
MEDIAN_DESCENDANTS_HALF_OF_METHODS = 13    # half of methods: median <= 13
P90_DESCENDANTS_90PCT_OF_METHODS = 105     # 90 % of methods: P90 > 105
P99_DESCENDANTS_90PCT_OF_METHODS = 1155    # 90 % of methods: P99 > 1155
P99_ANCESTORS_HALF_OF_METHODS = 10         # half of methods: P99 ancestors < 10

# ----------------------------------------------------------------------
# §2.5 / Figs. 6-7 — sizes
# ----------------------------------------------------------------------
MIN_MESSAGE_BYTES = 64                     # smallest observed: one cache line
MEDIAN_REQUEST_BYTES_HALF_OF_METHODS = 1530
MEDIAN_RESPONSE_BYTES_HALF_OF_METHODS = 315
P90_REQUEST_BYTES = 11.8e3
P90_RESPONSE_BYTES = 10e3
P99_REQUEST_BYTES = 196e3
P99_RESPONSE_BYTES = 563e3

# ----------------------------------------------------------------------
# §2.6 / Fig. 8 — services
# ----------------------------------------------------------------------
TOP8_SERVICES_CALL_SHARE = 0.60        # top 8 services: 60 % of invocations
NETWORK_DISK_CALL_SHARE = 0.35         # Network Disk: 35 % of RPCs ...
NETWORK_DISK_CYCLE_SHARE_MAX = 0.02    # ... but < 2 % of fleet cycles
ML_INFERENCE_CYCLE_SHARE = 0.0089
ML_INFERENCE_CALL_SHARE = 0.0017
F1_CYCLE_SHARE = 0.018
F1_CALL_SHARE = 0.018

# ----------------------------------------------------------------------
# §3.2 / Figs. 10-13 — the RPC latency tax
# ----------------------------------------------------------------------
FLEET_AVG_TAX_FRACTION = 0.020         # tax = 2.0 % of completion time
FLEET_AVG_NETWORK_FRACTION = 0.011     # wire: 1.1 % of total time
FLEET_AVG_PROC_STACK_FRACTION = 0.0049  # proc + net stack: 0.49 %
FLEET_AVG_QUEUE_FRACTION = 0.0043      # queueing: 0.43 %
MEDIAN_METHOD_TAX_RATIO = 0.086        # median method: tax = 8.6 % of RCT
TOP10PCT_TAX_RATIO_MEDIAN = 0.38       # 10 % most-taxed methods: median 38 %
TOP10PCT_TAX_RATIO_P90 = 0.96          # ... P90 96 %

MAX_WAN_RTT_S = 0.200                  # longest WAN round trip: ~200 ms
NETSTACK_P99_FASTEST_1PCT_S = 6e-3     # wire+stack per-method P99 quantiles
NETSTACK_P99_FASTEST_10PCT_S = 19e-3
NETSTACK_P99_MEDIAN_METHOD_S = 115e-3
NETSTACK_P99_SLOWEST_10PCT_S = 271e-3
NETSTACK_P99_SLOWEST_1PCT_S = 826e-3

QUEUE_MEDIAN_HALF_OF_METHODS_S = 360e-6  # half of methods: median queue <= 360 us
QUEUE_P99_HALF_OF_METHODS_S = 102e-3     # ... P99 <= 102 ms
QUEUE_MEDIAN_WORST_10PCT_S = 1.1e-3      # worst 10 %: median >= 1.1 ms
QUEUE_P99_WORST_10PCT_S = 611e-3         # ... P99 >= 611 ms

# ----------------------------------------------------------------------
# §3.3 — service-specific studies
# ----------------------------------------------------------------------
DOMINANT_COMPONENT_MEDIAN_SHARE = (0.25, 0.66)   # 25-66 % at the median
DOMINANT_COMPONENT_P95_SHARE = (0.30, 0.83)      # 30-83 % at P95
P95_OVER_MEDIAN_RANGE = (1.86, 10.6)             # P95 / median per service
CROSS_CLUSTER_SPREAD_RANGE = (1.24, 10.0)        # same RPC across clusters

# ----------------------------------------------------------------------
# §4.1 / Fig. 20 — the RPC cycle tax
# ----------------------------------------------------------------------
FLEET_CYCLE_TAX_FRACTION = 0.071       # 7.1 % of all fleet cycles
COMPRESSION_CYCLE_FRACTION = 0.031
NETWORKING_CYCLE_FRACTION = 0.017
SERIALIZATION_CYCLE_FRACTION = 0.012
RPC_LIBRARY_CYCLE_FRACTION = 0.011

# ----------------------------------------------------------------------
# §4.2 / Fig. 21 — per-method CPU cost
# ----------------------------------------------------------------------
CHEAPEST_CALLS_P10_RANGE_CYCLES = (0.017, 0.02)   # per-method P10 band
EXPENSIVE_CALLS_P90_RANGE_CYCLES = (0.02, 0.16)   # per-method P90 band

# ----------------------------------------------------------------------
# §4.4 / Fig. 23 — errors
# ----------------------------------------------------------------------
ERROR_RATE = 0.019
CANCELLED_ERROR_SHARE = 0.45
CANCELLED_CYCLE_SHARE = 0.55
NOT_FOUND_ERROR_SHARE = 0.20
NOT_FOUND_CYCLE_SHARE = 0.21

__all__ = [name for name in list(globals()) if name.isupper()]
