"""The eight production services of Table 1.

Each :class:`ServiceSpec` describes one of the paper's in-depth services:
its request/response sizes (request sizes come straight from Table 1), its
handler-time distribution, and the *deployment pressure* (offered load and
arrival burstiness) that the DES drivers apply. The paper's categorization
(§3.3.1) is reproduced mechanistically, not by labeling:

- **application-heavy** services (Bigtable, Network Disk, F1, ML Inference,
  Spanner) get handler times that dominate their stack costs; F1's handler
  variance is the largest (the same method executes queries of wildly
  varying complexity), which yields the paper's largest P95/median ratio;
- **queueing-heavy** services (SSD cache, Video Metadata) get small
  handlers but high offered load and bursty arrivals, so server queues
  dominate *emergently*;
- the **RPC-stack-heavy** service (KV-Store) has a tiny handler and a
  heavy response-serialization path, and runs on reserved cores (§3.3.4
  notes this, and it damps the CPU/memory-bandwidth coupling in Fig. 17).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.rpc.channel import MethodRuntime
from repro.rpc.errors import ErrorModel
from repro.sim.distributions import (
    Distribution,
    LogNormal,
    Mixture,
    Truncated,
)

__all__ = ["ServiceSpec", "SERVICE_SPECS", "build_method_runtime",
           "CATEGORY_APP", "CATEGORY_QUEUE", "CATEGORY_STACK"]

CATEGORY_APP = "application"
CATEGORY_QUEUE = "queueing"
CATEGORY_STACK = "rpc_stack"


@dataclass(frozen=True)
class ServiceSpec:
    """One Table-1 service and how to deploy it in the DES."""

    name: str
    method: str
    client_service: str           # Table 1's "Client" column
    category: str                 # expected dominant-component category
    request_bytes: int            # Table 1's "RPC Size"
    response_bytes_median: int
    response_bytes_sigma: float
    app_median_s: float
    app_sigma: float
    app_cycles_median: float
    app_cycles_sigma: float
    offered_load: float           # target utilization of the handler pool
    burstiness: float             # 1.0 = Poisson; >1 = bursty on/off
    proc_multiplier: float = 1.0  # serialization-heaviness of the schema
    reserved_cores: bool = False
    description: str = ""

    def app_time(self) -> Distribution:
        """The handler-time distribution."""
        return Truncated(
            LogNormal.from_median_sigma(self.app_median_s, self.app_sigma),
            high=self.app_median_s * 400,
        )

    def response_size(self) -> Distribution:
        """The response-size distribution."""
        return Truncated(
            LogNormal.from_median_sigma(float(self.response_bytes_median),
                                        self.response_bytes_sigma),
            low=64.0, high=4e6,
        )

    def request_size(self) -> Distribution:
        # Table 1 gives one nominal size; real requests jitter around it.
        """The request-size distribution."""
        return Truncated(
            LogNormal.from_median_sigma(float(self.request_bytes), 0.25),
            low=64.0, high=1e6,
        )

    def app_cycles(self) -> Distribution:
        """The handler cycle-cost distribution."""
        return LogNormal.from_median_sigma(self.app_cycles_median,
                                           self.app_cycles_sigma)


# Handler-time medians are set so intra-cluster completion times land on
# the Fig. 14 axis scales (Bigtable/Network Disk ~0-2 ms, F1 ~0-5 ms,
# KV-Store ~0-0.5 ms, ...) and P95/median spans the reported 1.86-10.6x.
SERVICE_SPECS: Dict[str, ServiceSpec] = {
    "Bigtable": ServiceSpec(
        name="Bigtable", method="SearchValue", client_service="KVStore",
        category=CATEGORY_APP, request_bytes=1000,
        response_bytes_median=4000, response_bytes_sigma=1.0,
        app_median_s=380e-6, app_sigma=0.85,
        app_cycles_median=0.035, app_cycles_sigma=0.9,
        offered_load=0.42, burstiness=1.25,
        description="Search value (storage)",
    ),
    "NetworkDisk": ServiceSpec(
        name="NetworkDisk", method="ReadSSD", client_service="Bigtable",
        category=CATEGORY_APP, request_bytes=32_000,
        response_bytes_median=32_000, response_bytes_sigma=0.4,
        app_median_s=450e-6, app_sigma=0.75,
        app_cycles_median=0.018, app_cycles_sigma=0.5,
        offered_load=0.48, burstiness=1.2,
        description="Read from SSD (storage)",
    ),
    "SSDCache": ServiceSpec(
        name="SSDCache", method="LookupStream", client_service="BigQuery",
        category=CATEGORY_QUEUE, request_bytes=400,
        response_bytes_median=1500, response_bytes_sigma=0.8,
        app_median_s=200e-6, app_sigma=0.6,
        app_cycles_median=0.017, app_cycles_sigma=0.4,
        offered_load=0.60, burstiness=1.45,
        description="Look up streaming data (storage)",
    ),
    "VideoMetadata": ServiceSpec(
        name="VideoMetadata", method="GetMetadata", client_service="VideoSearch",
        category=CATEGORY_QUEUE, request_bytes=32_000,
        response_bytes_median=8000, response_bytes_sigma=0.9,
        app_median_s=120e-6, app_sigma=0.7,
        app_cycles_median=0.018, app_cycles_sigma=0.5,
        offered_load=0.62, burstiness=1.9,
        description="Get metadata (storage)",
    ),
    "Spanner": ServiceSpec(
        name="Spanner", method="ReadRows", client_service="NetworkInfo",
        category=CATEGORY_APP, request_bytes=800,
        response_bytes_median=2500, response_bytes_sigma=0.9,
        app_median_s=230e-6, app_sigma=0.8,
        app_cycles_median=0.030, app_cycles_sigma=0.8,
        offered_load=0.42, burstiness=1.25,
        description="Read rows (storage)",
    ),
    "F1": ServiceSpec(
        name="F1", method="ProcessPacket", client_service="F1",
        category=CATEGORY_APP, request_bytes=75,
        response_bytes_median=600, response_bytes_sigma=1.2,
        app_median_s=420e-6, app_sigma=1.3,
        app_cycles_median=0.08, app_cycles_sigma=1.4,
        # Heavy-tailed service times need utilization headroom: at higher
        # loads the queue diverges whenever a burst phase lingers.
        offered_load=0.42, burstiness=1.3,
        description="Process data packet (compute-intensive)",
    ),
    "MLInference": ServiceSpec(
        name="MLInference", method="Infer", client_service="MLClient",
        category=CATEGORY_APP, request_bytes=512,
        response_bytes_median=1200, response_bytes_sigma=0.6,
        app_median_s=1.3e-3, app_sigma=0.55,
        app_cycles_median=0.35, app_cycles_sigma=0.7,
        offered_load=0.50, burstiness=1.2,
        description="Perform inference (compute-intensive)",
    ),
    "KVStore": ServiceSpec(
        name="KVStore", method="SearchValue", client_service="Recommendations",
        category=CATEGORY_STACK, request_bytes=128,
        response_bytes_median=900, response_bytes_sigma=0.8,
        app_median_s=55e-6, app_sigma=0.55,
        app_cycles_median=0.016, app_cycles_sigma=0.3,
        offered_load=0.12, burstiness=1.1,
        proc_multiplier=5.5, reserved_cores=True,
        description="Search value (latency-sensitive in-memory cache)",
    ),
}


def build_method_runtime(spec: ServiceSpec,
                         error_model: Optional[ErrorModel] = None
                         ) -> MethodRuntime:
    """Convert a :class:`ServiceSpec` into a DES :class:`MethodRuntime`."""
    return MethodRuntime(
        service=spec.name,
        method=spec.method,
        app_time=spec.app_time(),
        request_size=spec.request_size(),
        response_size=spec.response_size(),
        app_cycles=spec.app_cycles(),
        error_model=error_model,
    )
