"""Workload substrate: the synthetic method catalog and the Table-1 services.

- :mod:`repro.workloads.calibration` — every anchor number the paper
  reports, as named constants (single source of truth for the generator
  and for EXPERIMENTS.md comparisons).
- :mod:`repro.workloads.catalog` — generates a fleet of RPC methods whose
  joint distributions (popularity, latency, sizes, fanout, CPU cost,
  locality) are calibrated to the paper's fleet-wide anchors.
- :mod:`repro.workloads.services` — the eight production services of
  Table 1, with per-service component-latency profiles for the DES tier.
- :mod:`repro.workloads.drivers` — open-loop (Poisson + diurnal) load
  generation against DES deployments.
"""

from repro.workloads.catalog import Catalog, CatalogConfig, MethodSpec, build_catalog
from repro.workloads.services import (
    SERVICE_SPECS,
    ServiceSpec,
    build_method_runtime,
)

__all__ = [
    "Catalog",
    "CatalogConfig",
    "MethodSpec",
    "SERVICE_SPECS",
    "ServiceSpec",
    "build_catalog",
    "build_method_runtime",
]
