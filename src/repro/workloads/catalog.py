"""The synthetic method catalog (Tier A).

This module generates a fleet of RPC methods whose *joint* distributions —
popularity, completion time, component latencies, sizes, fanout, CPU cost,
service membership — are calibrated against the anchors in
:mod:`repro.workloads.calibration`. The construction principles:

- **Per-method medians by quantile construction.** The paper reports fleet
  quantiles of per-method medians (e.g. 90 % of methods have median RCT
  ≥ 10.7 ms, the slowest 5 % sit near a second); we build the fleet
  quantile function through those anchor points by log-linear
  interpolation, which hits them by construction rather than by hoping a
  parametric family bends the right way.
- **Within-method shapes as mixtures.** A single method's latency spans
  three to four orders of magnitude (P1 of hundreds of µs against medians
  of tens of ms): we model a fast mode (cache hits / fast paths) plus a
  lognormal main mode. Slow methods lose the fast mode, which is what
  makes the slowest 5 %'s P1 land at ~166 ms as reported.
- **Popularity anti-correlates with latency.** Popularity is assigned by a
  noisy mapping onto the latency ranking plus an explicit head (the
  Network Disk "Write" spike of 28 %), reproducing both the top-10 = 58 %
  skew and the "fastest 100 methods = 40 % of calls" finding.
- **Structure over prescription.** Where the paper explains a mechanism
  (queueing heavier on hot methods, CPI inflating handlers, a fixed
  dispatch floor under CPU cost), the generator encodes the mechanism and
  lets the reported statistic emerge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.rpc.errors import ErrorModel
from repro.rpc.stack import (
    COMPONENTS,
    ComponentMatrix,
    StackCostModel,
)
from repro.sim.distributions import (
    Constant,
    Distribution,
    LogNormal,
    Mixture,
    Pareto,
    Shifted,
    Truncated,
)
from repro.sim.random import RngRegistry
from repro.workloads import calibration as cal

__all__ = [
    "CatalogConfig",
    "MethodSpec",
    "Catalog",
    "MethodSample",
    "build_catalog",
    "sample_method_calls",
]

# Layers of the service hierarchy (front-ends call mid-tiers call storage).
LAYER_ROOT = 0
LAYER_MID = 1
LAYER_BACKEND = 2
LAYER_LEAF = 3

# The eight Table-1 services plus the rest of the named head services.
HEAD_SERVICES = (
    # (service, target call share, cycle scale, layer bias)
    ("NetworkDisk", 0.35, 0.05, LAYER_LEAF),
    ("Spanner", 0.080, 0.8, LAYER_LEAF),
    ("KVStore", 0.070, 0.15, LAYER_LEAF),
    ("BigQuery", 0.030, 300.0, LAYER_BACKEND),
    ("F1", 0.018, 3.0, LAYER_BACKEND),
    ("SSDCache", 0.025, 0.15, LAYER_LEAF),
    ("Bigtable", 0.020, 0.8, LAYER_LEAF),
    ("VideoMetadata", 0.015, 0.4, LAYER_BACKEND),
    ("MLInference", 0.0017, 30.0, LAYER_BACKEND),
)


@dataclass
class CatalogConfig:
    """Knobs for :func:`build_catalog`.

    The defaults reproduce the paper at any ``n_methods``; tests and
    benches use a few hundred methods, full runs use 10,000.
    """

    n_methods: int = 1000
    seed: int = 2023

    # Fleet quantiles of per-method *median* app latency (seconds). The
    # q10/q50/q95 points implement the Fig. 2 anchors; q01/q999 bound the
    # construction.
    median_latency_quantiles: Sequence[Tuple[float, float]] = (
        (0.001, 0.25e-3),
        (0.10, 10.7e-3),
        (0.50, 31e-3),
        (0.80, 180e-3),
        (0.95, 1.60),
        (0.999, 12.0),
    )
    # Within-method main-mode lognormal sigma range.
    sigma_main_range: Tuple[float, float] = (0.6, 1.1)
    # Fast mode (cache hits): weight range and its suppression threshold.
    fast_mode_weight_range: Tuple[float, float] = (0.08, 0.32)
    fast_mode_median_s: float = 130e-6
    fast_mode_sigma: float = 0.6
    fast_mode_cutoff_s: float = 0.5  # methods slower than this lose it

    # Popularity construction (§2.3 / Fig. 3 anchors).
    head_share: float = cal.NETWORK_DISK_WRITE_CALL_SHARE     # rank-1 method
    top10_share: float = cal.TOP_10_CALL_SHARE
    top100_share: float = cal.TOP_100_CALL_SHARE
    tail_zipf_s: float = 0.15
    popularity_latency_noise: float = 1.45  # log-space noise of the mapping
    # Popularity ranks 2-100 are pushed away from the very fastest
    # methods: the paper's numbers imply it (fastest-100 = 40% of calls
    # while the rank-1 Write alone is 28% and top-100 is 91% - so ranks
    # 2-100 carry ~60% of calls mostly *outside* the fastest 100).
    # Ms-scale storage reads are extremely popular without being the
    # fastest methods in the fleet.
    head_latency_offset: float = 30.0
    mid_latency_offset: float = 10.0

    # Queueing (Fig. 13): popular, fast methods sit on well-provisioned
    # serving paths with short, tight queues; slow methods queue more and
    # heavier. Both the median and the sigma scale with method latency.
    queue_median_at_median_method_s: float = 200e-6
    queue_latency_exponent: float = 0.50
    queue_sigma_base: float = 2.05        # sigma at the median (31 ms) method
    queue_sigma_slope: float = 0.35       # d(sigma)/d(ln m)
    queue_sigma_range: Tuple[float, float] = (0.9, 2.45)
    queue_median_noise_sigma: float = 0.6
    queue_cap_s: float = 10.0

    # Wire locality (Fig. 12 / Fig. 19): per-call probability of leaving
    # the cluster. Popular storage methods are placement-optimized and
    # almost always local; slow aggregation methods cross the WAN more.
    wan_fraction_at_median_method: float = 0.035
    wan_fraction_latency_exponent: float = 0.75
    wan_fraction_noise_sigma: float = 0.8
    wan_fraction_cap: float = 0.45
    region_fraction_range: Tuple[float, float] = (0.05, 0.35)
    local_oneway: Tuple[float, float] = (55e-6, 0.55)   # (median, sigma)
    region_oneway: Tuple[float, float] = (1.1e-3, 0.5)
    wan_oneway: Tuple[float, float] = (28e-3, 0.75)
    wan_oneway_cap_s: float = 0.105
    wan_congestion_prob: float = 0.08
    wan_congestion: Tuple[float, float] = (30e-3, 1.8)   # lognormal add-on
    # Heavily-WAN methods traverse congested long-haul links: their
    # congestion episodes are deeper (multiplier grows with the method's
    # WAN fraction).
    wan_congestion_wan_coupling: float = 4.0
    intra_congestion_prob: float = 0.008   # fabric congestion on local paths
    intra_congestion: Tuple[float, float] = (2.5e-3, 1.2)

    # Sizes (Fig. 6-7).
    request_median_bytes: float = 1530.0
    request_median_sigma: float = 1.1
    request_sigma_range: Tuple[float, float] = (1.3, 1.8)
    response_ratio_median: float = 0.21
    response_ratio_sigma: float = 1.0
    response_sigma_range: Tuple[float, float] = (2.4, 3.0)
    bulk_mode_prob: float = 0.035         # per-call heavy transfer mode
    size_floor_bytes: float = float(cal.MIN_MESSAGE_BYTES)
    size_cap_bytes: float = 8e6

    # Proc+stack multiplier (schema complexity variation across methods).
    proc_multiplier_sigma: float = 0.55
    proc_noise_sigma: float = 0.35

    # CPU cost (Fig. 21): fixed dispatch floor + heavy lognormal.
    cycles_floor: float = 0.016
    cycles_median_excess: float = 0.012   # median of the variable part
    cycles_median_sigma: float = 1.0      # spread of medians across methods
    cycles_sigma_range: Tuple[float, float] = (1.2, 2.0)
    cycles_latency_exponent: float = 0.25  # weak latency coupling

    # Call-tree structure (Figs. 4-5).
    layer_fractions: Tuple[float, float, float, float] = (0.10, 0.28, 0.42, 0.20)
    fanout_small_median: float = 3.0
    fanout_small_sigma: float = 0.8
    fanout_partition_median: float = 55.0
    fanout_partition_sigma: float = 0.9
    partition_mode_prob_range: Tuple[float, float] = (0.05, 0.5)

    # Errors (Fig. 23).
    error_rate: float = cal.ERROR_RATE


@dataclass
class MethodSpec:
    """One RPC method's complete statistical identity."""

    method_id: int
    service: str
    method: str
    layer: int
    popularity: float          # normalized call-share weight
    median_app_s: float        # median handler latency (idle machine)
    app_time: Distribution
    queue_total: Distribution
    queue_split: np.ndarray    # weights over the four queue components
    locality: Tuple[float, float, float]  # (p_local, p_region, p_wan)
    request_size: Distribution
    response_size: Distribution
    proc_multiplier: float
    cycles: Distribution
    fanout: Distribution
    error_model: ErrorModel

    @property
    def full_method(self) -> str:
        """The ``"Service/Method"`` identifier."""
        return f"{self.service}/{self.method}"


@dataclass
class MethodSample:
    """A vectorized sample of ``n`` calls to one method."""

    spec: MethodSpec
    matrix: ComponentMatrix
    request_bytes: np.ndarray
    response_bytes: np.ndarray
    cycles: np.ndarray          # application cycles per call
    statuses: np.ndarray        # StatusCode objects

    def __len__(self) -> int:
        return len(self.matrix)


class Catalog:
    """The generated fleet of methods."""

    def __init__(self, methods: List[MethodSpec], config: CatalogConfig,
                 stack: StackCostModel):
        self.methods = methods
        self.config = config
        self.stack = stack
        self._by_full_name = {m.full_method: m for m in methods}

    def __len__(self) -> int:
        return len(self.methods)

    def __iter__(self):
        return iter(self.methods)

    def by_name(self, full_method: str) -> MethodSpec:
        """Look up a method spec by full name."""
        return self._by_full_name[full_method]

    def popularity_weights(self) -> np.ndarray:
        """All methods' popularity weights."""
        return np.array([m.popularity for m in self.methods])

    def sorted_by_median_latency(self) -> List[MethodSpec]:
        """Method specs sorted by median app time."""
        return sorted(self.methods, key=lambda m: m.median_app_s)

    def methods_in_layer(self, layer: int) -> List[MethodSpec]:
        """Method specs of one hierarchy layer."""
        return [m for m in self.methods if m.layer == layer]

    def services(self) -> List[str]:
        """All service names in the catalog."""
        return sorted({m.service for m in self.methods})


# ----------------------------------------------------------------------
# Quantile-function construction
# ----------------------------------------------------------------------
def _quantile_interp(anchors: Sequence[Tuple[float, float]],
                     u: np.ndarray) -> np.ndarray:
    """Log-linear interpolation of a quantile function through anchors."""
    qs = np.array([a[0] for a in anchors])
    vs = np.log(np.array([a[1] for a in anchors]))
    if np.any(np.diff(qs) <= 0) or np.any(np.diff(vs) < 0):
        raise ValueError("anchors must be strictly increasing in q and "
                         "non-decreasing in value")
    u = np.clip(u, qs[0], qs[-1])
    return np.exp(np.interp(u, qs, vs))


# ----------------------------------------------------------------------
# Popularity
# ----------------------------------------------------------------------
def _popularity_weights(n: int, cfg: CatalogConfig) -> np.ndarray:
    """Per-popularity-rank call-share weights hitting the Fig. 3 anchors.

    Rank 1 gets the Network-Disk-Write head; ranks 2-10 share
    ``top10 - head`` with geometric decay; ranks 11-100 share
    ``top100 - top10`` likewise; the rest follows a Zipf tail. For small
    catalogs the bands shrink proportionally.
    """
    if n < 1:
        raise ValueError("need at least one method")
    w = np.zeros(n)
    b1 = min(10, n)
    b2 = min(100, n)

    w[0] = cfg.head_share
    if b1 > 1:
        decay = np.power(0.78, np.arange(b1 - 1))
        w[1:b1] = (cfg.top10_share - cfg.head_share) * decay / decay.sum()
    if b2 > b1:
        decay = np.power(0.965, np.arange(b2 - b1))
        w[b1:b2] = (cfg.top100_share - cfg.top10_share) * decay / decay.sum()
    if n > b2:
        ranks = np.arange(1, n - b2 + 1, dtype=float)
        tail = ranks ** (-cfg.tail_zipf_s)
        w[b2:] = (1.0 - w[:b2].sum()) * tail / tail.sum()
    return w / w.sum()


def _assign_popularity(median_latency_s: np.ndarray, cfg: CatalogConfig,
                       rng: np.random.Generator) -> np.ndarray:
    """Map popularity ranks onto methods, favouring low-latency methods.

    Returns per-method popularity. The mapping perturbs the latency rank
    in log space so the correlation is strong but imperfect (some popular
    methods are slow; some fast methods are unpopular), matching the
    coexistence of "fastest 100 = 40 % of calls" with "slowest 1000 =
    1.1 % of calls".
    """
    n = len(median_latency_s)
    weights = _popularity_weights(n, cfg)
    latency_order = np.argsort(median_latency_s)  # fastest first
    # Perturbed target position for each popularity rank.
    ranks = np.arange(n, dtype=float) + 1.0
    noisy = ranks * np.exp(rng.normal(0.0, cfg.popularity_latency_noise, n))
    # Ranks 2-100 land among fast-but-not-fastest methods (config note).
    # The offsets express displacement in the 10,000-method fleet; smaller
    # catalogs scale them down so the distortion stays proportionate.
    scale = min(1.0, n / cal.METHOD_COUNT)
    head_offset = 1.0 + (cfg.head_latency_offset - 1.0) * scale
    mid_offset = 1.0 + (cfg.mid_latency_offset - 1.0) * scale
    head = slice(1, min(10, n))
    noisy[head] = noisy[head] * head_offset
    mid = slice(min(10, n), min(100, n))
    noisy[mid] = noisy[mid] * mid_offset
    # Popularity rank r lands on the method at perturbed latency position.
    positions = np.argsort(np.argsort(noisy))  # rank of each noisy value
    popularity = np.empty(n)
    popularity[latency_order[positions]] = weights
    return popularity


# ----------------------------------------------------------------------
# Service assignment
# ----------------------------------------------------------------------
def _assign_services(popularity: np.ndarray, layers: np.ndarray,
                     cfg: CatalogConfig,
                     rng: np.random.Generator) -> Tuple[List[str], Dict[int, float]]:
    """Assign each method a service; returns names and cycle scalers.

    Head services greedily claim popular methods until their target call
    share is met (Network Disk first — it owns the rank-1 Write method);
    everything else lands in generated long-tail services.
    """
    n = len(popularity)
    order = np.argsort(-popularity)  # most popular first
    names: List[Optional[str]] = [None] * n
    cycle_scale: Dict[int, float] = {}

    remaining = {svc: share for svc, share, _scale, _layer in HEAD_SERVICES}
    scale_of = {svc: scale for svc, _share, scale, _layer in HEAD_SERVICES}
    layer_of = {svc: layer for svc, _share, _scale, layer in HEAD_SERVICES}

    # ML Inference and F1 prefer *slow* methods (they are compute-heavy
    # and infrequent), so they pick from the unpopular side separately.
    slow_pref = {"MLInference", "F1", "BigQuery"}

    for idx in order:
        pop = popularity[idx]
        candidates = [
            svc for svc, rem in remaining.items()
            if rem > 0 and svc not in slow_pref
        ]
        if not candidates:
            break
        # The hungriest head service claims this method.
        svc = max(candidates, key=lambda s: remaining[s])
        if remaining[svc] < pop * 0.5 and pop > 0.01:
            continue  # a huge method would badly overshoot a small target
        names[idx] = svc
        layers[idx] = layer_of[svc]
        cycle_scale[idx] = scale_of[svc]
        remaining[svc] -= pop

    # Slow-preferring services take from the low-popularity end.
    for idx in order[::-1]:
        if names[idx] is not None:
            continue
        candidates = [s for s in slow_pref if remaining.get(s, 0) > 0]
        if not candidates:
            break
        svc = max(candidates, key=lambda s: remaining[s])
        names[idx] = svc
        layers[idx] = layer_of[svc]
        cycle_scale[idx] = scale_of[svc]
        remaining[svc] -= popularity[idx]

    # Long-tail services for everything unassigned.
    n_tail_services = max(3, n // 40)
    for idx in range(n):
        if names[idx] is None:
            names[idx] = f"svc-{int(rng.integers(n_tail_services)):03d}"
            # A slice of the long tail is analytics-style (expensive):
            # this is where most fleet CPU cycles actually live.
            heavy = 60.0 if rng.random() < 0.15 else 1.0
            cycle_scale[idx] = heavy * float(np.exp(rng.normal(0.0, 0.7)))
    return [str(s) for s in names], cycle_scale


# ----------------------------------------------------------------------
# The generator
# ----------------------------------------------------------------------
def build_catalog(config: Optional[CatalogConfig] = None,
                  stack: Optional[StackCostModel] = None) -> Catalog:
    """Generate a calibrated method catalog."""
    cfg = config or CatalogConfig()
    stack = stack or StackCostModel()
    n = cfg.n_methods
    if n < 10:
        raise ValueError(f"catalog needs at least 10 methods, got {n}")
    rngs = RngRegistry(cfg.seed)
    rng = rngs.stream("catalog")

    # --- per-method median app latency (quantile construction) ---
    u = (np.arange(n) + 0.5) / n
    rng.shuffle(u)
    median_app = _quantile_interp(cfg.median_latency_quantiles, u)

    # --- popularity and layers ---
    popularity = _assign_popularity(median_app, cfg, rng)
    layer_probs = np.array(cfg.layer_fractions) / np.sum(cfg.layer_fractions)
    layers = rng.choice(4, size=n, p=layer_probs)
    services, cycle_scale = _assign_services(popularity, layers, cfg, rng)

    # --- shared error model ---
    error_model = ErrorModel(error_rate=cfg.error_rate)

    methods: List[MethodSpec] = []
    latency_rank = np.argsort(np.argsort(median_app)) / max(n - 1, 1)

    for i in range(n):
        m = float(median_app[i])
        sigma_main = float(rng.uniform(*cfg.sigma_main_range))
        if m > 0.8:
            # The slowest methods have no sub-100ms executions at all
            # (their P1 is >= 166 ms in the paper): tighten the main mode.
            sigma_main = min(sigma_main, 0.85)
        # Fast mode fades out for slow methods (keeps the slowest 5 %'s P1
        # at ~166 ms as reported).
        fade = 1.0 / (1.0 + (m / cfg.fast_mode_cutoff_s) ** 8)
        w_fast = float(rng.uniform(*cfg.fast_mode_weight_range)) * fade
        main = LogNormal.from_median_sigma(m, sigma_main)
        if w_fast > 1e-3:
            fast = LogNormal.from_median_sigma(
                cfg.fast_mode_median_s * float(np.exp(rng.normal(0, 0.4))),
                cfg.fast_mode_sigma,
            )
            app_time: Distribution = Mixture([fast, main], [w_fast, 1 - w_fast])
        else:
            app_time = main

        # --- queueing ---
        q_med = (
            cfg.queue_median_at_median_method_s
            * (m / 31e-3) ** cfg.queue_latency_exponent
            * float(np.exp(rng.normal(0.0, cfg.queue_median_noise_sigma)))
        )
        q_sigma = float(np.clip(
            cfg.queue_sigma_base + cfg.queue_sigma_slope * math.log(m / 31e-3)
            + rng.normal(0.0, 0.15),
            *cfg.queue_sigma_range,
        ))
        queue_total = Truncated(
            LogNormal.from_median_sigma(q_med, q_sigma), high=cfg.queue_cap_s
        )
        queue_split = rng.dirichlet((0.9, 3.0, 1.2, 1.6))

        # --- locality ---
        # Mean-one lognormal noise so the fleet-average WAN fraction stays
        # at the configured level.
        noise_sigma = cfg.wan_fraction_noise_sigma
        p_wan = float(np.clip(
            cfg.wan_fraction_at_median_method
            * (m / 31e-3) ** cfg.wan_fraction_latency_exponent
            * np.exp(rng.normal(-noise_sigma**2 / 2, noise_sigma)),
            0.0, cfg.wan_fraction_cap,
        ))
        p_region = float(np.clip(
            0.02 + rng.uniform(*cfg.region_fraction_range)
            * (m / 31e-3) ** 0.45,
            0.0, 0.5,
        )) * (1 - p_wan)
        p_local = max(0.0, 1.0 - p_wan - p_region)

        # --- sizes ---
        req_med = float(
            np.exp(rng.normal(math.log(cfg.request_median_bytes),
                              cfg.request_median_sigma))
        )
        req_sigma = float(rng.uniform(*cfg.request_sigma_range))
        ratio = float(
            np.exp(rng.normal(math.log(cfg.response_ratio_median),
                              cfg.response_ratio_sigma))
        )
        resp_med = req_med * ratio
        resp_sigma = float(rng.uniform(*cfg.response_sigma_range))
        request_size = Truncated(
            Mixture(
                [LogNormal.from_median_sigma(req_med, req_sigma),
                 Pareto(max(req_med * 20, 20e3), 1.15)],
                [1 - cfg.bulk_mode_prob, cfg.bulk_mode_prob],
            ),
            low=cfg.size_floor_bytes, high=cfg.size_cap_bytes,
        )
        response_size = Truncated(
            Mixture(
                [LogNormal.from_median_sigma(max(resp_med, cfg.size_floor_bytes),
                                             resp_sigma),
                 Pareto(max(resp_med * 50, 40e3), 1.1)],
                [1 - cfg.bulk_mode_prob, cfg.bulk_mode_prob],
            ),
            low=cfg.size_floor_bytes, high=cfg.size_cap_bytes,
        )

        # --- CPU cost (weakly coupled to latency; floor under everything) ---
        # Per-method mean excess cost; the service scale multiplies the
        # mean, but the *median* stays modest (every method's cheap calls
        # hug the dispatch floor, Fig. 21), so scale lands in the tail.
        base_sigma = float(rng.uniform(*cfg.cycles_sigma_range))
        desired_mean = (
            cfg.cycles_median_excess
            * float(np.exp(rng.normal(0.0, cfg.cycles_median_sigma)))
            * (m / 31e-3) ** cfg.cycles_latency_exponent
            * cycle_scale[i]
            * math.exp(base_sigma**2 / 2)
        )
        c_med = min(
            cfg.cycles_median_excess
            * float(np.exp(rng.normal(0.0, 0.5)))
            * cycle_scale[i] ** 0.4,
            0.35,
        )
        c_sigma = float(np.clip(
            math.sqrt(2.0 * math.log(max(desired_mean / c_med, 1.1))),
            0.8, 2.7,
        ))
        # Deadlines bound how long any single RPC can burn a core: capping
        # per-call cycles also keeps fleet-mean estimates stable (a free
        # sigma=3 lognormal has a sample mean that never converges).
        cycles = Truncated(
            Shifted(
                LogNormal.from_median_sigma(max(c_med, 1e-5), c_sigma),
                offset=cfg.cycles_floor,
            ),
            high=60.0,
        )

        # --- fanout ---
        layer = int(layers[i])
        if layer >= LAYER_LEAF:
            # Storage methods are usually true leaves, but replication and
            # internal re-lookups give them an occasional small fanout —
            # which is why the paper sees non-zero descendant tails on
            # 90 % of methods.
            # Near-critical branching (E[children] ~ 0.96) is what makes
            # subtree sizes heavy-tailed, as in the paper's Fig. 4.
            fanout: Distribution = Mixture(
                [Constant(0.0),
                 LogNormal.from_median_sigma(3.0, 0.7)],
                [0.75, 0.25],
            )
        else:
            p_partition = float(rng.uniform(*cfg.partition_mode_prob_range))
            small = LogNormal.from_median_sigma(cfg.fanout_small_median,
                                                cfg.fanout_small_sigma)
            partition = LogNormal.from_median_sigma(cfg.fanout_partition_median,
                                                    cfg.fanout_partition_sigma)
            fanout = Mixture([small, partition], [1 - p_partition, p_partition])

        methods.append(MethodSpec(
            method_id=i,
            service=services[i],
            method=_method_name(services[i], i, latency_rank[i]),
            layer=layer,
            popularity=float(popularity[i]),
            median_app_s=m,
            app_time=app_time,
            queue_total=queue_total,
            queue_split=queue_split,
            locality=(p_local, p_region, p_wan),
            request_size=request_size,
            response_size=response_size,
            proc_multiplier=float(np.exp(rng.normal(0.0, cfg.proc_multiplier_sigma))),
            cycles=cycles,
            fanout=fanout,
            error_model=error_model,
        ))
    return Catalog(methods, cfg, stack)


_METHOD_VERBS = ("Read", "Write", "Lookup", "Scan", "Commit", "Query",
                 "Mutate", "Watch", "List", "Apply")


def _method_name(service: str, idx: int, latency_rank: float) -> str:
    verb = _METHOD_VERBS[idx % len(_METHOD_VERBS)]
    return f"{verb}{idx:05d}"


# ----------------------------------------------------------------------
# Vectorized per-call sampling
# ----------------------------------------------------------------------
def sample_method_calls(spec: MethodSpec, rng: np.random.Generator, n: int,
                        stack: Optional[StackCostModel] = None,
                        config: Optional[CatalogConfig] = None) -> MethodSample:
    """Draw ``n`` calls to ``spec`` with correlated components.

    Sizes are drawn first; the proc-stack components derive from them
    through the :class:`StackCostModel` (so big messages cost more to
    marshal); wire latency mixes the method's locality classes; queueing
    and application time come from the method's own distributions.
    """
    stack = stack or StackCostModel()
    cfg = config or CatalogConfig()

    req = spec.request_size.sample(rng, n)
    resp = spec.response_size.sample(rng, n)

    app = spec.app_time.sample(rng, n)
    qtot = spec.queue_total.sample(rng, n)
    qsplit = spec.queue_split

    # Per-call wire latency: locality class -> one-way medians; the total
    # is split 52/48 across the request/response legs.
    p_local, p_region, p_wan = spec.locality
    cls = rng.choice(3, size=n, p=np.array([p_local, p_region, p_wan]))
    wire = np.empty(n)
    for k, (med, sig) in enumerate((cfg.local_oneway, cfg.region_oneway,
                                    cfg.wan_oneway)):
        mask = cls == k
        cnt = int(mask.sum())
        if not cnt:
            continue
        draw = rng.lognormal(math.log(med), sig, size=cnt)
        if k == 2:
            draw = np.minimum(draw, cfg.wan_oneway_cap_s)
            congested = rng.random(cnt) < cfg.wan_congestion_prob
            n_c = int(congested.sum())
            if n_c:
                cmed, csig = cfg.wan_congestion
                cmed = cmed * (1.0 + cfg.wan_congestion_wan_coupling * p_wan)
                draw[congested] += rng.lognormal(math.log(cmed), csig, size=n_c)
        else:
            congested = rng.random(cnt) < cfg.intra_congestion_prob
            n_c = int(congested.sum())
            if n_c:
                cmed, csig = cfg.intra_congestion
                draw[congested] += rng.lognormal(math.log(cmed), csig, size=n_c)
        wire[mask] = 2.0 * draw  # both legs
    # Transfer time for the payloads rides on the wire component.
    wire = wire + (req + resp) * 8.0 / 8.0e9

    proc = (
        stack.proc_stack_time_vec(req) + stack.proc_stack_time_vec(resp)
    ) * spec.proc_multiplier * np.exp(rng.normal(0.0, cfg.proc_noise_sigma, n))

    cols = np.zeros((n, len(COMPONENTS)))
    comp_idx = {name: i for i, name in enumerate(COMPONENTS)}
    cols[:, comp_idx["client_send_queue"]] = qtot * qsplit[0]
    cols[:, comp_idx["server_recv_queue"]] = qtot * qsplit[1]
    cols[:, comp_idx["server_send_queue"]] = qtot * qsplit[2]
    cols[:, comp_idx["client_recv_queue"]] = qtot * qsplit[3]
    cols[:, comp_idx["request_network_wire"]] = wire * 0.52
    cols[:, comp_idx["response_network_wire"]] = wire * 0.48
    cols[:, comp_idx["request_proc_stack"]] = proc * 0.55
    cols[:, comp_idx["response_proc_stack"]] = proc * 0.45
    cols[:, comp_idx["server_application"]] = app

    cycles = spec.cycles.sample(rng, n)
    statuses = spec.error_model.sample_outcomes(rng, n)

    return MethodSample(
        spec=spec,
        matrix=ComponentMatrix(np.maximum(cols, 0.0)),
        request_bytes=req,
        response_bytes=resp,
        cycles=cycles,
        statuses=statuses,
    )
