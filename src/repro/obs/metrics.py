"""Task-exported metrics: counters, gauges, and distributions.

Simulated tasks (servers, clients, machines) export metrics through a
:class:`MetricRegistry`; the Monarch scraper walks the registry on its
sampling interval. Distributions use bounded reservoir sampling so that a
long simulation cannot grow memory without bound while percentile queries
stay accurate; alongside the reservoir each distribution maintains a
mergeable :class:`~repro.obs.sketch.LatencySketch` (what the scraper
actually exports to Monarch as distribution points) and a tail
:class:`~repro.obs.sketch.ExemplarReservoir` of the Dapper trace ids
behind its worst observations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.obs.sketch import Exemplar, ExemplarReservoir, LatencySketch

__all__ = ["Counter", "Gauge", "DistributionMetric", "MetricRegistry", "LabelSet"]

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Optional[Dict[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (e.g. RPCs served)."""

    def __init__(self) -> None:
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increase the counter (non-negative amounts only)."""
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount!r}")
        self.value += amount


class Gauge:
    """A point-in-time value, optionally backed by a callable."""

    def __init__(self, fn: Optional[Callable[[], float]] = None):
        self._fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge value (value-backed gauges only)."""
        if self._fn is not None:
            raise ValueError("cannot set a callable-backed gauge")
        self._value = value

    def read(self) -> float:
        """Current gauge value."""
        return self._fn() if self._fn is not None else self._value


class DistributionMetric:
    """A streaming distribution with bounded memory.

    Keeps exact count/sum/min/max plus a uniform reservoir of up to
    ``reservoir_size`` samples for percentile queries (skip-based
    reservoir sampling — Li's Algorithm L — so once the reservoir is
    full the RNG is consulted only at the O(k·log(n/k)) replacement
    events, not per observation), a cumulative :class:`LatencySketch`
    the Monarch scraper snapshots into per-interval distribution points,
    and an exemplar reservoir of up to ``exemplar_k`` tail
    ``(value, trace_id)`` pairs. The tail cut is the sketch's running
    p95 estimate, refreshed every 32 observations so the hot path stays
    cheap.
    """

    def __init__(self, reservoir_size: int = 4096,
                 rng: Optional[np.random.Generator] = None,
                 exemplar_k: int = 4):
        if reservoir_size < 1:
            raise ValueError(f"reservoir_size must be >= 1, got {reservoir_size!r}")
        self.reservoir_size = reservoir_size
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._reservoir: List[float] = []
        self._rng = rng or np.random.default_rng(0)
        self._skip_w = 1.0
        self._next_replace = 0
        self.sketch = LatencySketch()
        self._exemplars = ExemplarReservoir(k=exemplar_k, rng=self._rng)
        self._tail_cut = 0.0

    def _draw_skip(self) -> None:
        """Algorithm L: draw the absolute count of the next replacement.

        ``w`` is the running ``prod(u_i^(1/k))`` tracking the largest of
        the k reservoir keys; the geometric skip says how many incoming
        observations lose to it. Zero draws from the open interval are
        floored so the logs stay finite.
        """
        u1 = self._rng.random()
        self._skip_w *= math.exp(
            math.log(u1 if u1 > 0.0 else 1e-300) / self.reservoir_size)
        log_keep = math.log1p(-self._skip_w)
        if log_keep >= 0.0:  # w rounded to 0: no replacement ever again
            self._next_replace = 1 << 62
            return
        u2 = self._rng.random()
        skip = int(math.log(u2 if u2 > 0.0 else 1e-300) / log_keep)
        self._next_replace = self.count + skip + 1

    def observe(self, value: float, exemplar: Optional[int] = None) -> None:
        """Record one observation, optionally tagged with a trace id."""
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(value)
            if len(self._reservoir) == self.reservoir_size:
                self._draw_skip()
        elif self.count >= self._next_replace:
            j = int(self._rng.integers(self.reservoir_size))
            self._reservoir[j] = value
            self._draw_skip()
        self.sketch.observe(value)
        if exemplar is not None:
            if self.count % 32 == 0:
                self._tail_cut = self.sketch.quantile(0.95)
            if value >= self._tail_cut:
                self._exemplars.offer(value, exemplar)

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations."""
        for v in values:
            self.observe(float(v))

    def drain_exemplars(self) -> Tuple[Exemplar, ...]:
        """Tail exemplars gathered since the last drain (worst first)."""
        return self._exemplars.drain()

    @property
    def mean(self) -> float:
        """Analytic mean; see :meth:`Distribution.mean`."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """q in [0, 100]; uses the reservoir (exact until it overflows)."""
        if not self._reservoir:
            return 0.0
        return float(np.percentile(self._reservoir, q))

    def samples(self) -> np.ndarray:
        """The reservoir contents as an array."""
        return np.asarray(self._reservoir, dtype=float)


@dataclass
class MetricRegistry:
    """All metrics exported by one simulated process (task).

    Metric identity is ``(name, labels)``; the scraper snapshots counters
    and gauges and the current percentile summary of distributions.
    """

    counters: Dict[Tuple[str, LabelSet], Counter] = field(default_factory=dict)
    gauges: Dict[Tuple[str, LabelSet], Gauge] = field(default_factory=dict)
    distributions: Dict[Tuple[str, LabelSet], DistributionMetric] = field(
        default_factory=dict
    )

    def counter(self, name: str, labels: Optional[Dict[str, str]] = None) -> Counter:
        """Get-or-create a counter for (name, labels)."""
        key = (name, _labelset(labels))
        if key not in self.counters:
            self.counters[key] = Counter()
        return self.counters[key]

    def gauge(self, name: str, labels: Optional[Dict[str, str]] = None,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        """Get-or-create a gauge for (name, labels)."""
        key = (name, _labelset(labels))
        if key not in self.gauges:
            self.gauges[key] = Gauge(fn)
        return self.gauges[key]

    def distribution(self, name: str,
                     labels: Optional[Dict[str, str]] = None) -> DistributionMetric:
        """Get-or-create a distribution for (name, labels)."""
        key = (name, _labelset(labels))
        if key not in self.distributions:
            self.distributions[key] = DistributionMetric()
        return self.distributions[key]

    def snapshot(self) -> Dict[Tuple[str, LabelSet], float]:
        """Scalar view for the scraper: counter values and gauge reads."""
        out: Dict[Tuple[str, LabelSet], float] = {}
        for key, c in self.counters.items():
            out[key] = c.value
        for key, g in self.gauges.items():
            out[key] = g.read()
        return out
