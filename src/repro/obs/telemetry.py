"""Probe implementations: where runtime telemetry is aggregated.

The sim layer defines the hook interface
(:class:`repro.sim.instrument.Probe`) and stays obs-free; this module
provides the implementations a study actually attaches:

- :class:`MetricsProbe` — folds every hook into counters, gauges, and
  distributions on a :class:`~repro.obs.metrics.MetricRegistry`, so the
  harness's own behaviour is observable through the same registry the
  Monarch scraper walks.
- :class:`HeartbeatProbe` — cheap run-progress accounting (events fired,
  sim-time reached, RPCs completed, and — when a wall clock is injected —
  events/s and the sim-time rate) behind the dashboard's heartbeat panel.
- :class:`TraceEventProbe` — records the probe stream as Chrome
  trace-event slices and counters (job executions per pool, RPC
  lifetimes per method, heap-size counter track) ready for
  :mod:`repro.obs.chrometrace` to serialize.

None of these read the host clock: wall time, where wanted, is an
*injected* callable supplied by harness code (benchmarks, examples, the
CLI) that is allowed to measure real elapsed time.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.obs.metrics import (
    Counter,
    DistributionMetric,
    Gauge,
    MetricRegistry,
)
from repro.sim.instrument import Probe

__all__ = ["MetricsProbe", "HeartbeatProbe", "TraceEventProbe"]

# Synthetic pid values for probe-stream trace tracks (Dapper span tracks
# assign pids per service, starting at SPAN_PID_BASE in chrometrace).
ENGINE_PID = 1
RPC_PID = 2


class MetricsProbe(Probe):
    """Aggregates probe events into a :class:`MetricRegistry`.

    Metric objects are resolved once and cached (registry lookups build
    label tuples; the hooks themselves are hot), keyed by pool or method
    label.
    """

    __slots__ = ("registry", "_events_scheduled", "_events_fired",
                 "_events_cancelled", "_heap_size", "_sim_time_s",
                 "_queue_wait", "_queue_service", "_queue_depth",
                 "_attempts", "_hedges", "_completed", "_latency",
                 "_stage_s", "_deadline_hits")

    def __init__(self, registry: Optional[MetricRegistry] = None):
        self.registry = registry if registry is not None else MetricRegistry()
        reg = self.registry
        self._events_scheduled = reg.counter("telemetry/events_scheduled")
        self._events_fired = reg.counter("telemetry/events_fired")
        self._events_cancelled = reg.counter("telemetry/events_cancelled")
        self._heap_size = reg.gauge("telemetry/heap_size")
        self._sim_time_s = reg.gauge("telemetry/sim_time_s")
        self._deadline_hits = reg.counter("telemetry/rpc_deadline_hits")
        self._queue_wait: Dict[str, DistributionMetric] = {}
        self._queue_service: Dict[str, DistributionMetric] = {}
        self._queue_depth: Dict[str, Gauge] = {}
        self._attempts: Dict[str, Counter] = {}
        self._hedges: Dict[str, Counter] = {}
        self._completed: Dict[str, Counter] = {}
        self._latency: Dict[str, DistributionMetric] = {}
        self._stage_s: Dict[str, DistributionMetric] = {}

    # -- engine --------------------------------------------------------
    def event_scheduled(self, time_s, heap_size):
        self._events_scheduled.add()
        self._heap_size.set(heap_size)

    def event_fired(self, time_s, heap_size):
        self._events_fired.add()
        self._heap_size.set(heap_size)
        self._sim_time_s.set(time_s)

    def event_cancelled(self, time_s):
        self._events_cancelled.add()

    # -- queues --------------------------------------------------------
    def job_enqueued(self, pool, time_s, depth):
        gauge = self._queue_depth.get(pool)
        if gauge is None:
            gauge = self.registry.gauge("telemetry/queue_depth",
                                        {"pool": pool})
            self._queue_depth[pool] = gauge
        gauge.set(depth)

    def job_started(self, pool, time_s, wait_s):
        dist = self._queue_wait.get(pool)
        if dist is None:
            dist = self.registry.distribution("telemetry/queue_wait_s",
                                              {"pool": pool})
            self._queue_wait[pool] = dist
        dist.observe(wait_s)

    def job_finished(self, pool, time_s, service_s):
        dist = self._queue_service.get(pool)
        if dist is None:
            dist = self.registry.distribution("telemetry/queue_service_s",
                                              {"pool": pool})
            self._queue_service[pool] = dist
        dist.observe(service_s)

    # -- DES RPC channel ----------------------------------------------
    def rpc_attempt(self, method, time_s, attempt):
        counter = self._attempts.get(method)
        if counter is None:
            counter = self.registry.counter("telemetry/rpc_attempts",
                                            {"method": method})
            self._attempts[method] = counter
        counter.add()

    def rpc_hedge(self, method, time_s):
        counter = self._hedges.get(method)
        if counter is None:
            counter = self.registry.counter("telemetry/rpc_hedges",
                                            {"method": method})
            self._hedges[method] = counter
        counter.add()

    def rpc_completed(self, method, time_s, status, latency_s, attempts,
                      trace_id=0):
        counter = self._completed.get(method)
        if counter is None:
            counter = self.registry.counter("telemetry/rpc_completed",
                                            {"method": method})
            self._completed[method] = counter
        counter.add()
        dist = self._latency.get(method)
        if dist is None:
            dist = self.registry.distribution("telemetry/rpc_latency_s",
                                              {"method": method})
            self._latency[method] = dist
        dist.observe(latency_s, exemplar=trace_id if trace_id else None)

    # -- real RPC library ---------------------------------------------
    def rpc_stage(self, stage, elapsed_s):
        dist = self._stage_s.get(stage)
        if dist is None:
            dist = self.registry.distribution("telemetry/rpc_stage_s",
                                              {"stage": stage})
            self._stage_s[stage] = dist
        dist.observe(elapsed_s)

    def rpc_deadline_hit(self, method, elapsed_s, deadline_s):
        self._deadline_hits.add()


class HeartbeatProbe(Probe):
    """Run-progress accounting for the live dashboard panel.

    ``wall_clock`` is an optional zero-argument callable returning
    seconds (e.g. ``time.perf_counter`` passed in by harness code); with
    it, :meth:`snapshot` reports events/s and the sim-time rate
    (simulated seconds per wall second). Without it, rates are reported
    as 0 and only the deterministic counts are meaningful.
    """

    __slots__ = ("events_fired", "events_scheduled", "rpcs_completed",
                 "hedges", "sim_time_s", "_wall_clock", "_wall_start_s")

    def __init__(self, wall_clock: Optional[Callable[[], float]] = None):
        self.events_fired = 0
        self.events_scheduled = 0
        self.rpcs_completed = 0
        self.hedges = 0
        self.sim_time_s = 0.0
        self._wall_clock = wall_clock
        self._wall_start_s = wall_clock() if wall_clock is not None else 0.0

    def event_scheduled(self, time_s, heap_size):
        self.events_scheduled += 1

    def event_fired(self, time_s, heap_size):
        self.events_fired += 1
        self.sim_time_s = time_s

    def rpc_hedge(self, method, time_s):
        self.hedges += 1

    def rpc_completed(self, method, time_s, status, latency_s, attempts,
                      trace_id=0):
        self.rpcs_completed += 1

    def snapshot(self) -> Dict[str, float]:
        """The heartbeat: counts plus rates (0 when no wall clock)."""
        wall_s = 0.0
        if self._wall_clock is not None:
            wall_s = self._wall_clock() - self._wall_start_s
        rate = 1.0 / wall_s if wall_s > 0 else 0.0
        return {
            "events_fired": float(self.events_fired),
            "events_scheduled": float(self.events_scheduled),
            "rpcs_completed": float(self.rpcs_completed),
            "hedges": float(self.hedges),
            "sim_time_s": self.sim_time_s,
            "wall_s": wall_s,
            "events_per_s": self.events_fired * rate,
            "sim_time_rate": self.sim_time_s * rate,
        }


class TraceEventProbe(Probe):
    """Records the probe stream as Chrome trace events.

    Three track families, all in the synthetic "engine"/"rpc" processes
    (Dapper span trees get their own per-service processes from
    :func:`repro.obs.chrometrace.span_trace_events`):

    - one thread per :class:`~repro.sim.queues.ServerPool` name, with a
      complete ``X`` slice per executed job (emitted at finish time, so
      no begin/end matching is needed);
    - one thread per RPC method with an ``X`` slice per completed call;
    - a ``heap_size`` counter track sampled every ``heap_sample_every``
      fired events (sampling keeps trace files linear in interesting
      activity, not in total event count).

    Timestamps are simulated time in microseconds — the trace-event
    format's native unit.
    """

    __slots__ = ("events", "heap_sample_every", "_fired", "_pool_tids",
                 "_method_tids")

    def __init__(self, heap_sample_every: int = 256):
        if heap_sample_every < 1:
            raise ValueError(
                f"heap_sample_every must be >= 1, got {heap_sample_every!r}")
        self.events: List[dict] = []
        self.heap_sample_every = heap_sample_every
        self._fired = 0
        self._pool_tids: Dict[str, int] = {}
        self._method_tids: Dict[str, int] = {}

    def _tid(self, table: Dict[str, int], name: str, pid: int) -> int:
        tid = table.get(name)
        if tid is None:
            tid = len(table) + 1
            table[name] = tid
            self.events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "ts": 0, "args": {"name": name},
            })
        return tid

    def event_fired(self, time_s, heap_size):
        self._fired += 1
        if self._fired % self.heap_sample_every == 0:
            self.events.append({
                "ph": "C", "name": "heap_size", "pid": ENGINE_PID, "tid": 0,
                "ts": time_s * 1e6, "args": {"pending": heap_size},
            })

    def job_finished(self, pool, time_s, service_s):
        name = pool or "(unnamed pool)"
        tid = self._tid(self._pool_tids, name, ENGINE_PID)
        self.events.append({
            "ph": "X", "name": name, "cat": "pool", "pid": ENGINE_PID,
            "tid": tid, "ts": (time_s - service_s) * 1e6,
            "dur": service_s * 1e6, "args": {},
        })

    def rpc_completed(self, method, time_s, status, latency_s, attempts,
                      trace_id=0):
        tid = self._tid(self._method_tids, method, RPC_PID)
        self.events.append({
            "ph": "X", "name": method, "cat": "rpc", "pid": RPC_PID,
            "tid": tid, "ts": (time_s - latency_s) * 1e6,
            "dur": latency_s * 1e6,
            "args": {"status": status, "attempts": attempts},
        })

    def trace_events(self) -> List[dict]:
        """All recorded events plus process metadata, ready to export.

        Pool workers and RPC methods execute concurrently, so the raw
        per-thread slice streams overlap; export splits each thread into
        flame-graph lanes (extra tids) so every track satisfies the
        viewer's slice-nesting invariant.
        """
        from repro.obs.chrometrace import _assign_lanes

        meta = [
            {"ph": "M", "name": "process_name", "pid": ENGINE_PID, "tid": 0,
             "ts": 0, "args": {"name": "engine"}},
            {"ph": "M", "name": "process_name", "pid": RPC_PID, "tid": 0,
             "ts": 0, "args": {"name": "rpc"}},
        ]
        passthrough = [e for e in self.events if e["ph"] != "X"]
        groups: Dict[tuple, List[dict]] = {}
        for e in self.events:
            if e["ph"] == "X":
                groups.setdefault((e["pid"], e["tid"]), []).append(e)
        next_tid = {ENGINE_PID: len(self._pool_tids) + 1,
                    RPC_PID: len(self._method_tids) + 1}
        out: List[dict] = []
        for (pid, tid), members in sorted(groups.items()):
            members.sort(key=lambda e: (e["ts"], -e["dur"]))
            lanes = _assign_lanes([(e["ts"], e["ts"] + e["dur"])
                                   for e in members])
            lane_tids = {0: tid}
            for event, lane in zip(members, lanes):
                lane_tid = lane_tids.get(lane)
                if lane_tid is None:
                    lane_tid = next_tid[pid]
                    next_tid[pid] = lane_tid + 1
                    lane_tids[lane] = lane_tid
                    out.append({
                        "ph": "M", "name": "thread_name", "pid": pid,
                        "tid": lane_tid, "ts": 0,
                        "args": {"name": f"{event['name']} (lane {lane})"},
                    })
                out.append(dict(event, tid=lane_tid))
        # Metadata first, then timestamp order (stable), so the list is
        # directly valid — not only after chrome_trace() re-sorts it.
        merged = list(enumerate(meta + passthrough + out))
        merged.sort(key=lambda pair: (
            0 if pair[1]["ph"] == "M" else 1, pair[1].get("ts", 0), pair[0]))
        return [e for _i, e in merged]
