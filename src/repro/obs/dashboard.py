"""Text dashboards over Monarch series (the SRE console view).

Fleet operators watch Monarch through dashboards; this module renders the
equivalent in plain text: per-series sparklines with min/mean/max gutters,
a multi-series panel aligned on a shared time window, and a live-run
heartbeat panel fed by a :class:`~repro.obs.telemetry.HeartbeatProbe`.
Used by the ``fleet_dashboard`` example and handy in tests for eyeballing
a study's Monarch contents.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.monarch import Monarch

__all__ = ["sparkline", "render_series", "render_panel",
           "render_heartbeat"]

_TICKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 48) -> str:
    """A unicode sparkline, downsampled (bucket means) to ``width``."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    if arr.size > width:
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array([arr[a:b].mean() for a, b in zip(edges, edges[1:])
                        if b > a])
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-15:
        return _TICKS[4] * len(arr)
    scaled = (arr - lo) / (hi - lo) * (len(_TICKS) - 2) + 1
    return "".join(_TICKS[int(round(v))] for v in scaled)


def render_series(monarch: Monarch, name: str,
                  labels: Optional[Dict[str, str]] = None,
                  width: int = 48) -> str:
    """One series as ``name [spark] min/mean/max``."""
    times, values = monarch.read(name, labels)
    if len(values) == 0:
        return f"{name}: (no data)"
    return (f"{name}  {sparkline(values, width)}  "
            f"min {values.min():.3g}  mean {values.mean():.3g}  "
            f"max {values.max():.3g}  ({len(values)} pts)")


def render_panel(monarch: Monarch, name: str,
                 label_filter: Optional[Dict[str, str]] = None,
                 group_label: str = "machine", width: int = 40,
                 max_rows: int = 12) -> str:
    """All matching series of one metric, one sparkline per label value."""
    matching = monarch.read_matching(name, label_filter)
    if not matching:
        return f"{name}: (no series)"
    rows: List[Tuple[str, str]] = []
    for labelset, (_times, values) in sorted(matching.items()):
        labels = dict(labelset)
        key = labels.get(group_label, str(labelset))
        rows.append((key, f"{sparkline(values, width)}  "
                          f"mean {values.mean():.3g}"))
    shown = rows[:max_rows]
    name_w = max(len(k) for k, _ in shown)
    lines = [f"== {name}" + (f" {label_filter}" if label_filter else "")]
    lines += [f"  {k.ljust(name_w)}  {v}" for k, v in shown]
    if len(rows) > max_rows:
        lines.append(f"  ... and {len(rows) - max_rows} more series")
    return "\n".join(lines)


def render_heartbeat(snapshot: Dict[str, float], title: str = "run") -> str:
    """A heartbeat snapshot as a compact status panel.

    Takes the dict from :meth:`HeartbeatProbe.snapshot()
    <repro.obs.telemetry.HeartbeatProbe.snapshot>`. Rates are only shown
    when the probe had a wall clock (``wall_s > 0``).
    """
    lines = [f"== heartbeat: {title}"]
    lines.append(
        f"  sim time   {snapshot.get('sim_time_s', 0.0):,.3f} s    "
        f"events {int(snapshot.get('events_fired', 0)):,} fired / "
        f"{int(snapshot.get('events_scheduled', 0)):,} scheduled")
    lines.append(
        f"  rpcs       {int(snapshot.get('rpcs_completed', 0)):,} completed"
        f"    hedges {int(snapshot.get('hedges', 0)):,}")
    wall_s = snapshot.get("wall_s", 0.0)
    if wall_s > 0:
        lines.append(
            f"  wall       {wall_s:,.2f} s    "
            f"{snapshot.get('events_per_s', 0.0):,.0f} events/s    "
            f"sim/wall {snapshot.get('sim_time_rate', 0.0):,.1f}x")
    return "\n".join(lines)
