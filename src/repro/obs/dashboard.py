"""Text dashboards over Monarch series (the SRE console view).

Fleet operators watch Monarch through dashboards; this module renders the
equivalent in plain text: per-series sparklines with min/mean/max gutters,
a multi-series panel aligned on a shared time window, and a live-run
heartbeat panel fed by a :class:`~repro.obs.telemetry.HeartbeatProbe`.
Used by the ``fleet_dashboard`` example and handy in tests for eyeballing
a study's Monarch contents.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.monarch import Monarch

__all__ = ["sparkline", "render_series", "render_panel",
           "render_heartbeat", "render_incident_report"]

_TICKS = " ▁▂▃▄▅▆▇█"

#: Rendered in place of NaN points: a visible gap, not a value tick.
_GAP_TICK = "·"


def sparkline(values: Sequence[float], width: int = 48) -> str:
    """A unicode sparkline, downsampled (bucket means) to ``width``.

    NaN points render as a gap tick (``·``) instead of poisoning the
    min/max scaling — a series with measurement holes keeps its shape.
    Degenerate inputs degrade instead of raising: an empty series is an
    empty string, a single point a mid tick, a sub-1 width one column.
    """
    width = max(int(width), 1)
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    if arr.size > width:
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        buckets = [arr[a:b] for a, b in zip(edges, edges[1:]) if b > a]
        # A bucket of only-NaN stays NaN (still a gap after downsampling).
        arr = np.array([np.nan if np.isnan(b).all() else np.nanmean(b)
                        for b in buckets])
    finite = arr[~np.isnan(arr)]
    if finite.size == 0:
        return _GAP_TICK * len(arr)
    lo, hi = float(finite.min()), float(finite.max())
    if hi - lo < 1e-15:
        return "".join(_GAP_TICK if np.isnan(v) else _TICKS[4] for v in arr)
    out = []
    for v in arr:
        if np.isnan(v):
            out.append(_GAP_TICK)
        else:
            out.append(_TICKS[int(round((v - lo) / (hi - lo)
                                        * (len(_TICKS) - 2) + 1))])
    return "".join(out)


def render_series(monarch: Monarch, name: str,
                  labels: Optional[Dict[str, str]] = None,
                  width: int = 48) -> str:
    """One series as ``name [spark] min/mean/max``."""
    times, values = monarch.read(name, labels)
    if len(values) == 0:
        return f"{name}: (no data)"
    return (f"{name}  {sparkline(values, width)}  "
            f"min {values.min():.3g}  mean {values.mean():.3g}  "
            f"max {values.max():.3g}  ({len(values)} pts)")


def render_panel(monarch: Monarch, name: str,
                 label_filter: Optional[Dict[str, str]] = None,
                 group_label: str = "machine", width: int = 40,
                 max_rows: int = 12) -> str:
    """All matching series of one metric, one sparkline per label value."""
    matching = monarch.read_matching(name, label_filter)
    if not matching:
        return f"{name}: (no series)"
    rows: List[Tuple[str, str]] = []
    for labelset, (_times, values) in sorted(matching.items()):
        labels = dict(labelset)
        key = labels.get(group_label, str(labelset))
        if len(values) == 0:
            # A registered-but-unsampled series (a server that has not
            # taken traffic yet, a retention-trimmed window): render a
            # placeholder row, never a NaN mean.
            rows.append((key, "(no points)"))
            continue
        rows.append((key, f"{sparkline(values, width)}  "
                          f"mean {values.mean():.3g}"))
    shown = rows[:max_rows]
    name_w = max((len(k) for k, _ in shown), default=0)
    lines = [f"== {name}" + (f" {label_filter}" if label_filter else "")]
    lines += [f"  {k.ljust(name_w)}  {v}" for k, v in shown]
    if len(rows) > max_rows:
        lines.append(f"  ... and {len(rows) - max_rows} more series")
    return "\n".join(lines)


def render_heartbeat(snapshot: Dict[str, float], title: str = "run") -> str:
    """A heartbeat snapshot as a compact status panel.

    Takes the dict from :meth:`HeartbeatProbe.snapshot()
    <repro.obs.telemetry.HeartbeatProbe.snapshot>`. Rates are only shown
    when the probe had a wall clock (``wall_s > 0``).
    """
    lines = [f"== heartbeat: {title}"]
    lines.append(
        f"  sim time   {snapshot.get('sim_time_s', 0.0):,.3f} s    "
        f"events {int(snapshot.get('events_fired', 0)):,} fired / "
        f"{int(snapshot.get('events_scheduled', 0)):,} scheduled")
    lines.append(
        f"  rpcs       {int(snapshot.get('rpcs_completed', 0)):,} completed"
        f"    hedges {int(snapshot.get('hedges', 0)):,}")
    wall_s = snapshot.get("wall_s", 0.0)
    if wall_s > 0:
        lines.append(
            f"  wall       {wall_s:,.2f} s    "
            f"{snapshot.get('events_per_s', 0.0):,.0f} events/s    "
            f"sim/wall {snapshot.get('sim_time_rate', 0.0):,.1f}x")
    return "\n".join(lines)


def render_incident_report(events: Sequence, monarch: Optional[Monarch] = None,
                           traces: Optional[Dict[int, List]] = None,
                           width: int = 48, max_exemplars: int = 12,
                           title: str = "incident report") -> str:
    """The fleet-obs incident report: timeline, burn rates, exemplars.

    ``events`` are :class:`~repro.obs.alerting.AlertEvent` objects or
    their ``to_dict`` documents (so a report renders equally from a live
    :class:`~repro.obs.alerting.AlertManager` and from a manifest's
    ``alerts`` list). ``monarch``, when given, adds burn-rate sparklines
    from the ``alerts/burn_rate_*`` series; ``traces`` (Dapper's
    ``traces()`` mapping) expands exemplar trace ids into span counts
    and the slowest span of each tree. Output is a deterministic
    function of its inputs — same run, byte-identical report.
    """
    docs = [e.to_dict() if hasattr(e, "to_dict") else dict(e)
            for e in events]
    lines = [f"== {title}"]

    lines.append("-- alert timeline")
    if not docs:
        lines.append("  (no alert events)")
    for doc in sorted(docs, key=lambda d: (d["t"], d["slo"], d["severity"])):
        state = str(doc["state"]).upper()
        lines.append(
            f"  t={doc['t']:10.3f}s  {doc['slo']}  [{doc['severity']}]  "
            f"{state:8s}  burn L={doc['burn_long']:.2f} "
            f"S={doc['burn_short']:.2f}")

    if monarch is not None:
        lines.append("-- burn rates")
        pairs = sorted({(d["slo"], d["severity"]) for d in docs})
        if not pairs:
            lines.append("  (no burning rules)")
        for slo, severity in pairs:
            labels = {"slo": slo, "severity": severity}
            for metric, tag in (("alerts/burn_rate_long", "long "),
                                ("alerts/burn_rate_short", "short")):
                _times, values = monarch.read(metric, labels)
                if len(values) == 0:
                    continue
                lines.append(
                    f"  {slo} [{severity}] {tag}  "
                    f"{sparkline(values, width)}  peak {values.max():.2f}")

    lines.append("-- exemplar traces (worst first)")
    exemplars = []
    for doc in docs:
        if doc["state"] != "firing":
            continue
        for value, trace_id in doc.get("exemplars", []):
            exemplars.append((float(value), int(trace_id), doc["slo"]))
    exemplars.sort(key=lambda e: (-e[0], e[1], e[2]))
    if not exemplars:
        lines.append("  (no exemplars attached)")
    seen = set()
    for value, trace_id, slo in exemplars:
        if trace_id in seen:
            continue
        if len(seen) >= max_exemplars:
            remaining = len({t for _v, t, _s in exemplars} - seen)
            lines.append(f"  ... and {remaining} more exemplar traces")
            break
        seen.add(trace_id)
        row = f"  trace {trace_id:<10d} latency {value * 1e3:9.3f} ms  {slo}"
        if traces is not None:
            spans = traces.get(trace_id, [])
            if spans:
                worst = max(spans,
                            key=lambda s: (s.breakdown.total(), s.span_id))
                row += (f"  [{len(spans)} spans, slowest "
                        f"{worst.full_method} "
                        f"{worst.breakdown.total() * 1e3:.3f} ms]")
            else:
                row += "  [trace not sampled]"
        lines.append(row)
    return "\n".join(lines)
