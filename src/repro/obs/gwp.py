"""GWP: fleet-wide CPU-cycle profiling.

Google-Wide Profiling samples CPU execution across the fleet and attributes
cycles to functions; the paper uses it to compute the *RPC cycle tax* —
7.1 % of all fleet cycles, split into compression (3.1 %), networking
(1.7 %), serialization (1.2 %) and the RPC library itself (1.1 %)
(Fig. 20).

Our profiler receives per-RPC :class:`~repro.rpc.stack.CycleCosts`
attributions (from either simulation tier) plus non-RPC cycles (background
tenants, batch work) and answers the Fig. 8c / Fig. 20 / Fig. 21 queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.rpc.stack import CycleCosts

__all__ = ["GwpProfiler", "TAX_CATEGORIES"]

TAX_CATEGORIES = ("compression", "networking", "serialization", "rpc_library")


class GwpProfiler:
    """Accumulates cycle attributions across the fleet.

    ``sample_rate`` mimics GWP's sampling: each attribution is kept with
    that probability and re-weighted by its inverse, so totals stay
    unbiased while per-method sample lists stay small.
    """

    def __init__(self, sample_rate: float = 1.0,
                 rng: Optional[np.random.Generator] = None):
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in (0, 1], got {sample_rate!r}")
        self.sample_rate = sample_rate
        self._rng = rng or np.random.default_rng(0)
        self._weight = 1.0 / sample_rate
        # Fleet totals by category.
        self.totals: Dict[str, float] = {
            "application": 0.0,
            "non_rpc": 0.0,
            **{c: 0.0 for c in TAX_CATEGORIES},
        }
        # Per (service, method): total cycles and per-RPC samples.
        self.method_totals: Dict[Tuple[str, str], float] = {}
        self.method_samples: Dict[Tuple[str, str], List[float]] = {}
        # Per service: total cycles (Fig. 8c).
        self.service_totals: Dict[str, float] = {}
        self.rpcs_profiled = 0

    # ------------------------------------------------------------------
    def add_rpc(self, service: str, method: str, costs: CycleCosts) -> None:
        """Attribute one RPC's cycles (subject to sampling)."""
        if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
            return
        w = self._weight
        self.totals["application"] += w * costs.application
        self.totals["compression"] += w * costs.compression
        self.totals["networking"] += w * costs.networking
        self.totals["serialization"] += w * costs.serialization
        self.totals["rpc_library"] += w * costs.rpc_library
        key = (service, method)
        total = costs.total()
        self.method_totals[key] = self.method_totals.get(key, 0.0) + w * total
        self.method_samples.setdefault(key, []).append(total)
        self.service_totals[service] = self.service_totals.get(service, 0.0) + w * total
        self.rpcs_profiled += 1

    def add_rpc_batch(self, service: str, method: str,
                      cycles_by_category: Dict[str, np.ndarray],
                      weight: float = 1.0) -> None:
        """Vectorized attribution for Tier-A sampled RPC populations.

        ``weight`` rescales the batch's contribution to all totals: the
        Tier-A sampler draws equally many calls per method and passes the
        method's popularity here, so fleet totals reflect the call mix.
        """
        n = len(cycles_by_category["application"])
        if n == 0:
            return
        if self.sample_rate < 1.0:
            keep = self._rng.random(n) < self.sample_rate
        else:
            keep = np.ones(n, dtype=bool)
        w = self._weight * (weight / max(n, 1))
        kept: Dict[str, np.ndarray] = {}
        for cat, arr in cycles_by_category.items():
            arr = np.asarray(arr, dtype=float)[keep]
            kept[cat] = arr
            self.totals[cat] += w * float(arr.sum())
        totals = sum(kept.values())
        key = (service, method)
        self.method_totals[key] = self.method_totals.get(key, 0.0) + w * float(totals.sum())
        self.method_samples.setdefault(key, []).extend(totals.tolist())
        self.service_totals[service] = (
            self.service_totals.get(service, 0.0) + w * float(totals.sum())
        )
        self.rpcs_profiled += int(keep.sum())

    def add_non_rpc(self, cycles: float) -> None:
        """Cycles burned outside RPC serving (batch jobs, other tenants)."""
        if cycles < 0:
            raise ValueError(f"negative cycles {cycles!r}")
        self.totals["non_rpc"] += cycles

    # ------------------------------------------------------------------
    # Fig. 20 queries
    # ------------------------------------------------------------------
    def fleet_cycles(self) -> float:
        """Total cycles across every category (incl. non-RPC)."""
        return sum(self.totals.values())

    def tax_cycles(self) -> float:
        """Total cycles across the four tax categories."""
        return sum(self.totals[c] for c in TAX_CATEGORIES)

    def cycle_tax_fraction(self) -> float:
        """Fraction of *all* fleet cycles spent in the RPC tax (≈ 7.1 %)."""
        total = self.fleet_cycles()
        return self.tax_cycles() / total if total else 0.0

    def tax_fractions_of_fleet(self) -> Dict[str, float]:
        """Each tax category as a fraction of all fleet cycles (Fig. 20b)."""
        total = self.fleet_cycles()
        if not total:
            return {c: 0.0 for c in TAX_CATEGORIES}
        return {c: self.totals[c] / total for c in TAX_CATEGORIES}

    # ------------------------------------------------------------------
    # Fig. 8c / Fig. 21 queries
    # ------------------------------------------------------------------
    def service_cycle_shares(self) -> Dict[str, float]:
        """Each service's share of fleet cycles (Fig. 8c)."""
        total = self.fleet_cycles()
        if not total:
            return {}
        return {s: v / total for s, v in sorted(self.service_totals.items())}

    def per_method_cost_samples(self, min_samples: int = 1
                                ) -> Dict[Tuple[str, str], np.ndarray]:
        """Per-method arrays of per-RPC normalized cycle costs (Fig. 21)."""
        return {
            k: np.asarray(v)
            for k, v in self.method_samples.items()
            if len(v) >= min_samples
        }
