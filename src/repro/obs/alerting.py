"""SLO burn-rate alerting and adaptive trace sampling on the sim clock.

The paper's observability triad (Monarch, Dapper, GWP) is not just a set
of passive stores — production fleets *act* on it. This module supplies
that control loop for the repro, deterministically:

- :class:`SloSpec` declares a latency objective ("``target`` of requests
  complete within ``threshold_s``, measured over ``window_s``") and
  compiles into the Google-SRE multi-window multi-burn-rate rule pair: a
  *page* rule (burn factor 14.4 over the 1h/5m analogue of the window)
  and a *ticket* rule (factor 6 over the 6h/30m analogue). Requiring the
  long **and** short window to burn keeps alerts fast to fire yet fast
  to resolve.
- :class:`AlertManager` evaluates every rule on ``sim.every``, walks the
  pending → firing → resolved state machine, writes burn-rate and state
  series back into Monarch (so alerts are themselves observable), and
  attaches the long window's tail exemplar trace ids to each firing
  event — the metric → trace pivot.
- :class:`AdaptiveSamplingController` steers Dapper head sampling per
  root method toward a traces-per-interval budget and boosts any method
  touched by a firing alert, so incident evidence is dense exactly when
  it matters.

Burn rate is ``bad_fraction / (1 - target)``: the rate at which the
error budget is being consumed, 1.0 meaning "exactly on budget". All
evaluation uses Monarch distribution (sketch) series, so memory stays
bounded no matter how long the study runs. Wall time is never read
here; harness code may inject a ``wall_clock`` callable to measure
evaluation self-overhead (``eval_wall_s``) for the bench trajectory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.monarch import Monarch
from repro.obs.sketch import Exemplar
from repro.sim.engine import Simulator

__all__ = ["SloSpec", "BurnRateRule", "AlertEvent", "AlertManager",
           "AdaptiveSamplingController", "load_slo_specs",
           "DEFAULT_ALERT_EVAL_INTERVAL_S"]

# Alert evaluation cadence relative to the scrape interval: SRE practice
# evaluates rules about once per scrape. Studies override to taste.
DEFAULT_ALERT_EVAL_INTERVAL_S = 30 * 60.0

# The classic 30-day-window burn-rate pairs, expressed as fractions of
# the SLO window so they rescale with sim-time windows: a page at 14.4x
# burn over (1h, 5m) of a 30d window and a ticket at 6x over (6h, 30m).
_RULE_SHAPES = (
    ("page", 14.4, 1.0 / 720.0, 1.0 / 8640.0),
    ("ticket", 6.0, 1.0 / 120.0, 1.0 / 1440.0),
)

# Alert states as Monarch gauge values (alerts/state series).
_STATE_VALUES = {"inactive": 0.0, "pending": 1.0, "firing": 2.0}


@dataclass(frozen=True)
class BurnRateRule:
    """One compiled multi-window rule: fire when *both* windows burn."""

    severity: str
    factor: float
    long_window_s: float
    short_window_s: float
    for_s: float


@dataclass
class SloSpec:
    """A declarative latency SLO over one Monarch distribution metric.

    ``target`` is the good fraction (e.g. 0.99: 99% of requests within
    ``threshold_s``); ``window_s`` is the SLO window in simulated
    seconds; ``labels`` narrows the metric to one method/service the way
    Monarch label filters do. ``for_s`` is how long a breach must
    sustain before pending escalates to firing (default: one rule
    short-window, the SRE convention that the short window itself is
    the debounce).
    """

    name: str
    threshold_s: float
    window_s: float
    target: float = 0.99
    metric: str = "telemetry/rpc_latency_s"
    labels: Dict[str, str] = field(default_factory=dict)
    for_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target!r}")
        if self.threshold_s <= 0:
            raise ValueError(
                f"threshold_s must be > 0, got {self.threshold_s!r}")
        if self.window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {self.window_s!r}")

    def compile(self) -> List[BurnRateRule]:
        """The spec's multi-window burn-rate rules (page, then ticket).

        A rule with ``factor * (1 - target) > 1`` could never fire (the
        bad fraction cannot exceed 1), which silently disables paging —
        so an infeasible target is an error, not a no-op.
        """
        worst = max(shape[1] for shape in _RULE_SHAPES)
        if worst * (1.0 - self.target) > 1.0:
            feasible = 1.0 - 1.0 / worst
            raise ValueError(
                f"SLO {self.name!r}: target {self.target} is infeasible for "
                f"a {worst}x burn rule (needs target >= {feasible:.4f})")
        rules = []
        for severity, factor, long_frac, short_frac in _RULE_SHAPES:
            short_window_s = self.window_s * short_frac
            rules.append(BurnRateRule(
                severity=severity,
                factor=factor,
                long_window_s=self.window_s * long_frac,
                short_window_s=short_window_s,
                for_s=self.for_s if self.for_s is not None else short_window_s,
            ))
        return rules

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe representation (round-trips via from_dict)."""
        doc: Dict[str, object] = {
            "name": self.name,
            "threshold_s": self.threshold_s,
            "window_s": self.window_s,
            "target": self.target,
            "metric": self.metric,
            "labels": dict(self.labels),
        }
        if self.for_s is not None:
            doc["for_s"] = self.for_s
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "SloSpec":
        """Build a spec from a JSON document."""
        known = {"name", "threshold_s", "window_s", "target", "metric",
                 "labels", "for_s"}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(f"unknown SLO spec keys: {unknown}")
        for required in ("name", "threshold_s", "window_s"):
            if required not in doc:
                raise ValueError(f"SLO spec missing required key {required!r}")
        return cls(
            name=str(doc["name"]),
            threshold_s=float(doc["threshold_s"]),
            window_s=float(doc["window_s"]),
            target=float(doc.get("target", 0.99)),
            metric=str(doc.get("metric", "telemetry/rpc_latency_s")),
            labels={str(k): str(v)
                    for k, v in dict(doc.get("labels", {})).items()},
            for_s=None if doc.get("for_s") is None else float(doc["for_s"]),
        )


def load_slo_specs(path: str) -> List[SloSpec]:
    """Load SLO specs from a JSON file.

    Accepts either a bare list of spec objects or ``{"slos": [...]}``.
    """
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if isinstance(doc, dict):
        doc = doc.get("slos")
    if not isinstance(doc, list):
        raise ValueError(
            f"{path}: expected a list of SLO specs or {{'slos': [...]}}")
    return [SloSpec.from_dict(entry) for entry in doc]


@dataclass(frozen=True)
class AlertEvent:
    """One state transition of one (SLO, severity) alert."""

    t: float
    slo: str
    severity: str
    state: str  # "pending" | "firing" | "resolved"
    burn_long: float
    burn_short: float
    labels: Tuple[Tuple[str, str], ...] = ()
    exemplars: Tuple[Exemplar, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe representation for manifests and reports."""
        return {
            "t": self.t,
            "slo": self.slo,
            "severity": self.severity,
            "state": self.state,
            "burn_long": round(self.burn_long, 6),
            "burn_short": round(self.burn_short, 6),
            "labels": dict(self.labels),
            "exemplars": [[v, tid] for v, tid in self.exemplars],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "AlertEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(
            t=float(doc["t"]),
            slo=str(doc["slo"]),
            severity=str(doc["severity"]),
            state=str(doc["state"]),
            burn_long=float(doc["burn_long"]),
            burn_short=float(doc["burn_short"]),
            labels=tuple(sorted(
                (str(k), str(v))
                for k, v in dict(doc.get("labels", {})).items())),
            exemplars=tuple((float(v), int(tid))
                            for v, tid in doc.get("exemplars", [])),
        )


class _AlertState:
    """Mutable per-(spec, rule) state-machine bookkeeping."""

    __slots__ = ("state", "pending_since")

    def __init__(self) -> None:
        self.state = "inactive"
        self.pending_since = 0.0


class AlertManager:
    """Evaluates compiled SLO rules periodically on the sim clock.

    Every evaluation writes ``alerts/burn_rate_long``,
    ``alerts/burn_rate_short``, and ``alerts/state`` series into Monarch
    (labels ``slo``/``severity``) and appends state transitions to
    :attr:`events`. Construction order matters for determinism: create
    the manager *after* the scraper so that at coincident sim times the
    scrape lands before the evaluation reads it (the engine breaks event
    ties FIFO).
    """

    def __init__(self, sim: Simulator, monarch: Monarch,
                 specs: Sequence[SloSpec],
                 interval_s: float = DEFAULT_ALERT_EVAL_INTERVAL_S,
                 wall_clock: Optional[Callable[[], float]] = None):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s!r}")
        self.sim = sim
        self.monarch = monarch
        self.specs = list(specs)
        self.interval_s = interval_s
        self.events: List[AlertEvent] = []
        self.eval_wall_s = 0.0
        self.evaluations = 0
        self._wall_clock = wall_clock
        self._compiled: List[Tuple[SloSpec, BurnRateRule, _AlertState]] = [
            (spec, rule, _AlertState())
            for spec in self.specs
            for rule in spec.compile()
        ]
        self._task = sim.every(interval_s, self._evaluate,
                               start_after=interval_s)

    def stop(self) -> None:
        """Stop the periodic evaluation chain."""
        self._task.cancel()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def firing(self) -> List[Tuple[SloSpec, BurnRateRule]]:
        """The (spec, rule) pairs currently in the firing state."""
        return [(spec, rule) for spec, rule, st in self._compiled
                if st.state == "firing"]

    def firing_method_filters(self) -> List[Optional[str]]:
        """Method label values of firing alerts (``None`` = fleet-wide).

        The adaptive sampling controller boosts a method when any entry
        is ``None`` or equals that method.
        """
        out: List[Optional[str]] = []
        for spec, _rule, st in self._compiled:
            if st.state == "firing":
                out.append(spec.labels.get("method"))
        return out

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _burn(self, spec: SloSpec, t: float, window_s: float
              ) -> Tuple[float, Tuple[Exemplar, ...]]:
        point = self.monarch.window_sketch(
            spec.metric, spec.labels, t_start=t - window_s, t_end=t)
        if point is None or point.sketch.count == 0:
            return 0.0, ()
        bad = point.sketch.count - point.sketch.count_below(spec.threshold_s)
        bad_fraction = bad / point.sketch.count
        return bad_fraction / (1.0 - spec.target), point.exemplars

    def _evaluate(self) -> None:
        start_s = self._wall_clock() if self._wall_clock is not None else 0.0
        t = self.sim.now
        self.evaluations += 1
        for spec, rule, st in self._compiled:
            # Rule windows narrower than the evaluation cadence are
            # clamped to it: a window that cannot contain a scrape point
            # could never burn, which would silently disable the rule.
            burn_long, exemplars = self._burn(
                spec, t, max(rule.long_window_s, self.interval_s))
            burn_short, _ = self._burn(
                spec, t, max(rule.short_window_s, self.interval_s))
            breach = burn_long >= rule.factor and burn_short >= rule.factor
            if breach:
                if st.state == "inactive":
                    st.state = "pending"
                    st.pending_since = t
                    self._emit(t, spec, rule, "pending",
                               burn_long, burn_short)
                elif (st.state == "pending"
                      and t - st.pending_since >= rule.for_s):
                    st.state = "firing"
                    self._emit(t, spec, rule, "firing",
                               burn_long, burn_short, exemplars)
            else:
                if st.state == "firing":
                    self._emit(t, spec, rule, "resolved",
                               burn_long, burn_short)
                st.state = "inactive"
            labels = {"slo": spec.name, "severity": rule.severity}
            self.monarch.write("alerts/burn_rate_long", labels, t, burn_long)
            self.monarch.write("alerts/burn_rate_short", labels, t,
                               burn_short)
            self.monarch.write("alerts/state", labels, t,
                               _STATE_VALUES[st.state])
        if self._wall_clock is not None:
            self.eval_wall_s += self._wall_clock() - start_s

    def _emit(self, t: float, spec: SloSpec, rule: BurnRateRule, state: str,
              burn_long: float, burn_short: float,
              exemplars: Tuple[Exemplar, ...] = ()) -> None:
        self.events.append(AlertEvent(
            t=t,
            slo=spec.name,
            severity=rule.severity,
            state=state,
            burn_long=burn_long,
            burn_short=burn_short,
            labels=tuple(sorted(spec.labels.items())),
            exemplars=exemplars,
        ))


class AdaptiveSamplingController:
    """Steers per-method Dapper head sampling toward a trace budget.

    Each interval it drains the collector's root-offer counts and sets
    every offered method's rate to ``trace_budget / offered`` (clipped
    to ``[min_rate, 1.0]``) — so hot methods are thinned and cold
    methods stay fully traced. While an alert touching a method is
    firing, that method's rate is raised to ``boost_rate`` so the
    incident window is densely evidenced.
    """

    def __init__(self, sim: Simulator, dapper,
                 interval_s: float,
                 trace_budget: float,
                 alerts: Optional[AlertManager] = None,
                 min_rate: float = 0.01,
                 boost_rate: float = 1.0):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s!r}")
        if trace_budget <= 0:
            raise ValueError(
                f"trace_budget must be > 0, got {trace_budget!r}")
        if not 0.0 <= min_rate <= 1.0 or not 0.0 <= boost_rate <= 1.0:
            raise ValueError("min_rate and boost_rate must be in [0, 1]")
        self.sim = sim
        self.dapper = dapper
        self.interval_s = interval_s
        self.trace_budget = trace_budget
        self.alerts = alerts
        self.min_rate = min_rate
        self.boost_rate = boost_rate
        #: (t, method, rate) decisions, for tests and reports.
        self.history: List[Tuple[float, str, float]] = []
        self._task = sim.every(interval_s, self._adjust,
                               start_after=interval_s)

    def stop(self) -> None:
        """Stop the periodic adjustment chain."""
        self._task.cancel()

    def _boosted(self, method: str) -> bool:
        if self.alerts is None:
            return False
        return any(f is None or f == method
                   for f in self.alerts.firing_method_filters())

    def _adjust(self) -> None:
        t = self.sim.now
        offers = self.dapper.drain_root_offers()
        for method in sorted(offers):
            offered = offers[method]
            rate = min(1.0, self.trace_budget / offered)
            rate = max(rate, self.min_rate)
            if self._boosted(method):
                rate = max(rate, self.boost_rate)
            self.dapper.set_method_rate(method, rate)
            self.history.append((t, method, rate))
