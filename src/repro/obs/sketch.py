"""Mergeable percentile sketches for Monarch distribution series.

Monarch cannot keep every latency sample of every method for 700 days;
what it actually stores per series point is a *sketch* — a fixed set of
log-spaced histogram buckets whose counts are mergeable across tasks and
across time windows. This module provides that substrate
(DDSketch-style; see "Computing Quantiles over Data Streams with
Relative-Error Guarantees", Masson et al., VLDB '19, for the scheme):

- :class:`LatencySketch` — bucket ``i`` covers
  ``[min_value * gamma^i, min_value * gamma^(i+1))`` with
  ``gamma = (1 + alpha) / (1 - alpha)``, so any quantile read from the
  bucket's geometric midpoint is within relative error ``alpha`` of the
  true sample quantile. Counts live in one numpy ``int64`` array, so
  merge is vector addition, and two sketches *subtract* cleanly — the
  Monarch scraper exports per-interval deltas by subtracting consecutive
  cumulative snapshots.
- :class:`ExemplarReservoir` — up to K ``(value, trace_id)`` pairs
  reservoir-sampled from the *tail* of the distribution (values above
  the sketch's running p95 estimate), so a sketch point can name the
  Dapper traces that produced its worst latencies.

Everything here is deterministic: reservoir randomness comes from an
injected ``numpy`` generator, never global state.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["LatencySketch", "Exemplar", "ExemplarReservoir",
           "DEFAULT_RELATIVE_ACCURACY"]

# 1% relative error keeps sketch-p99 within the 2% acceptance band of
# exact np.percentile with plenty of margin, at ~2k buckets.
DEFAULT_RELATIVE_ACCURACY = 0.01

#: An exemplar is ``(value, trace_id)``: the observed value and the
#: Dapper trace that produced it.
Exemplar = Tuple[float, int]


class LatencySketch:
    """A fixed-bucket log-boundary quantile sketch.

    ``min_value``/``max_value`` bound the representable range (values
    outside are clamped into the edge buckets, which keeps the bucket
    count fixed and the memory bounded regardless of input). Defaults
    cover 1 ns .. ~11.5 days, comfortably containing every latency this
    simulator can produce.
    """

    __slots__ = ("relative_accuracy", "min_value", "max_value", "_gamma",
                 "_inv_log_gamma", "n_buckets", "_counts", "_pending",
                 "count", "sum", "min", "max")

    #: Scalar observations buffer up to this many values before the
    #: bucket math runs vectorized over the batch.
    PENDING_FLUSH = 512

    def __init__(self, relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
                 min_value: float = 1e-9, max_value: float = 1e6):
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy!r}")
        if not 0.0 < min_value < max_value:
            raise ValueError(
                f"need 0 < min_value < max_value, got {min_value!r}, {max_value!r}")
        self.relative_accuracy = relative_accuracy
        self.min_value = min_value
        self.max_value = max_value
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._inv_log_gamma = 1.0 / math.log(self._gamma)
        self.n_buckets = int(math.ceil(
            math.log(max_value / min_value) * self._inv_log_gamma)) + 1
        self._counts = np.zeros(self.n_buckets, dtype=np.int64)
        self._pending: List[float] = []
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _bucket_of(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        idx = int(math.log(value / self.min_value) * self._inv_log_gamma)
        return idx if idx < self.n_buckets else self.n_buckets - 1

    def _flush_pending(self) -> None:
        """Drain buffered scalar observations into the bucket array.

        The vectorized bucket math lands every value in the same bucket
        the scalar ``_bucket_of`` would (the identity the batch-path
        tests pin), so buffering only defers *when* counts appear in the
        array, never *where* — and ``count``/``sum``/``min``/``max`` are
        maintained eagerly, so only bucket reads need a flush.
        """
        if not self._pending:
            return
        arr = np.asarray(self._pending, dtype=float)
        self._pending = []
        clipped = np.maximum(arr / self.min_value, 1.0)
        idx = (np.log(clipped) * self._inv_log_gamma).astype(np.int64)
        np.clip(idx, 0, self.n_buckets - 1, out=idx)
        np.add.at(self._counts, idx, 1)

    @property
    def counts(self) -> np.ndarray:
        """The bucket array (flushes the scalar buffer first)."""
        self._flush_pending()
        return self._counts

    @counts.setter
    def counts(self, values: np.ndarray) -> None:
        self._pending = []
        self._counts = values

    def observe(self, value: float) -> None:
        """Record one observation (scalar hot path; buffered)."""
        value = float(value)
        self._pending.append(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._pending) >= self.PENDING_FLUSH:
            self._flush_pending()

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch of observations (vectorized)."""
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return
        clipped = np.maximum(arr / self.min_value, 1.0)
        idx = (np.log(clipped) * self._inv_log_gamma).astype(np.int64)
        np.clip(idx, 0, self.n_buckets - 1, out=idx)
        np.add.at(self._counts, idx, 1)
        self.count += int(arr.size)
        self.sum += float(arr.sum())
        self.min = min(self.min, float(arr.min()))
        self.max = max(self.max, float(arr.max()))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Exact mean of all observations (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile (``q`` in [0, 1]) within relative accuracy.

        Returns 0.0 on an empty sketch. Results are clamped into the
        exact observed ``[min, max]``, so q=0 / q=1 are exact.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        rank = q * (self.count - 1)
        cum = np.cumsum(self.counts)
        idx = int(np.searchsorted(cum, rank + 1.0))
        # Geometric bucket midpoint: relative error <= alpha by design.
        rep = self.min_value * self._gamma ** (idx + 0.5)
        return float(min(max(rep, self.min), self.max))

    def percentile(self, p: float) -> float:
        """``p`` in [0, 100]; convenience mirror of numpy's percentile."""
        return self.quantile(p / 100.0)

    def percentiles(self, qs: Sequence[float]) -> List[float]:
        """Batch quantile inversion (``qs`` in [0, 1]), one cumsum.

        Matches :meth:`quantile` value-for-value; the batch form exists
        because warehouse scans ask for p50/p95/p99 of thousands of
        method sketches, and the cumsum dominates the per-call cost.
        """
        if any(not 0.0 <= q <= 1.0 for q in qs):
            raise ValueError(f"quantiles must be in [0, 1], got {list(qs)!r}")
        if self.count == 0:
            return [0.0 for _ in qs]
        ranks = np.asarray(qs, dtype=float) * (self.count - 1)
        cum = np.cumsum(self.counts)
        idx = np.searchsorted(cum, ranks + 1.0)
        reps = self.min_value * self._gamma ** (idx + 0.5)
        return [float(min(max(r, self.min), self.max)) for r in reps]

    def fit_lognormal(self) -> Optional[Tuple[float, float]]:
        """Fit ``ln X ~ N(mu, sigma)`` from the bucket histogram.

        Weighted first/second moments of the bucket log-midpoints —
        every bucket contributes, unlike a three-point percentile fit.
        Returns ``(mu, sigma)``, or ``None`` with fewer than two
        observations (no spread estimate). Plain floats only, so the
        obs layer stays ignorant of :mod:`repro.theory` (which wraps
        this as ``LognormalFit.from_sketch``).
        """
        if self.count < 2:
            return None
        counts = self.counts
        nz = np.flatnonzero(counts)
        log_gamma = math.log(self._gamma)
        # Bucket i's geometric midpoint is min_value * gamma^(i + 0.5).
        log_mids = math.log(self.min_value) + (nz + 0.5) * log_gamma
        w = counts[nz].astype(float)
        total = w.sum()
        mu = float(np.dot(w, log_mids) / total)
        var = float(np.dot(w, (log_mids - mu) ** 2) / total)
        return mu, math.sqrt(max(var, 0.0))

    def count_below(self, threshold: float) -> int:
        """How many observations were <= ``threshold`` (within accuracy).

        The sketch boundary closest to ``threshold`` decides: whole
        buckets at or below it count, which is exact up to the bucket's
        ``alpha`` relative width — the resolution SLO burn rates need.
        """
        if self.count == 0:
            return 0
        if threshold < self.min:
            return 0
        if threshold >= self.max:
            return self.count
        idx = self._bucket_of(float(threshold))
        return int(self.counts[: idx + 1].sum())

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "LatencySketch") -> None:
        if (self.n_buckets != other.n_buckets
                or self.relative_accuracy != other.relative_accuracy
                or self.min_value != other.min_value):
            raise ValueError("sketches have different bucket layouts")

    def merge(self, other: "LatencySketch") -> "LatencySketch":
        """Fold ``other`` into this sketch in place; returns ``self``."""
        self._check_compatible(other)
        self.counts += other.counts
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def delta_since(self, earlier: "LatencySketch") -> "LatencySketch":
        """The observations recorded after ``earlier`` was snapshotted.

        ``earlier`` must be a previous snapshot of this same stream
        (every bucket count must have grown monotonically); min/max of
        the delta are approximated by the current extremes, which is
        what interval percentile queries need.
        """
        self._check_compatible(earlier)
        diff = self.counts - earlier.counts
        if (diff < 0).any():
            raise ValueError("delta_since: earlier is not a prefix snapshot")
        out = self.copy()
        out.counts = diff
        out.count = self.count - earlier.count
        out.sum = self.sum - earlier.sum
        return out

    def copy(self) -> "LatencySketch":
        """An independent deep copy."""
        out = LatencySketch.__new__(LatencySketch)
        out.relative_accuracy = self.relative_accuracy
        out.min_value = self.min_value
        out.max_value = self.max_value
        out._gamma = self._gamma
        out._inv_log_gamma = self._inv_log_gamma
        out.n_buckets = self.n_buckets
        out.counts = self.counts.copy()
        out.count = self.count
        out.sum = self.sum
        out.min = self.min
        out.max = self.max
        return out

    # ------------------------------------------------------------------
    # Serialization (sparse: only non-empty buckets travel)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe sparse representation."""
        nz = np.flatnonzero(self.counts)
        return {
            "relative_accuracy": self.relative_accuracy,
            "min_value": self.min_value,
            "max_value": self.max_value,
            "buckets": [[int(i), int(self.counts[i])] for i in nz],
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "LatencySketch":
        """Rebuild a sketch from :meth:`to_dict` output."""
        out = cls(relative_accuracy=float(doc["relative_accuracy"]),
                  min_value=float(doc["min_value"]),
                  max_value=float(doc["max_value"]))
        for idx, n in doc["buckets"]:
            out.counts[int(idx)] = int(n)
        out.count = int(doc["count"])
        out.sum = float(doc["sum"])
        out.min = math.inf if doc["min"] is None else float(doc["min"])
        out.max = -math.inf if doc["max"] is None else float(doc["max"])
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"LatencySketch(count={self.count}, "
                f"p50={self.quantile(0.5):.3g}, p99={self.quantile(0.99):.3g})")


class ExemplarReservoir:
    """Up to K ``(value, trace_id)`` pairs sampled from the tail.

    Only observations at or above the caller-maintained tail cut (the
    sketch's running p95 estimate) are offered; within those, Vitter's
    Algorithm R keeps a uniform sample of size ``k``. Randomness comes
    from the injected generator, so runs are reproducible.
    """

    __slots__ = ("k", "_rng", "_offered", "items")

    def __init__(self, k: int = 4, rng: Optional[np.random.Generator] = None):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k!r}")
        self.k = k
        self._rng = rng or np.random.default_rng(0)
        self._offered = 0
        self.items: List[Exemplar] = []

    def offer(self, value: float, trace_id: int) -> None:
        """Consider one tail observation for the reservoir."""
        self._offered += 1
        if len(self.items) < self.k:
            self.items.append((float(value), int(trace_id)))
            return
        j = int(self._rng.integers(self._offered))
        if j < self.k:
            self.items[j] = (float(value), int(trace_id))

    def drain(self) -> Tuple[Exemplar, ...]:
        """The current exemplars (worst first); resets the reservoir."""
        out = tuple(sorted(self.items, key=lambda e: (-e[0], e[1])))
        self.items = []
        self._offered = 0
        return out
