"""Monarch: the time-series database and its scraper.

The real Monarch samples metrics exported by every task on a fixed cadence
(the paper uses series with one sample every 30 minutes retained for 700
days). Our equivalent keeps the same shape:

- series are identified by ``(metric name, sorted label set)``;
- :class:`MonarchScraper` walks registered :class:`MetricRegistry` objects
  (and ad-hoc collector callbacks) every ``interval_s`` of simulated time;
- retention trims old points per metric;
- queries return aligned ``(times, values)`` arrays and support windowed
  aggregation across label dimensions — the operation behind Fig. 1's
  fleet-wide RPS/CPU ratio and Fig. 18's 24-hour overlays.

Beyond scalar series, Monarch stores *distribution* series: each point is
a per-interval :class:`~repro.obs.sketch.LatencySketch` (plus up to K
tail exemplar trace ids) the scraper derives by delta-ing a registry
distribution's cumulative sketch. That gives :meth:`Monarch.aggregate`
``max``/``min``/``p50``/``p95``/``p99`` reducers with bounded memory —
the reads behind the SLO burn-rate engine in :mod:`repro.obs.alerting`
and the dashboard's tail panels.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.metrics import LabelSet, MetricRegistry, _labelset
from repro.obs.sketch import Exemplar, LatencySketch
from repro.sim.engine import Simulator

__all__ = ["Monarch", "MonarchScraper", "SeriesKey", "SketchPoint",
           "DEFAULT_SCRAPE_INTERVAL_S"]

# The paper's long-retention sampling cadence: one sample per 30 minutes.
DEFAULT_SCRAPE_INTERVAL_S = 30 * 60.0

SeriesKey = Tuple[str, LabelSet]

#: Reducers usable with :meth:`Monarch.aggregate`. Scalar reducers fold
#: last-in-window gauge values across series; percentile reducers need
#: distribution (sketch) series.
_SCALAR_REDUCERS = ("sum", "mean", "max", "min")
_PERCENTILE_REDUCERS = {"p50": 0.50, "p95": 0.95, "p99": 0.99}


@dataclass
class _Series:
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, t: float, v: float) -> None:
        """Append a point (monotone time; equal timestamp rewrites)."""
        if self.times and t < self.times[-1]:
            raise ValueError(
                f"out-of-order write: t={t} after t={self.times[-1]}"
            )
        if self.times and t == self.times[-1]:
            self.values[-1] = v
            return
        self.times.append(t)
        self.values.append(v)

    def trim_before(self, cutoff: float) -> None:
        """Drop points before the cutoff."""
        idx = bisect.bisect_left(self.times, cutoff)
        if idx:
            del self.times[:idx]
            del self.values[:idx]


@dataclass(frozen=True)
class SketchPoint:
    """One distribution-series point: an interval's sketch + exemplars."""

    t: float
    sketch: LatencySketch
    exemplars: Tuple[Exemplar, ...] = ()


@dataclass
class _SketchSeries:
    points: List[SketchPoint] = field(default_factory=list)

    def append(self, point: SketchPoint) -> None:
        """Append a point (monotone time; equal timestamp rewrites)."""
        if self.points and point.t < self.points[-1].t:
            raise ValueError(
                f"out-of-order write: t={point.t} after t={self.points[-1].t}"
            )
        if self.points and point.t == self.points[-1].t:
            self.points[-1] = point
            return
        self.points.append(point)

    def trim_before(self, cutoff: float) -> None:
        """Drop points before the cutoff."""
        idx = 0
        while idx < len(self.points) and self.points[idx].t < cutoff:
            idx += 1
        if idx:
            del self.points[:idx]


class Monarch:
    """The time-series store."""

    def __init__(self, retention_s: Optional[float] = None):
        self.retention_s = retention_s
        self._series: Dict[SeriesKey, _Series] = {}
        self._sketch_series: Dict[SeriesKey, _SketchSeries] = {}

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def write(self, name: str, labels: Optional[Dict[str, str]],
              t: float, value: float) -> None:
        """Append one point to a series."""
        key: SeriesKey = (name, _labelset(labels))
        series = self._series.get(key)
        if series is None:
            series = _Series()
            self._series[key] = series
        series.append(t, float(value))
        if self.retention_s is not None:
            series.trim_before(t - self.retention_s)

    def write_sketch(self, name: str, labels: Optional[Dict[str, str]],
                     t: float, sketch: LatencySketch,
                     exemplars: Sequence[Exemplar] = ()) -> None:
        """Append one distribution point (an interval's sketch).

        The store takes ownership of ``sketch`` — pass a copy if the
        caller keeps accumulating into it.
        """
        key: SeriesKey = (name, _labelset(labels))
        series = self._sketch_series.get(key)
        if series is None:
            series = _SketchSeries()
            self._sketch_series[key] = series
        series.append(SketchPoint(t=t, sketch=sketch,
                                  exemplars=tuple(exemplars)))
        if self.retention_s is not None:
            series.trim_before(t - self.retention_s)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def series_keys(self, name: Optional[str] = None) -> List[SeriesKey]:
        """All scalar series keys, optionally for one metric."""
        keys = list(self._series)
        if name is not None:
            keys = [k for k in keys if k[0] == name]
        return sorted(keys)

    def sketch_keys(self, name: Optional[str] = None) -> List[SeriesKey]:
        """All distribution series keys, optionally for one metric."""
        keys = list(self._sketch_series)
        if name is not None:
            keys = [k for k in keys if k[0] == name]
        return sorted(keys)

    def read(self, name: str, labels: Optional[Dict[str, str]] = None,
             t_start: Optional[float] = None,
             t_end: Optional[float] = None) -> Tuple[np.ndarray, np.ndarray]:
        """One series as ``(times, values)`` arrays (empty if absent)."""
        series = self._series.get((name, _labelset(labels)))
        if series is None:
            return np.array([]), np.array([])
        times = np.asarray(series.times)
        values = np.asarray(series.values)
        mask = np.ones(len(times), dtype=bool)
        if t_start is not None:
            mask &= times >= t_start
        if t_end is not None:
            mask &= times <= t_end
        return times[mask], values[mask]

    def read_matching(self, name: str,
                      label_filter: Optional[Dict[str, str]] = None,
                      t_start: Optional[float] = None,
                      t_end: Optional[float] = None,
                      ) -> Dict[LabelSet, Tuple[np.ndarray, np.ndarray]]:
        """All series of ``name`` whose labels include ``label_filter``.

        ``t_start``/``t_end`` bound the returned points (inclusive), so
        dashboard and alert queries scan only the window they need
        rather than full retention. Series with no points in the window
        are returned with empty arrays.
        """
        want = set((label_filter or {}).items())
        out = {}
        for (metric, labelset), series in self._series.items():
            if metric != name:
                continue
            if want and not want <= {(k, v) for k, v in labelset}:
                continue
            times = np.asarray(series.times)
            values = np.asarray(series.values)
            if t_start is not None or t_end is not None:
                lo = bisect.bisect_left(series.times, t_start) \
                    if t_start is not None else 0
                hi = bisect.bisect_right(series.times, t_end) \
                    if t_end is not None else len(series.times)
                times, values = times[lo:hi], values[lo:hi]
            out[labelset] = (times, values)
        return out

    def read_sketches(self, name: str,
                      label_filter: Optional[Dict[str, str]] = None,
                      t_start: Optional[float] = None,
                      t_end: Optional[float] = None,
                      ) -> Dict[LabelSet, List[SketchPoint]]:
        """All distribution series of ``name`` matching ``label_filter``.

        Time bounds are inclusive, mirroring :meth:`read_matching`.
        """
        want = set((label_filter or {}).items())
        out: Dict[LabelSet, List[SketchPoint]] = {}
        for (metric, labelset), series in self._sketch_series.items():
            if metric != name:
                continue
            if want and not want <= {(k, v) for k, v in labelset}:
                continue
            out[labelset] = [
                p for p in series.points
                if (t_start is None or p.t >= t_start)
                and (t_end is None or p.t <= t_end)
            ]
        return out

    def window_sketch(self, name: str,
                      label_filter: Optional[Dict[str, str]] = None,
                      t_start: Optional[float] = None,
                      t_end: Optional[float] = None,
                      ) -> Optional[SketchPoint]:
        """Merge every matching distribution point in a window into one.

        Returns a :class:`SketchPoint` whose sketch is the union of all
        observations in the window and whose exemplars pool every
        point's exemplars (worst value first), or ``None`` when nothing
        matched — the primitive behind burn-rate and tail-panel queries.
        """
        merged: Optional[LatencySketch] = None
        exemplars: List[Exemplar] = []
        latest = t_start if t_start is not None else 0.0
        for points in self.read_sketches(name, label_filter,
                                         t_start, t_end).values():
            for p in points:
                if merged is None:
                    merged = p.sketch.copy()
                else:
                    merged.merge(p.sketch)
                exemplars.extend(p.exemplars)
                if p.t > latest:
                    latest = p.t
        if merged is None:
            return None
        exemplars.sort(key=lambda e: (-e[0], e[1]))
        return SketchPoint(t=latest, sketch=merged,
                           exemplars=tuple(exemplars))

    def rate(self, name: str, labels: Optional[Dict[str, str]] = None
             ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-second rate of a cumulative counter series.

        Returns midpoints of consecutive sample pairs and the finite-
        difference rate over each interval — how Monarch-style dashboards
        derive RPS from cumulative ``rpcs_served`` counters. Counter
        resets (value decreasing) yield a zero-rate interval rather than a
        negative spike.
        """
        times, values = self.read(name, labels)
        if len(times) < 2:
            return np.array([]), np.array([])
        dt = np.diff(times)
        dv = np.diff(values)
        rates = np.where((dv >= 0) & (dt > 0), dv / np.where(dt > 0, dt, 1),
                         0.0)
        return times[:-1] + dt / 2, rates

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def aggregate(self, name: str, window_s: float,
                  label_filter: Optional[Dict[str, str]] = None,
                  reducer: str = "sum",
                  t_start: Optional[float] = None,
                  t_end: Optional[float] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Align matching series into windows and reduce across series.

        Points are bucketed into ``window_s``-wide windows by timestamp.
        Scalar reducers ('sum', 'mean', 'max', 'min') operate on scalar
        series: within a (series, window) pair the last point wins
        (gauge semantics), then the reducer folds across series.
        Percentile reducers ('p50', 'p95', 'p99') operate on
        distribution series: all sketches in a window merge into one and
        the quantile is read off it — and 'max'/'min' likewise use the
        sketches when the metric has distribution series, where they are
        exact. ``t_start``/``t_end`` bound the scan (inclusive).
        Returns (window_start_times, reduced_values).
        """
        if reducer not in _SCALAR_REDUCERS and reducer not in _PERCENTILE_REDUCERS:
            known = ", ".join(list(_SCALAR_REDUCERS) + sorted(_PERCENTILE_REDUCERS))
            raise ValueError(f"reducer must be one of {known}, got {reducer!r}")
        has_sketches = any(k[0] == name for k in self._sketch_series)
        if reducer in _PERCENTILE_REDUCERS or (
                reducer in ("max", "min") and has_sketches):
            return self._aggregate_sketches(name, window_s, label_filter,
                                            reducer, t_start, t_end)
        matching = self.read_matching(name, label_filter, t_start, t_end)
        buckets: Dict[int, List[float]] = {}
        for times, values in matching.values():
            last_in_window: Dict[int, float] = {}
            for t, v in zip(times, values):
                last_in_window[int(t // window_s)] = v
            for w, v in last_in_window.items():
                buckets.setdefault(w, []).append(v)
        if not buckets:
            return np.array([]), np.array([])
        windows = np.array(sorted(buckets))
        fold = {"sum": sum, "mean": np.mean, "max": max, "min": min}[reducer]
        vals = np.array([float(fold(buckets[w])) for w in windows])
        return windows * window_s, vals

    def _aggregate_sketches(self, name: str, window_s: float,
                            label_filter: Optional[Dict[str, str]],
                            reducer: str,
                            t_start: Optional[float],
                            t_end: Optional[float]
                            ) -> Tuple[np.ndarray, np.ndarray]:
        """Windowed reduce over distribution series (merge, then read)."""
        matching = self.read_sketches(name, label_filter, t_start, t_end)
        buckets: Dict[int, LatencySketch] = {}
        for points in matching.values():
            for p in points:
                w = int(p.t // window_s)
                if w in buckets:
                    buckets[w].merge(p.sketch)
                else:
                    buckets[w] = p.sketch.copy()
        buckets = {w: s for w, s in buckets.items() if s.count}
        if not buckets:
            return np.array([]), np.array([])
        windows = np.array(sorted(buckets))
        if reducer == "max":
            vals = np.array([buckets[w].max for w in windows])
        elif reducer == "min":
            vals = np.array([buckets[w].min for w in windows])
        else:
            q = _PERCENTILE_REDUCERS[reducer]
            vals = np.array([buckets[w].quantile(q) for w in windows])
        return windows * window_s, vals


class MonarchScraper:
    """Periodically samples registries and collector callbacks into Monarch.

    ``collectors`` are callbacks ``(t) -> iterable of (name, labels, value)``
    used for state that is cheaper to compute on demand than to export
    continuously (machine exogenous variables, pool utilizations).

    Registry *distributions* are exported as distribution points: each
    scrape writes the delta between the distribution's cumulative sketch
    and its previous snapshot (so every point covers exactly one scrape
    interval) plus the tail exemplars gathered in that interval.

    ``wall_clock`` is an optional injected real-time callable (harness
    code only); with it, :attr:`scrape_wall_s` accumulates the scraper's
    own self-overhead for the bench trajectory.
    """

    def __init__(self, sim: Simulator, monarch: Monarch,
                 interval_s: float = DEFAULT_SCRAPE_INTERVAL_S,
                 wall_clock: Optional[Callable[[], float]] = None):
        self.sim = sim
        self.monarch = monarch
        self.interval_s = interval_s
        self._registries: List[Tuple[MetricRegistry, Dict[str, str]]] = []
        self._collectors: List[Callable[[float], Iterable[Tuple[str, Dict[str, str], float]]]] = []
        self._prev_sketches: Dict[Tuple[int, str, LabelSet], LatencySketch] = {}
        self._wall_clock = wall_clock
        self.scrape_wall_s = 0.0
        self._task = sim.every(interval_s, self._scrape, start_after=interval_s)

    def register(self, registry: MetricRegistry,
                 base_labels: Optional[Dict[str, str]] = None) -> None:
        """Register with this component for later collection/dispatch."""
        self._registries.append((registry, dict(base_labels or {})))

    def add_collector(
        self,
        fn: Callable[[float], Iterable[Tuple[str, Dict[str, str], float]]],
    ) -> None:
        """Register an ad-hoc collector callback."""
        self._collectors.append(fn)

    def stop(self) -> None:
        """Stop the periodic scraping chain."""
        self._task.cancel()

    def _scrape(self) -> None:
        start_s = self._wall_clock() if self._wall_clock is not None else 0.0
        t = self.sim.now
        for registry, base_labels in self._registries:
            for (name, labelset), value in registry.snapshot().items():
                labels = dict(base_labels)
                labels.update(dict(labelset))
                self.monarch.write(name, labels, t, value)
            for (name, labelset), dist in registry.distributions.items():
                cur = dist.sketch.copy()
                prev = self._prev_sketches.get((id(registry), name, labelset))
                delta = cur if prev is None else cur.delta_since(prev)
                self._prev_sketches[(id(registry), name, labelset)] = cur
                labels = dict(base_labels)
                labels.update(dict(labelset))
                self.monarch.write_sketch(name, labels, t, delta,
                                          exemplars=dist.drain_exemplars())
        for fn in self._collectors:
            for name, labels, value in fn(t):
                self.monarch.write(name, labels, t, value)
        if self._wall_clock is not None:
            self.scrape_wall_s += self._wall_clock() - start_s
