"""Monarch: the time-series database and its scraper.

The real Monarch samples metrics exported by every task on a fixed cadence
(the paper uses series with one sample every 30 minutes retained for 700
days). Our equivalent keeps the same shape:

- series are identified by ``(metric name, sorted label set)``;
- :class:`MonarchScraper` walks registered :class:`MetricRegistry` objects
  (and ad-hoc collector callbacks) every ``interval_s`` of simulated time;
- retention trims old points per metric;
- queries return aligned ``(times, values)`` arrays and support windowed
  aggregation across label dimensions — the operation behind Fig. 1's
  fleet-wide RPS/CPU ratio and Fig. 18's 24-hour overlays.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import LabelSet, MetricRegistry, _labelset
from repro.sim.engine import Simulator

__all__ = ["Monarch", "MonarchScraper", "SeriesKey", "DEFAULT_SCRAPE_INTERVAL_S"]

# The paper's long-retention sampling cadence: one sample per 30 minutes.
DEFAULT_SCRAPE_INTERVAL_S = 30 * 60.0

SeriesKey = Tuple[str, LabelSet]


@dataclass
class _Series:
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, t: float, v: float) -> None:
        """Append a point (monotone time)."""
        if self.times and t < self.times[-1]:
            raise ValueError(
                f"out-of-order write: t={t} after t={self.times[-1]}"
            )
        self.times.append(t)
        self.values.append(v)

    def trim_before(self, cutoff: float) -> None:
        """Drop points before the cutoff."""
        idx = bisect.bisect_left(self.times, cutoff)
        if idx:
            del self.times[:idx]
            del self.values[:idx]


class Monarch:
    """The time-series store."""

    def __init__(self, retention_s: Optional[float] = None):
        self.retention_s = retention_s
        self._series: Dict[SeriesKey, _Series] = {}

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def write(self, name: str, labels: Optional[Dict[str, str]],
              t: float, value: float) -> None:
        """Append one point to a series."""
        key: SeriesKey = (name, _labelset(labels))
        series = self._series.get(key)
        if series is None:
            series = _Series()
            self._series[key] = series
        series.append(t, float(value))
        if self.retention_s is not None:
            series.trim_before(t - self.retention_s)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def series_keys(self, name: Optional[str] = None) -> List[SeriesKey]:
        """All series keys, optionally for one metric."""
        keys = list(self._series)
        if name is not None:
            keys = [k for k in keys if k[0] == name]
        return sorted(keys)

    def read(self, name: str, labels: Optional[Dict[str, str]] = None,
             t_start: Optional[float] = None,
             t_end: Optional[float] = None) -> Tuple[np.ndarray, np.ndarray]:
        """One series as ``(times, values)`` arrays (empty if absent)."""
        series = self._series.get((name, _labelset(labels)))
        if series is None:
            return np.array([]), np.array([])
        times = np.asarray(series.times)
        values = np.asarray(series.values)
        mask = np.ones(len(times), dtype=bool)
        if t_start is not None:
            mask &= times >= t_start
        if t_end is not None:
            mask &= times <= t_end
        return times[mask], values[mask]

    def read_matching(self, name: str,
                      label_filter: Optional[Dict[str, str]] = None
                      ) -> Dict[LabelSet, Tuple[np.ndarray, np.ndarray]]:
        """All series of ``name`` whose labels include ``label_filter``."""
        want = set((label_filter or {}).items())
        out = {}
        for (metric, labelset), series in self._series.items():
            if metric != name:
                continue
            if want and not want <= {(k, v) for k, v in labelset}:
                continue
            out[labelset] = (np.asarray(series.times), np.asarray(series.values))
        return out

    def rate(self, name: str, labels: Optional[Dict[str, str]] = None
             ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-second rate of a cumulative counter series.

        Returns midpoints of consecutive sample pairs and the finite-
        difference rate over each interval — how Monarch-style dashboards
        derive RPS from cumulative ``rpcs_served`` counters. Counter
        resets (value decreasing) yield a zero-rate interval rather than a
        negative spike.
        """
        times, values = self.read(name, labels)
        if len(times) < 2:
            return np.array([]), np.array([])
        dt = np.diff(times)
        dv = np.diff(values)
        rates = np.where((dv >= 0) & (dt > 0), dv / np.where(dt > 0, dt, 1),
                         0.0)
        return times[:-1] + dt / 2, rates

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def aggregate(self, name: str, window_s: float,
                  label_filter: Optional[Dict[str, str]] = None,
                  reducer: str = "sum") -> Tuple[np.ndarray, np.ndarray]:
        """Align matching series into windows and reduce across series.

        Points are bucketed into ``window_s``-wide windows by timestamp;
        within a (series, window) pair the last point wins (gauge
        semantics); across series the ``reducer`` ('sum' or 'mean')
        combines them. Returns (window_start_times, reduced_values).
        """
        if reducer not in ("sum", "mean"):
            raise ValueError(f"reducer must be 'sum' or 'mean', got {reducer!r}")
        matching = self.read_matching(name, label_filter)
        buckets: Dict[int, List[float]] = {}
        for times, values in matching.values():
            last_in_window: Dict[int, float] = {}
            for t, v in zip(times, values):
                last_in_window[int(t // window_s)] = v
            for w, v in last_in_window.items():
                buckets.setdefault(w, []).append(v)
        if not buckets:
            return np.array([]), np.array([])
        windows = np.array(sorted(buckets))
        if reducer == "sum":
            vals = np.array([sum(buckets[w]) for w in windows])
        else:
            vals = np.array([float(np.mean(buckets[w])) for w in windows])
        return windows * window_s, vals


class MonarchScraper:
    """Periodically samples registries and collector callbacks into Monarch.

    ``collectors`` are callbacks ``(t) -> iterable of (name, labels, value)``
    used for state that is cheaper to compute on demand than to export
    continuously (machine exogenous variables, pool utilizations).
    """

    def __init__(self, sim: Simulator, monarch: Monarch,
                 interval_s: float = DEFAULT_SCRAPE_INTERVAL_S):
        self.sim = sim
        self.monarch = monarch
        self.interval_s = interval_s
        self._registries: List[Tuple[MetricRegistry, Dict[str, str]]] = []
        self._collectors: List[Callable[[float], Iterable[Tuple[str, Dict[str, str], float]]]] = []
        self._task = sim.every(interval_s, self._scrape, start_after=interval_s)

    def register(self, registry: MetricRegistry,
                 base_labels: Optional[Dict[str, str]] = None) -> None:
        """Register with this component for later collection/dispatch."""
        self._registries.append((registry, dict(base_labels or {})))

    def add_collector(
        self,
        fn: Callable[[float], Iterable[Tuple[str, Dict[str, str], float]]],
    ) -> None:
        """Register an ad-hoc collector callback."""
        self._collectors.append(fn)

    def stop(self) -> None:
        """Stop the periodic scraping chain."""
        self._task.cancel()

    def _scrape(self) -> None:
        t = self.sim.now
        for registry, base_labels in self._registries:
            for (name, labelset), value in registry.snapshot().items():
                labels = dict(base_labels)
                labels.update(dict(labelset))
                self.monarch.write(name, labels, t, value)
        for fn in self._collectors:
            for name, labels, value in fn(t):
                self.monarch.write(name, labels, t, value)
