"""Dapper: sampled RPC traces with component latencies.

Each recorded :class:`Span` is one RPC as seen end-to-end: the nine
component latencies of Fig. 9, identity (service/method/cluster/machine),
tree linkage (trace id + parent id), status, sizes, CPU cost, and free-form
annotations (our servers annotate the exogenous-state snapshot at serve
time, which the Fig. 17 analysis joins against).

Sampling follows Dapper's design: a trace is either collected whole or not
at all (the decision is made at the root and inherited), so tree structure
is never partial. Method-level queries enforce the paper's rule that a
method needs ≥ 100 samples before its P99 is trusted (§2.1).

Head sampling can be steered per *root method*: the RPC client offers
each freshly minted trace to :meth:`DapperCollector.sample_root`, which
applies that method's current rate (set by the adaptive controller in
:mod:`repro.obs.alerting`) and counts the offer so the controller can
estimate offered-traces-per-interval without a second bookkeeping path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.rpc.stack import ComponentMatrix
# The Span record type is owned by the RPC layer (it is what the DES
# client emits); the collector re-exports it so analyses import it from
# the observability vantage point they conceptually read it from.
from repro.rpc.tracing import Span, SpanSink

__all__ = ["Span", "DapperCollector", "MIN_SAMPLES_PER_METHOD"]

# §2.1: "we only consider methods with at least 100 samples so that the
# 99th percentile is well defined".
MIN_SAMPLES_PER_METHOD = 100


class DapperCollector:
    """Collects sampled spans and serves the analyses' queries."""

    def __init__(self, sampling_rate: float = 1.0,
                 rng: Optional[np.random.Generator] = None):
        if not 0.0 <= sampling_rate <= 1.0:
            raise ValueError(f"sampling_rate must be in [0, 1], got {sampling_rate!r}")
        self.sampling_rate = sampling_rate
        self._rng = rng or np.random.default_rng(0)
        self.spans: List[Span] = []
        self.spans_recorded = 0
        self._sampled_traces: Dict[int, bool] = {}
        self._method_rates: Dict[str, float] = {}
        self._root_offers: Dict[str, int] = {}
        self._spool: Optional[SpanSink] = None
        self._keep_in_memory = True

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def trace_is_sampled(self, trace_id: int) -> bool:
        """Root-level sampling decision, sticky for the whole trace."""
        decision = self._sampled_traces.get(trace_id)
        if decision is None:
            decision = bool(self._rng.random() < self.sampling_rate)
            self._sampled_traces[trace_id] = decision
        return decision

    def sample_root(self, trace_id: int, full_method: str) -> bool:
        """Make the sticky decision for a freshly minted root trace.

        Applies the root method's steered rate when one is set (falling
        back to the global ``sampling_rate``) and counts the offer for
        the adaptive controller. Idempotent per trace id: a repeat call
        returns the existing decision without recounting.
        """
        decision = self._sampled_traces.get(trace_id)
        if decision is not None:
            return decision
        self._root_offers[full_method] = self._root_offers.get(full_method, 0) + 1
        rate = self._method_rates.get(full_method, self.sampling_rate)
        decision = bool(self._rng.random() < rate)
        self._sampled_traces[trace_id] = decision
        return decision

    def set_method_rate(self, full_method: str, rate: float) -> None:
        """Steer the head-sampling rate for one root method."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate!r}")
        self._method_rates[full_method] = rate

    def method_rate(self, full_method: str) -> float:
        """The current head-sampling rate for one root method."""
        return self._method_rates.get(full_method, self.sampling_rate)

    def drain_root_offers(self) -> Dict[str, int]:
        """Root-trace offers per method since the last drain."""
        out = self._root_offers
        self._root_offers = {}
        return out

    def spool_to(self, sink: SpanSink, keep_in_memory: bool = True) -> None:
        """Stream every kept span into ``sink`` as it is recorded.

        With ``keep_in_memory=False`` the collector stops accumulating
        ``self.spans`` — the sink (typically a
        :class:`~repro.obs.spanstore.SpanStoreSink`) becomes the only
        copy, and analyses query the warehouse instead. Spans already in
        memory are not replayed; spool before the study runs.
        """
        self._spool = sink
        self._keep_in_memory = keep_in_memory

    def record(self, span: Span) -> bool:
        """Record ``span`` if its trace is sampled; returns whether kept."""
        if not self.trace_is_sampled(span.trace_id):
            return False
        self.spans_recorded += 1
        if self._spool is not None:
            self._spool.record(span)
        if self._keep_in_memory:
            self.spans.append(span)
        return True

    def record_all(self, spans: Iterable[Span]) -> int:
        """Record many spans; returns how many were kept."""
        return sum(1 for s in spans if self.record(s))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def ok_spans(self) -> List[Span]:
        """Spans excluding errors — the paper excludes error RPCs from
        latency measurement (§2.1)."""
        return [s for s in self.spans if s.ok]

    def spans_for_method(self, service: str, method: str,
                         ok_only: bool = True) -> List[Span]:
        """Spans of one method (errors excluded by default)."""
        return [
            s for s in self.spans
            if s.service == service and s.method == method
            and (s.ok or not ok_only)
        ]

    def methods(self, min_samples: int = MIN_SAMPLES_PER_METHOD,
                ok_only: bool = True) -> List[str]:
        """Full method names with at least ``min_samples`` usable spans."""
        counts: Dict[str, int] = {}
        for s in self.spans:
            if ok_only and not s.ok:
                continue
            counts[s.full_method] = counts.get(s.full_method, 0) + 1
        return sorted(m for m, c in counts.items() if c >= min_samples)

    def matrix_for_method(self, full_method: str,
                          ok_only: bool = True) -> ComponentMatrix:
        """A ComponentMatrix over one method's spans."""
        rows = [
            s.breakdown for s in self.spans
            if s.full_method == full_method and (s.ok or not ok_only)
        ]
        return ComponentMatrix.from_breakdowns(rows)

    def group_by(self, key_fn, ok_only: bool = True) -> Dict[str, List[Span]]:
        """Group usable spans by an arbitrary key (cluster, machine, ...)."""
        out: Dict[str, List[Span]] = {}
        for s in self.spans:
            if ok_only and not s.ok:
                continue
            out.setdefault(key_fn(s), []).append(s)
        return out

    def traces(self) -> Dict[int, List[Span]]:
        """Spans grouped by trace id (whole call trees)."""
        out: Dict[int, List[Span]] = {}
        for s in self.spans:
            out.setdefault(s.trace_id, []).append(s)
        return out
