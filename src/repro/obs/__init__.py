"""Observability substrate: the paper's three measurement tools, rebuilt.

The paper's methodology (§2.1) rests on three Google-internal systems; this
package provides faithful-in-shape equivalents:

- :mod:`repro.obs.monarch` — a time-series database with periodic scraping
  (default every 30 simulated minutes, the paper's sampling interval),
  per-series retention, and windowed aggregation queries.
- :mod:`repro.obs.dapper` — an RPC trace collector: sampled spans carrying
  the nine-component latency breakdown, tree structure via parent ids, and
  annotations; queries enforce the paper's ≥100-samples-per-method rule.
- :mod:`repro.obs.gwp` — a fleet CPU profiler attributing normalized cycles
  to RPC-tax categories (compression, serialization, networking, RPC
  library) versus application and non-RPC work.
- :mod:`repro.obs.metrics` — counters/gauges/distributions that simulated
  tasks export and the Monarch scraper collects.

On top of those sit the runtime-telemetry additions:

- :mod:`repro.obs.telemetry` — :class:`~repro.sim.instrument.Probe`
  implementations (metrics aggregation, heartbeat, Chrome trace-event
  recording) that plug into the engine without the sim layer ever
  importing observability code;
- :mod:`repro.obs.chrometrace` — Perfetto-loadable Chrome trace-event
  export for Dapper trace trees and probe streams;
- :mod:`repro.obs.manifest` — per-run manifests (seed, config digest,
  counts, per-phase wall time, telemetry self-overhead, alert timeline).

And the fleet observability control plane:

- :mod:`repro.obs.sketch` — mergeable log-boundary percentile sketches
  and tail exemplar reservoirs, the substrate behind Monarch
  distribution series;
- :mod:`repro.obs.alerting` — declarative SLOs compiled to multi-window
  burn-rate rules, a deterministic alert state machine on the sim
  clock, and adaptive per-method Dapper head sampling.

And the span warehouse:

- :mod:`repro.obs.spanstore` — a columnar, spill-to-disk span warehouse
  (one ``.npy`` per column, atomic shards committed by a manifest,
  zero-copy mmap replay) fed live by a streaming
  :class:`~repro.rpc.tracing.SpanSink` or converted from trace files;
- :mod:`repro.obs.query` — vectorized queries over stored spans:
  compiled filters, group-by service·method with merge-order-free
  sketch folds, exact component matrices, parent-join trace reassembly.

Analyses in :mod:`repro.core` consume **only** these interfaces — never the
simulator's internal state — mirroring the paper's own vantage point.
"""

from repro.obs.alerting import (AdaptiveSamplingController, AlertEvent,
                                AlertManager, BurnRateRule, SloSpec,
                                load_slo_specs)
from repro.obs.chrometrace import (chrome_trace, span_trace_events,
                                   validate_trace_events, write_chrome_trace)
from repro.obs.dapper import DapperCollector, Span
from repro.obs.gwp import GwpProfiler
from repro.obs.manifest import (ManifestBuilder, ManifestError, RunManifest,
                                read_manifest, write_manifest)
from repro.obs.metrics import Counter, DistributionMetric, Gauge, MetricRegistry
from repro.obs.monarch import Monarch, MonarchScraper, SketchPoint
from repro.obs.query import (MethodAggregate, SpanFilter, SpanListSource,
                             group_by_method, method_matrix, spans_matching,
                             trace_spans, tree_shape_stats)
from repro.obs.sketch import ExemplarReservoir, LatencySketch
from repro.obs.spanstore import (SpanStore, SpanStoreError, SpanStoreSink,
                                 SpanWarehouse, ingest_spans,
                                 ingest_trace_file)
from repro.obs.telemetry import HeartbeatProbe, MetricsProbe, TraceEventProbe

__all__ = [
    "AdaptiveSamplingController",
    "AlertEvent",
    "AlertManager",
    "BurnRateRule",
    "Counter",
    "DapperCollector",
    "DistributionMetric",
    "ExemplarReservoir",
    "Gauge",
    "GwpProfiler",
    "HeartbeatProbe",
    "LatencySketch",
    "ManifestBuilder",
    "ManifestError",
    "MethodAggregate",
    "MetricRegistry",
    "MetricsProbe",
    "Monarch",
    "MonarchScraper",
    "RunManifest",
    "SketchPoint",
    "SloSpec",
    "Span",
    "SpanFilter",
    "SpanListSource",
    "SpanStore",
    "SpanStoreError",
    "SpanStoreSink",
    "SpanWarehouse",
    "TraceEventProbe",
    "chrome_trace",
    "group_by_method",
    "ingest_spans",
    "ingest_trace_file",
    "load_slo_specs",
    "method_matrix",
    "read_manifest",
    "span_trace_events",
    "spans_matching",
    "trace_spans",
    "tree_shape_stats",
    "validate_trace_events",
    "write_chrome_trace",
    "write_manifest",
]
