"""Observability substrate: the paper's three measurement tools, rebuilt.

The paper's methodology (§2.1) rests on three Google-internal systems; this
package provides faithful-in-shape equivalents:

- :mod:`repro.obs.monarch` — a time-series database with periodic scraping
  (default every 30 simulated minutes, the paper's sampling interval),
  per-series retention, and windowed aggregation queries.
- :mod:`repro.obs.dapper` — an RPC trace collector: sampled spans carrying
  the nine-component latency breakdown, tree structure via parent ids, and
  annotations; queries enforce the paper's ≥100-samples-per-method rule.
- :mod:`repro.obs.gwp` — a fleet CPU profiler attributing normalized cycles
  to RPC-tax categories (compression, serialization, networking, RPC
  library) versus application and non-RPC work.
- :mod:`repro.obs.metrics` — counters/gauges/distributions that simulated
  tasks export and the Monarch scraper collects.

On top of those sit the runtime-telemetry additions:

- :mod:`repro.obs.telemetry` — :class:`~repro.sim.instrument.Probe`
  implementations (metrics aggregation, heartbeat, Chrome trace-event
  recording) that plug into the engine without the sim layer ever
  importing observability code;
- :mod:`repro.obs.chrometrace` — Perfetto-loadable Chrome trace-event
  export for Dapper trace trees and probe streams;
- :mod:`repro.obs.manifest` — per-run manifests (seed, config digest,
  counts, per-phase wall time, telemetry self-overhead).

Analyses in :mod:`repro.core` consume **only** these interfaces — never the
simulator's internal state — mirroring the paper's own vantage point.
"""

from repro.obs.chrometrace import (chrome_trace, span_trace_events,
                                   validate_trace_events, write_chrome_trace)
from repro.obs.dapper import DapperCollector, Span
from repro.obs.gwp import GwpProfiler
from repro.obs.manifest import (ManifestBuilder, ManifestError, RunManifest,
                                read_manifest, write_manifest)
from repro.obs.metrics import Counter, DistributionMetric, Gauge, MetricRegistry
from repro.obs.monarch import Monarch, MonarchScraper
from repro.obs.telemetry import HeartbeatProbe, MetricsProbe, TraceEventProbe

__all__ = [
    "Counter",
    "DapperCollector",
    "DistributionMetric",
    "Gauge",
    "GwpProfiler",
    "HeartbeatProbe",
    "ManifestBuilder",
    "ManifestError",
    "MetricRegistry",
    "MetricsProbe",
    "Monarch",
    "MonarchScraper",
    "RunManifest",
    "Span",
    "TraceEventProbe",
    "chrome_trace",
    "read_manifest",
    "span_trace_events",
    "validate_trace_events",
    "write_chrome_trace",
    "write_manifest",
]
