"""Observability substrate: the paper's three measurement tools, rebuilt.

The paper's methodology (§2.1) rests on three Google-internal systems; this
package provides faithful-in-shape equivalents:

- :mod:`repro.obs.monarch` — a time-series database with periodic scraping
  (default every 30 simulated minutes, the paper's sampling interval),
  per-series retention, and windowed aggregation queries.
- :mod:`repro.obs.dapper` — an RPC trace collector: sampled spans carrying
  the nine-component latency breakdown, tree structure via parent ids, and
  annotations; queries enforce the paper's ≥100-samples-per-method rule.
- :mod:`repro.obs.gwp` — a fleet CPU profiler attributing normalized cycles
  to RPC-tax categories (compression, serialization, networking, RPC
  library) versus application and non-RPC work.
- :mod:`repro.obs.metrics` — counters/gauges/distributions that simulated
  tasks export and the Monarch scraper collects.

Analyses in :mod:`repro.core` consume **only** these interfaces — never the
simulator's internal state — mirroring the paper's own vantage point.
"""

from repro.obs.dapper import DapperCollector, Span
from repro.obs.gwp import GwpProfiler
from repro.obs.metrics import Counter, DistributionMetric, Gauge, MetricRegistry
from repro.obs.monarch import Monarch, MonarchScraper

__all__ = [
    "Counter",
    "DapperCollector",
    "DistributionMetric",
    "Gauge",
    "GwpProfiler",
    "MetricRegistry",
    "Monarch",
    "MonarchScraper",
    "Span",
]
