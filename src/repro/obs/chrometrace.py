"""Chrome trace-event export: open a run in Perfetto.

Serializes both telemetry sources into the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by ``ui.perfetto.dev`` and ``chrome://tracing``:

- :func:`span_trace_events` — Dapper trace trees. Each *service* becomes
  a process (``pid``), each trace a named thread group within it, and
  every span a complete ``X`` slice (``ts`` = span start, ``dur`` =
  completion time). Because a parent's application time contains its
  children (§2.1), parent slices visually contain child slices of the
  same service; *sibling* spans that overlap without nesting are split
  onto separate lanes (flame-graph layout), so the file always satisfies
  the viewer's slice-nesting invariant.
- :class:`~repro.obs.telemetry.TraceEventProbe` — the engine probe
  stream (pool job slices, per-method RPC slices, a heap-size counter
  track); :func:`chrome_trace` merges its events with span events.

All timestamps are simulated microseconds (the format's native unit);
``displayTimeUnit`` is milliseconds.
"""

from __future__ import annotations

import json
from typing import BinaryIO, Dict, Iterable, List, Optional, Sequence, \
    TextIO, Tuple, Union

from repro.rpc.tracing import Span

__all__ = ["span_trace_events", "chrome_trace", "write_chrome_trace",
           "validate_trace_events"]

# Probe-stream processes use pids 1-2 (telemetry.ENGINE_PID / RPC_PID);
# per-service span processes start here.
SPAN_PID_BASE = 10


def _assign_lanes(intervals: Sequence[Tuple[float, float]]) -> List[int]:
    """Flame-graph lane assignment for ``(start, end)`` intervals.

    Intervals must be sorted by ``(start, -duration)``. An interval goes
    on the first lane where it either nests inside the currently open
    interval or starts after everything on the lane has ended; a new
    lane opens otherwise. Within a lane, slices therefore always nest —
    the invariant trace viewers require of a thread track.
    """
    lanes: List[List[float]] = []  # per lane: stack of open end times
    out: List[int] = []
    for start, end in intervals:
        placed = None
        for i, stack in enumerate(lanes):
            while stack and stack[-1] <= start:
                stack.pop()
            if not stack or stack[-1] >= end:
                stack.append(end)
                placed = i
                break
        if placed is None:
            lanes.append([end])
            placed = len(lanes) - 1
        out.append(placed)
    return out


def span_trace_events(spans: Iterable[Span]) -> List[dict]:
    """Dapper spans as Chrome trace events (one process per service)."""
    span_list = list(spans)
    services = sorted({s.service for s in span_list})
    pids = {svc: SPAN_PID_BASE + i for i, svc in enumerate(services)}
    events: List[dict] = [
        {"ph": "M", "name": "process_name", "pid": pid, "tid": 0, "ts": 0,
         "args": {"name": svc}}
        for svc, pid in sorted(pids.items())
    ]

    # Group spans by (service, trace): each group renders as one or more
    # lanes (threads) named after the trace.
    groups: Dict[Tuple[str, int], List[Span]] = {}
    for s in span_list:
        groups.setdefault((s.service, s.trace_id), []).append(s)

    tid_alloc: Dict[int, int] = {}  # pid -> next free tid
    for (service, trace_id), members in sorted(groups.items()):
        pid = pids[service]
        members.sort(key=lambda s: (s.start_time, -s.completion_time,
                                    s.span_id))
        lanes = _assign_lanes([
            (s.start_time, s.start_time + s.completion_time)
            for s in members
        ])
        lane_tids: Dict[int, int] = {}
        for span, lane in zip(members, lanes):
            tid = lane_tids.get(lane)
            if tid is None:
                tid = tid_alloc.get(pid, 1)
                tid_alloc[pid] = tid + 1
                lane_tids[lane] = tid
                suffix = f" (lane {lane})" if lane else ""
                events.append({
                    "ph": "M", "name": "thread_name", "pid": pid,
                    "tid": tid, "ts": 0,
                    "args": {"name": f"trace {trace_id}{suffix}"},
                })
            events.append({
                "ph": "X", "name": span.full_method, "cat": "span",
                "pid": pid, "tid": tid,
                "ts": span.start_time * 1e6,
                "dur": span.completion_time * 1e6,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id or 0,
                    "status": span.status.name,
                    "server_machine": span.server_machine,
                    "request_bytes": span.request_bytes,
                    "response_bytes": span.response_bytes,
                },
            })
    # Metadata first, then timestamp order (stable), so the list itself
    # satisfies the monotonic-ts invariant without a chrome_trace() pass.
    indexed = list(enumerate(events))
    indexed.sort(key=lambda pair: (
        0 if pair[1]["ph"] == "M" else 1, pair[1].get("ts", 0), pair[0]))
    return [e for _i, e in indexed]


def chrome_trace(*event_lists: Iterable[dict]) -> dict:
    """Merge event lists into one trace document, ``ts``-sorted.

    Metadata (``M``) events sort first so names are established before
    any slice references them; everything else sorts by timestamp with
    the original order as the tie-break.
    """
    merged: List[dict] = []
    for events in event_lists:
        merged.extend(events)
    indexed = list(enumerate(merged))
    indexed.sort(key=lambda pair: (
        0 if pair[1].get("ph") == "M" else 1,
        pair[1].get("ts", 0),
        pair[0],
    ))
    return {
        "traceEvents": [e for _i, e in indexed],
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(sink: Union[str, TextIO],
                       *event_lists: Iterable[dict]) -> int:
    """Write a merged trace JSON to ``sink``; returns the event count."""
    doc = chrome_trace(*event_lists)
    own = isinstance(sink, str)
    f = open(sink, "w", encoding="utf-8") if own else sink
    try:
        json.dump(doc, f, separators=(",", ":"), sort_keys=True)
    finally:
        if own:
            f.close()
    return len(doc["traceEvents"])


def validate_trace_events(events: Sequence[dict]) -> None:
    """Check the invariants Perfetto's importer relies on; raise ValueError.

    - every event has ``ph``/``pid``/``tid``/``name`` and a numeric
      ``ts`` (metadata may use 0);
    - ``X`` events carry a non-negative ``dur``;
    - ``B``/``E`` events match up per ``(pid, tid)`` stack;
    - non-metadata timestamps are monotonically non-decreasing in file
      order;
    - ``X`` slices on one ``(pid, tid)`` track nest properly (no partial
      overlap).
    """
    open_bes: Dict[Tuple[int, int], int] = {}
    slice_stacks: Dict[Tuple[int, int], List[float]] = {}
    last_ts = None
    for i, event in enumerate(events):
        for key in ("ph", "pid", "tid", "name"):
            if key not in event:
                raise ValueError(f"event #{i} missing {key!r}: {event!r}")
        ph = event["ph"]
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            raise ValueError(f"event #{i} has non-numeric ts: {event!r}")
        if ph == "M":
            continue
        if last_ts is not None and ts < last_ts:
            raise ValueError(
                f"event #{i} ts {ts} goes backwards (prev {last_ts})")
        last_ts = ts
        track = (event["pid"], event["tid"])
        if ph == "B":
            open_bes[track] = open_bes.get(track, 0) + 1
        elif ph == "E":
            if not open_bes.get(track):
                raise ValueError(f"event #{i}: E without matching B on "
                                 f"track {track}")
            open_bes[track] -= 1
        elif ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event #{i} X has bad dur: {event!r}")
            stack = slice_stacks.setdefault(track, [])
            while stack and stack[-1] <= ts:
                stack.pop()
            end = ts + dur
            if stack and end > stack[-1] + 1e-9:
                raise ValueError(
                    f"event #{i}: slice [{ts}, {end}] partially overlaps "
                    f"an open slice ending at {stack[-1]} on track {track}")
            stack.append(end)
        elif ph not in ("C", "i", "I"):
            raise ValueError(f"event #{i} has unsupported ph {ph!r}")
    unmatched = {t: n for t, n in open_bes.items() if n}
    if unmatched:
        raise ValueError(f"unmatched B events on tracks: {unmatched}")
