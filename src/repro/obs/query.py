"""Vectorized queries over the span warehouse (fold-based, mmap-backed).

The analysis jobs in :mod:`repro.core` consume spans; this module is the
layer between them and :mod:`repro.obs.spanstore`: filters compiled to
boolean masks over id columns, group-by service·method aggregation with
sketch-fold percentiles, exact component-matrix extraction, and
parent-join trace reassembly.

Every aggregation here follows the PR 8 **merge-order-free fold
contract**: state is updated one shard at a time via operations that
commute across shards (integer adds, float component sums,
:meth:`~repro.obs.sketch.LatencySketch.merge` vector adds), so the
result is independent of shard visit order and a future parallel fold
cannot change any answer. The one deliberate exception is
:func:`method_matrix`, whose *rows* are emitted in shard order — which
is record order — precisely so observer-side analyses reproduce
engine-side results bit for bit.

A *source* is anything with ``iter_columns()`` yielding
:class:`~repro.obs.spanstore.SpanColumns` and a ``tables`` attribute: a
committed :class:`~repro.obs.spanstore.SpanWarehouse`, a live
:class:`~repro.obs.spanstore.SpanStoreSink` (spilled shards + buffered
tail), or the :class:`SpanListSource` adapter over a plain span list.

Memory: group-by and percentile queries hold one aggregate per group —
independent of corpus size. Trace reassembly and tree-shape statistics
index by trace/span id and are O(corpus ids) (~tens of bytes per span),
the documented cost of joining parents across shard boundaries.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.sketch import LatencySketch
from repro.obs.spanstore import SpanColumns, SpanWarehouse, StringTables
from repro.rpc.stack import APP_COMPONENT, COMPONENTS, ComponentMatrix
from repro.rpc.tracing import Span

__all__ = [
    "SpanFilter",
    "MethodAggregate",
    "SpanListSource",
    "group_by_method",
    "method_matrix",
    "spans_matching",
    "trace_spans",
    "traces",
    "tree_shape_stats",
    "TreeShapeStats",
]

_COMPONENT_INDEX = {name: i for i, name in enumerate(COMPONENTS)}

#: Metadata for the determinism analysis (RL006): the functions below
#: run inside pool workers, so everything import-reachable from this
#: module is scanned for hidden process-local state.
WORKER_ENTRYPOINTS = ("_init_query_worker", "_worker_fold_shards")

# Per-worker warehouse handle, reopened once by the pool initializer
# from the picklable (root, run_key) pair — the sanctioned RL006
# exception, mirroring repro.core.parallel.
_worker_warehouse: Optional[SpanWarehouse] = None  # repro-lint: disable=RL006 - reopened deterministically from (root, run_key) by _init_query_worker


def _tables(source) -> StringTables:
    return source.tables


@dataclass(frozen=True)
class SpanFilter:
    """A declarative span predicate, compiled to id-column masks.

    ``ok_only`` mirrors the paper's §2.1 rule (errors excluded from
    latency measurement); ``intra_cluster_only`` is the Fig. 14/16
    same-cluster filter.
    """

    service: Optional[str] = None
    method: Optional[str] = None
    ok_only: bool = True
    intra_cluster_only: bool = False

    def _ids(self, tables: StringTables
             ) -> Tuple[Optional[int], Optional[int], bool]:
        """``(service_id, method_id, possible)`` under ``tables``."""
        service_id = method_id = None
        if self.service is not None:
            service_id = tables.services.id_of(self.service)
            if service_id is None:
                return None, None, False
        if self.method is not None:
            method_id = tables.methods.id_of(self.method)
            if method_id is None:
                return None, None, False
        return service_id, method_id, True

    def mask(self, columns: SpanColumns,
             tables: StringTables) -> np.ndarray:
        """Boolean row mask over one shard."""
        service_id, method_id, possible = self._ids(tables)
        n = columns.n_spans
        if not possible:
            return np.zeros(n, dtype=bool)
        mask = np.ones(n, dtype=bool)
        if service_id is not None:
            mask &= np.asarray(columns.service_ids) == service_id
        if method_id is not None:
            mask &= np.asarray(columns.method_ids) == method_id
        if self.ok_only:
            mask &= columns.ok_mask()
        if self.intra_cluster_only:
            mask &= (np.asarray(columns.client_cluster_ids)
                     == np.asarray(columns.server_cluster_ids))
        return mask


def _metric_values(columns: SpanColumns, metric: str) -> np.ndarray:
    """One value per span for a named metric."""
    if metric == "total":
        return columns.totals()
    if metric == "tax":
        comps = np.asarray(columns.components, dtype=float)
        return comps.sum(axis=1) - comps[:, _COMPONENT_INDEX[APP_COMPONENT]]
    if metric == "cycles":
        return np.asarray(columns.cpu_cycles, dtype=float)
    if metric.startswith("component:"):
        name = metric.split(":", 1)[1]
        if name not in _COMPONENT_INDEX:
            raise KeyError(f"unknown component {name!r}")
        return np.asarray(columns.components, dtype=float)[
            :, _COMPONENT_INDEX[name]]
    raise KeyError(
        f"unknown metric {metric!r} (want total, tax, cycles, "
        f"or component:<name>)")


@dataclass
class MethodAggregate:
    """Merge-order-free per-(service, method) aggregate state."""

    service: str
    method: str
    count: int = 0
    error_count: int = 0
    sum_value_s: float = 0.0
    component_sums: np.ndarray = field(
        default_factory=lambda: np.zeros(len(COMPONENTS)))
    sketch: LatencySketch = field(default_factory=LatencySketch)

    @property
    def full_method(self) -> str:
        """The ``"Service/Method"`` identifier."""
        return f"{self.service}/{self.method}"

    @property
    def mean_value_s(self) -> float:
        """Mean of the folded metric (exact)."""
        return self.sum_value_s / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Sketch quantile of the folded metric (within alpha)."""
        return self.sketch.quantile(q)

    def merge(self, other: "MethodAggregate") -> "MethodAggregate":
        """Fold another shard's aggregate in; commutative."""
        self.count += other.count
        self.error_count += other.error_count
        self.sum_value_s += other.sum_value_s
        self.component_sums = self.component_sums + other.component_sums
        self.sketch.merge(other.sketch)
        return self


def _fold_shard(groups: Dict[Tuple[str, str], MethodAggregate],
                columns: SpanColumns, tables: StringTables,
                where: SpanFilter, id_filter: SpanFilter,
                metric: str) -> None:
    """Fold one shard's rows into ``groups`` (shared serial/worker body).

    Serial and parallel paths call this exact code on each shard, so
    the only difference between them is *which process* runs the fold —
    never what arithmetic it performs.
    """
    base = id_filter.mask(columns, tables)
    if not base.any():
        return
    ok = columns.ok_mask()
    used = base & ok if where.ok_only else base
    service_ids = np.asarray(columns.service_ids, dtype=np.int64)
    method_ids = np.asarray(columns.method_ids, dtype=np.int64)
    packed = (service_ids << 32) | method_ids
    values = _metric_values(columns, metric)
    comps = np.asarray(columns.components, dtype=float)
    for key in np.unique(packed[base]):
        service_id, method_id = int(key) >> 32, int(key) & 0xFFFFFFFF
        name = (tables.services.names[service_id],
                tables.methods.names[method_id])
        agg = groups.get(name)
        if agg is None:
            agg = groups[name] = MethodAggregate(service=name[0],
                                                 method=name[1])
        in_group = packed == key
        rows = used & in_group
        n = int(rows.sum())
        if n:
            group_values = values[rows]
            agg.count += n
            agg.sum_value_s += float(group_values.sum())
            agg.component_sums = (agg.component_sums
                                  + comps[rows].sum(axis=0))
            agg.sketch.observe_many(group_values)
        if where.ok_only:
            agg.error_count += int((base & in_group & ~ok).sum())


def _init_query_worker(root: str, run_key: str) -> None:
    """Pool initializer: reopen the committed warehouse once."""
    global _worker_warehouse
    _worker_warehouse = SpanWarehouse.open(root, run_key)


def _worker_fold_shards(task):
    """Fold a contiguous shard range; one partial dict per shard.

    Returns ``[(shard_index, groups | None), ...]`` — ``None`` marks a
    corrupt/missing shard (the driver records it like
    :meth:`SpanWarehouse.iter_columns` would). Per-shard partials (not
    a per-range fold) let the driver merge in global shard order, which
    replays the serial fold's float-accumulation sequence exactly.
    """
    shard_indices, where, metric = task
    warehouse = _worker_warehouse
    assert warehouse is not None, "pool initializer did not run"
    id_filter = SpanFilter(service=where.service, method=where.method,
                           ok_only=False,
                           intra_cluster_only=where.intra_cluster_only)
    out = []
    for index in shard_indices:
        columns = warehouse.store.get(
            index, expect_spans=warehouse.shard_counts[index])
        if columns is None:
            out.append((index, None))
            continue
        partial: Dict[Tuple[str, str], MethodAggregate] = {}
        _fold_shard(partial, columns, warehouse.tables, where, id_filter,
                    metric)
        out.append((index, partial))
    return out


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap start), spawn otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def _shard_ranges(n_shards: int, n_ranges: int) -> List[List[int]]:
    """Split shard indices into at most ``n_ranges`` contiguous runs."""
    n_ranges = max(1, min(n_ranges, n_shards))
    bounds = np.linspace(0, n_shards, n_ranges + 1).astype(int)
    return [list(range(bounds[i], bounds[i + 1])) for i in range(n_ranges)
            if bounds[i] < bounds[i + 1]]


def _group_by_method_parallel(source: SpanWarehouse, where: SpanFilter,
                              metric: str, jobs: int
                              ) -> Dict[Tuple[str, str], MethodAggregate]:
    """Fan the per-shard fold across a process pool, merge in order."""
    ranges = _shard_ranges(source.n_shards, jobs)
    tasks = [(tuple(r), where, metric) for r in ranges]
    ctx = _pool_context()
    with ctx.Pool(processes=len(tasks),
                  initializer=_init_query_worker,
                  initargs=(str(source.store.root),
                            source.store.run_key)) as pool:
        results = pool.map(_worker_fold_shards, tasks)
    groups: Dict[Tuple[str, str], MethodAggregate] = {}
    # pool.map preserves task order and tasks are contiguous ascending
    # ranges, so flattening visits shards in global index order — the
    # serial fold's exact accumulation sequence.
    for batch in results:
        for index, partial in batch:
            if partial is None:
                if index not in source.missing_shards:
                    source.missing_shards.append(index)
                continue
            for name, part in partial.items():
                agg = groups.get(name)
                if agg is None:
                    agg = groups[name] = MethodAggregate(service=name[0],
                                                         method=name[1])
                agg.merge(part)
    return groups


def group_by_method(source, where: Optional[SpanFilter] = None,
                    metric: str = "total", jobs: int = 1
                    ) -> Dict[Tuple[str, str], MethodAggregate]:
    """Per-(service, method) counts, component sums, and a value sketch.

    One pass over the shards; per shard, rows are bucketed by the packed
    ``(service_id, method_id)`` key and each group's values feed its
    sketch via ``observe_many``. All state merges commutatively, so
    shard order cannot affect the result.

    ``jobs > 1`` folds shards in a process pool when the source is a
    committed :class:`~repro.obs.spanstore.SpanWarehouse` (other sources
    fold serially). Workers emit one partial aggregate per shard and the
    driver merges them in shard-index order, so every float accumulation
    replays the serial fold's left-to-right sequence — the result is
    bit-identical to ``jobs=1``, not merely close.

    ``error_count`` counts the spans the ``ok_only`` filter *excluded*
    for that method (only meaningful when ``where.ok_only`` is true).
    """
    where = where or SpanFilter()
    if (jobs > 1 and isinstance(source, SpanWarehouse)
            and source.n_shards > 1):
        return _group_by_method_parallel(source, where, metric, jobs)
    tables = _tables(source)
    groups: Dict[Tuple[str, str], MethodAggregate] = {}
    id_filter = SpanFilter(service=where.service, method=where.method,
                           ok_only=False,
                           intra_cluster_only=where.intra_cluster_only)
    for columns in source.iter_columns():
        _fold_shard(groups, columns, tables, where, id_filter, metric)
    return groups


def method_matrix(source, service: str, method: str,
                  ok_only: bool = True,
                  intra_cluster_only: bool = False) -> ComponentMatrix:
    """One method's Fig. 9 component rows, in exact record order.

    Row order is shard order = record order, so this reproduces
    :meth:`DapperCollector.matrix_for_method` bit for bit over the same
    corpus.
    """
    where = SpanFilter(service=service, method=method, ok_only=ok_only,
                       intra_cluster_only=intra_cluster_only)
    tables = _tables(source)
    parts: List[np.ndarray] = []
    for columns in source.iter_columns():
        mask = where.mask(columns, tables)
        if mask.any():
            parts.append(np.asarray(columns.components, dtype=float)[mask])
    if not parts:
        return ComponentMatrix(np.zeros((0, len(COMPONENTS))))
    return ComponentMatrix(np.vstack(parts))


def spans_matching(source, where: Optional[SpanFilter] = None) -> List[Span]:
    """Reconstructed spans passing the filter, in record order."""
    where = where or SpanFilter()
    tables = _tables(source)
    out: List[Span] = []
    for columns in source.iter_columns():
        mask = where.mask(columns, tables)
        if not mask.any():
            continue
        spans = columns.to_spans(tables)
        out.extend(s for s, keep in zip(spans, mask) if keep)
    return out


def trace_spans(source, trace_id: int) -> List[Span]:
    """One trace's spans, reassembled across shard boundaries."""
    tables = _tables(source)
    out: List[Span] = []
    for columns in source.iter_columns():
        mask = np.asarray(columns.trace_ids) == np.uint64(trace_id)
        if not mask.any():
            continue
        spans = columns.to_spans(tables)
        out.extend(s for s, keep in zip(spans, mask) if keep)
    return out


def traces(source, limit: Optional[int] = None) -> Dict[int, List[Span]]:
    """All spans grouped by trace id (the incident-report drill-down).

    Reproduces :meth:`DapperCollector.traces` over the same corpus.
    ``limit`` keeps only the ``limit`` largest trace ids (the newest
    traces, since ids are minted monotonically). Memory is O(corpus).
    """
    out: Dict[int, List[Span]] = {}
    tables = _tables(source)
    for columns in source.iter_columns():
        for span in columns.to_spans(tables):
            out.setdefault(span.trace_id, []).append(span)
    if limit is not None and len(out) > limit:
        keep = sorted(out, reverse=True)[:max(limit, 0)]
        out = {tid: out[tid] for tid in keep}
    return out


@dataclass
class TreeShapeStats:
    """Per-trace size/depth distributions (the call-tree shape queries)."""

    sizes: np.ndarray    # spans per trace
    depths: np.ndarray   # max span depth per trace (root = 1)
    n_orphans: int       # spans whose parent id was never stored

    @property
    def n_traces(self) -> int:
        """Distinct traces seen."""
        return int(self.sizes.shape[0])

    @property
    def n_spans(self) -> int:
        """Total spans across traces."""
        return int(self.sizes.sum())

    def size_quantile(self, q: float) -> float:
        """Quantile of spans-per-trace."""
        return float(np.quantile(self.sizes, q)) if self.n_traces else 0.0

    def depth_quantile(self, q: float) -> float:
        """Quantile of per-trace max depth."""
        return float(np.quantile(self.depths, q)) if self.n_traces else 0.0


def tree_shape_stats(source) -> TreeShapeStats:
    """Spans-per-trace and max-depth distributions via parent joins.

    Two logical passes folded into one scan: per-shard id arrays append
    into flat index structures (O(corpus ids) memory), then depths are
    resolved by chasing parent pointers with memoization. A span whose
    parent id is absent from the corpus (e.g. head-sampled partial
    trees) is treated as a root and counted in ``n_orphans``.
    """
    span_parent: Dict[int, int] = {}
    span_trace: Dict[int, int] = {}
    for columns in source.iter_columns():
        for sid, pid, tid in zip(columns.span_ids.tolist(),
                                 columns.parent_ids.tolist(),
                                 columns.trace_ids.tolist()):
            span_parent[sid] = pid
            span_trace[sid] = tid

    depth_of: Dict[int, int] = {}
    n_orphans = 0

    def resolve(sid: int) -> int:
        chain: List[int] = []
        cur = sid
        depth = 0
        while True:
            cached = depth_of.get(cur)
            if cached is not None:
                depth = cached
                break
            parent = span_parent.get(cur, 0)
            if parent == 0 or parent not in span_parent:
                depth = 1
                depth_of[cur] = 1
                break
            chain.append(cur)
            cur = parent
        for node in reversed(chain):
            depth += 1
            depth_of[node] = depth
        return depth_of.get(sid, depth)

    trace_sizes: Dict[int, int] = {}
    trace_depths: Dict[int, int] = {}
    for sid, tid in span_trace.items():
        parent = span_parent.get(sid, 0)
        if parent != 0 and parent not in span_parent:
            n_orphans += 1
        d = resolve(sid)
        trace_sizes[tid] = trace_sizes.get(tid, 0) + 1
        if d > trace_depths.get(tid, 0):
            trace_depths[tid] = d
    tids = sorted(trace_sizes)
    return TreeShapeStats(
        sizes=np.asarray([trace_sizes[t] for t in tids], dtype=np.int64),
        depths=np.asarray([trace_depths[t] for t in tids], dtype=np.int64),
        n_orphans=n_orphans,
    )


class SpanListSource:
    """Query any in-memory span list with the warehouse query API.

    Columnarizes once at construction; useful for querying a live
    :class:`~repro.obs.dapper.DapperCollector` (or test fixtures) with
    the same code paths the warehouse uses.
    """

    def __init__(self, spans: Iterable[Span]):
        self.tables = StringTables()
        self._columns = SpanColumns.from_spans(list(spans), self.tables)

    @property
    def n_spans(self) -> int:
        """Rows in the single backing shard."""
        return self._columns.n_spans

    def iter_columns(self) -> Iterator[SpanColumns]:
        """The single in-memory shard."""
        yield self._columns
