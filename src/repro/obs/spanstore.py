"""Columnar on-disk span warehouse: the telemetry side of the spill design.

The paper's analysis jobs ran over *stored* fleet telemetry — Dapper
spans persisted to a trace warehouse — not over live collectors. This
module is that warehouse for our spans, mirroring the
:mod:`repro.core.shardstore` spill design byte for byte in spirit:

- ``<root>/<run_key>/shard-00042.<column>.npy`` — one standard ``.npy``
  per span column (trace/span/parent ids, interned service/method ids,
  status, start time, sizes, CPU cycles), plus one ``(n, 9)`` matrix of
  the nine Fig. 9 component latencies and a COO annotation triplet
  (``ann_rows``/``ann_keys``/``ann_values``) for the sparse
  exogenous-state annotations the Fig. 17 joins consume.
- ``<root>/<run_key>/manifest.json`` — written *last*, atomically, as
  the commit point. It carries the per-shard span counts **and the
  string tables** (service, method, cluster, machine, annotation-key
  names), so id columns decode without touching any Python object that
  produced them. A run directory without a manifest is an unfinished
  spill.

Durability follows :class:`~repro.core.shardstore.ShardStore`: every
file is written to a same-directory temp name and ``os.replace``d into
place; any unreadable, truncated, or inconsistent shard behaves as a
**miss** — the corrupt files are unlinked and the reader reports the
shard as missing rather than surfacing garbage rows. Unlike forest
shards, spans are *not* regenerable from a seed, so readers surface the
miss (``SpanWarehouse.missing_shards``) instead of silently recreating
data.

Three front doors:

- :class:`SpanStoreSink` — a streaming :class:`~repro.rpc.tracing.SpanSink`:
  spans buffer in columnar builders and spill one shard to disk every
  ``shard_size`` records, so a live DES study (or serve mode) can feed
  the warehouse with bounded memory. ``close()`` commits the manifest.
- :func:`ingest_trace_file` — converts an existing ``trace_io`` file
  (the ``--save-traces`` output) into a warehouse.
- :class:`SpanWarehouse` — the read handle: zero-copy
  ``np.load(mmap_mode="r")`` replay of shards for the fold-based query
  layer in :mod:`repro.obs.query`.

Round-trips are lossless: ``float64`` columns, exact integer ids, and
the manifest's string tables reconstruct every :class:`Span` bit for
bit, which is what lets the observer-side analyses in
:mod:`repro.core.observer` match engine-side ground truth exactly.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import (BinaryIO, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple, Union)

import numpy as np

from repro.rpc.errors import StatusCode
from repro.rpc.stack import COMPONENTS, ComponentMatrix, LatencyBreakdown
from repro.rpc.tracing import Span

__all__ = [
    "SPANSTORE_SCHEMA",
    "DEFAULT_SHARD_SIZE",
    "SpanStoreError",
    "StringTables",
    "SpanColumns",
    "SpanStore",
    "SpanStoreSink",
    "SpanWarehouse",
    "ingest_trace_file",
    "ingest_spans",
]

#: Bump to invalidate every existing warehouse (column set or dtype change).
SPANSTORE_SCHEMA = 1

#: Spans buffered per shard before spilling. At ~150 bytes/span of
#: columnar data this bounds the sink's working set to ~1-2 MB.
DEFAULT_SHARD_SIZE = 8192

#: Per-span columns: name -> on-disk dtype. uint64 ids match the wire
#: schema (``parent_id`` 0 = root, as in trace files); int32 interned
#: ids bound a warehouse to 2**31 distinct strings per table.
_SPAN_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("trace_ids", "uint64"),
    ("span_ids", "uint64"),
    ("parent_ids", "uint64"),
    ("service_ids", "int32"),
    ("method_ids", "int32"),
    ("client_cluster_ids", "int32"),
    ("server_cluster_ids", "int32"),
    ("machine_ids", "int32"),
    ("statuses", "int16"),
    ("start_times", "float64"),
    ("request_bytes", "int64"),
    ("response_bytes", "int64"),
    ("cpu_cycles", "float64"),
)

#: Sparse annotation triplet: (row within shard, interned key, value).
_ANN_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("ann_rows", "int32"),
    ("ann_keys", "int32"),
    ("ann_values", "float64"),
)

#: The (n, 9) Fig. 9 component matrix travels as one 2-D ``.npy``.
_MATRIX_COLUMN = "components"


class SpanStoreError(Exception):
    """Raised on unusable warehouses (no manifest, schema mismatch)."""


class _Interner:
    """Stable string -> small-int interning (insertion order = id order)."""

    __slots__ = ("names", "_ids")

    def __init__(self, names: Optional[Sequence[str]] = None):
        self.names: List[str] = list(names or [])
        self._ids: Dict[str, int] = {n: i for i, n in enumerate(self.names)}

    def intern(self, name: str) -> int:
        idx = self._ids.get(name)
        if idx is None:
            idx = len(self.names)
            self._ids[name] = idx
            self.names.append(name)
        return idx

    def id_of(self, name: str) -> Optional[int]:
        """The id for ``name``, or ``None`` if never interned."""
        return self._ids.get(name)

    def __len__(self) -> int:
        return len(self.names)


class StringTables:
    """The five interning tables a warehouse carries in its manifest."""

    __slots__ = ("services", "methods", "clusters", "machines", "ann_keys")

    def __init__(self) -> None:
        self.services = _Interner()
        self.methods = _Interner()
        self.clusters = _Interner()
        self.machines = _Interner()
        self.ann_keys = _Interner()

    def to_dict(self) -> Dict[str, List[str]]:
        """JSON-safe form for the manifest."""
        return {
            "services": list(self.services.names),
            "methods": list(self.methods.names),
            "clusters": list(self.clusters.names),
            "machines": list(self.machines.names),
            "ann_keys": list(self.ann_keys.names),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, List[str]]) -> "StringTables":
        """Rebuild tables from manifest JSON."""
        out = cls()
        out.services = _Interner(doc.get("services", []))
        out.methods = _Interner(doc.get("methods", []))
        out.clusters = _Interner(doc.get("clusters", []))
        out.machines = _Interner(doc.get("machines", []))
        out.ann_keys = _Interner(doc.get("ann_keys", []))
        return out


@dataclass
class SpanColumns:
    """One shard's spans in columnar form (arrays may be mmap views)."""

    trace_ids: np.ndarray
    span_ids: np.ndarray
    parent_ids: np.ndarray
    service_ids: np.ndarray
    method_ids: np.ndarray
    client_cluster_ids: np.ndarray
    server_cluster_ids: np.ndarray
    machine_ids: np.ndarray
    statuses: np.ndarray
    start_times: np.ndarray
    request_bytes: np.ndarray
    response_bytes: np.ndarray
    cpu_cycles: np.ndarray
    components: np.ndarray          # (n, 9) float64
    ann_rows: np.ndarray
    ann_keys: np.ndarray
    ann_values: np.ndarray

    @property
    def n_spans(self) -> int:
        """Rows in this shard."""
        return int(self.trace_ids.shape[0])

    @property
    def n_annotations(self) -> int:
        """Annotation triplets in this shard."""
        return int(self.ann_rows.shape[0])

    # ------------------------------------------------------------------
    @classmethod
    def from_spans(cls, spans: Sequence[Span],
                   tables: StringTables) -> "SpanColumns":
        """Columnarize spans, interning strings into ``tables``."""
        n = len(spans)
        cols: Dict[str, np.ndarray] = {
            name: np.empty(n, dtype=dtype) for name, dtype in _SPAN_COLUMNS
        }
        components = np.empty((n, len(COMPONENTS)), dtype=np.float64)
        ann_rows: List[int] = []
        ann_keys: List[int] = []
        ann_values: List[float] = []
        for i, s in enumerate(spans):
            cols["trace_ids"][i] = s.trace_id
            cols["span_ids"][i] = s.span_id
            cols["parent_ids"][i] = s.parent_id or 0
            cols["service_ids"][i] = tables.services.intern(s.service)
            cols["method_ids"][i] = tables.methods.intern(s.method)
            cols["client_cluster_ids"][i] = tables.clusters.intern(
                s.client_cluster)
            cols["server_cluster_ids"][i] = tables.clusters.intern(
                s.server_cluster)
            cols["machine_ids"][i] = tables.machines.intern(s.server_machine)
            cols["statuses"][i] = s.status.value
            cols["start_times"][i] = s.start_time
            cols["request_bytes"][i] = s.request_bytes
            cols["response_bytes"][i] = s.response_bytes
            cols["cpu_cycles"][i] = s.cpu_cycles
            b = s.breakdown
            for j, comp in enumerate(COMPONENTS):
                components[i, j] = getattr(b, comp)
            for key, value in s.annotations.items():
                ann_rows.append(i)
                ann_keys.append(tables.ann_keys.intern(key))
                ann_values.append(float(value))
        return cls(components=components,
                   ann_rows=np.asarray(ann_rows, dtype=np.int32),
                   ann_keys=np.asarray(ann_keys, dtype=np.int32),
                   ann_values=np.asarray(ann_values, dtype=np.float64),
                   **cols)

    def to_spans(self, tables: StringTables) -> List[Span]:
        """Lossless reconstruction of the shard's :class:`Span` records."""
        annotations: Dict[int, Dict[str, float]] = {}
        key_names = tables.ann_keys.names
        for r, k, v in zip(self.ann_rows.tolist(), self.ann_keys.tolist(),
                           self.ann_values.tolist()):
            annotations.setdefault(r, {})[key_names[k]] = v
        out: List[Span] = []
        services = tables.services.names
        methods = tables.methods.names
        clusters = tables.clusters.names
        machines = tables.machines.names
        for i in range(self.n_spans):
            parent = int(self.parent_ids[i])
            out.append(Span(
                trace_id=int(self.trace_ids[i]),
                span_id=int(self.span_ids[i]),
                parent_id=parent or None,
                service=services[int(self.service_ids[i])],
                method=methods[int(self.method_ids[i])],
                client_cluster=clusters[int(self.client_cluster_ids[i])],
                server_cluster=clusters[int(self.server_cluster_ids[i])],
                server_machine=machines[int(self.machine_ids[i])],
                start_time=float(self.start_times[i]),
                breakdown=LatencyBreakdown(**dict(zip(
                    COMPONENTS, self.components[i].tolist()))),
                status=StatusCode(int(self.statuses[i])),
                request_bytes=int(self.request_bytes[i]),
                response_bytes=int(self.response_bytes[i]),
                cpu_cycles=float(self.cpu_cycles[i]),
                annotations=annotations.get(i, {}),
            ))
        return out

    # ------------------------------------------------------------------
    def totals(self) -> np.ndarray:
        """Per-span completion time (sum of the nine components)."""
        return np.asarray(self.components, dtype=float).sum(axis=1)

    def ok_mask(self) -> np.ndarray:
        """Boolean mask of OK-status spans (the paper's §2.1 filter)."""
        return np.asarray(self.statuses) == StatusCode.OK.value

    def matrix(self, mask: Optional[np.ndarray] = None) -> ComponentMatrix:
        """Rows as a :class:`ComponentMatrix` (optionally masked)."""
        values = np.asarray(self.components, dtype=float)
        if mask is not None:
            values = values[mask]
        return ComponentMatrix(values)

    def annotation_values(self, key_id: int
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """``(row_indices, values)`` of one annotation key in this shard."""
        sel = np.asarray(self.ann_keys) == key_id
        return (np.asarray(self.ann_rows)[sel],
                np.asarray(self.ann_values)[sel])


class SpanStore:
    """One warehouse run directory: put/get span shards by index.

    Mirrors :class:`~repro.core.shardstore.ShardStore`: atomic column
    writes, a manifest as the commit point, and the corrupt→miss+unlink
    read contract.
    """

    def __init__(self, root: Union[os.PathLike, str], run_key: str):
        if not run_key or any(c in run_key for c in "/\\"):
            raise ValueError(f"run_key must be a plain name, got {run_key!r}")
        self.root = Path(root)
        self.run_key = run_key
        self.run_dir = self.root / run_key
        self.bytes_written = 0

    # -- paths ---------------------------------------------------------
    def shard_paths(self, shard_index: int) -> Dict[str, Path]:
        """Column name -> file path for one shard."""
        stem = f"shard-{shard_index:05d}"
        names = ([name for name, _ in _SPAN_COLUMNS]
                 + [name for name, _ in _ANN_COLUMNS] + [_MATRIX_COLUMN])
        return {name: self.run_dir / f"{stem}.{name}.npy" for name in names}

    @property
    def manifest_path(self) -> Path:
        """The run's commit point; absent until :meth:`finalize`."""
        return self.run_dir / "manifest.json"

    # -- writing -------------------------------------------------------
    def _atomic_save(self, path: Path, array: np.ndarray) -> int:
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with tmp.open("wb") as fh:
                np.save(fh, array)
            nbytes = tmp.stat().st_size
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return nbytes

    def put(self, shard_index: int, columns: SpanColumns) -> int:
        """Spill one shard; returns bytes written."""
        self.run_dir.mkdir(parents=True, exist_ok=True)
        paths = self.shard_paths(shard_index)
        nbytes = 0
        for name, dtype in _SPAN_COLUMNS + _ANN_COLUMNS:
            column = np.asarray(getattr(columns, name), dtype=dtype)
            nbytes += self._atomic_save(paths[name], column)
        nbytes += self._atomic_save(
            paths[_MATRIX_COLUMN],
            np.asarray(columns.components, dtype=np.float64))
        self.bytes_written += nbytes
        return nbytes

    def finalize(self, shards: List[Dict[str, int]],
                 tables: StringTables) -> None:
        """Atomically write the manifest that commits the warehouse."""
        self.run_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": SPANSTORE_SCHEMA,
            "run_key": self.run_key,
            "n_shards": len(shards),
            "n_spans": int(sum(s["n_spans"] for s in shards)),
            "shards": shards,
            "tables": tables.to_dict(),
        }
        tmp = self.manifest_path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
            os.replace(tmp, self.manifest_path)
        finally:
            tmp.unlink(missing_ok=True)

    # -- reading -------------------------------------------------------
    def manifest(self) -> Optional[dict]:
        """The committed manifest, or ``None`` (missing/corrupt/foreign)."""
        try:
            payload = json.loads(self.manifest_path.read_text())
        except (OSError, ValueError):
            return None
        if (not isinstance(payload, dict)
                or payload.get("schema") != SPANSTORE_SCHEMA
                or payload.get("run_key") != self.run_key):
            return None
        return payload

    def drop(self, shard_index: int) -> None:
        """Remove one shard's files (used when a shard fails validation)."""
        for path in self.shard_paths(shard_index).values():
            path.unlink(missing_ok=True)

    def get(self, shard_index: int,
            expect_spans: Optional[int] = None) -> Optional[SpanColumns]:
        """Memory-mapped view of one shard, or ``None`` on miss.

        Any failure to load — absent files, truncated ``.npy`` payloads,
        inconsistent column lengths, a malformed component matrix, or a
        span count contradicting ``expect_spans`` — unlinks the shard
        and reports a miss. Spans are not regenerable, so callers must
        surface the miss rather than fabricate data (see
        :attr:`SpanWarehouse.missing_shards`).
        """
        paths = self.shard_paths(shard_index)
        arrays: Dict[str, np.ndarray] = {}
        try:
            for name in paths:
                arrays[name] = np.load(paths[name], mmap_mode="r",
                                       allow_pickle=False)
        except (OSError, ValueError):
            self.drop(shard_index)
            return None
        n = arrays["trace_ids"].shape[0]
        n_ann = arrays["ann_rows"].shape[0]
        matrix = arrays[_MATRIX_COLUMN]
        bad = (
            any(arrays[name].shape != (n,) for name, _ in _SPAN_COLUMNS)
            or any(arrays[name].shape != (n_ann,) for name, _ in _ANN_COLUMNS)
            or matrix.shape != (n, len(COMPONENTS))
            or (n_ann > 0 and (int(arrays["ann_rows"].max()) >= n
                               or int(arrays["ann_rows"].min()) < 0))
            or (expect_spans is not None and n != expect_spans)
        )
        if bad:
            self.drop(shard_index)
            return None
        return SpanColumns(
            components=matrix,
            **{name: arrays[name]
               for name, _ in _SPAN_COLUMNS + _ANN_COLUMNS})


class SpanStoreSink:
    """A streaming :class:`~repro.rpc.tracing.SpanSink` over a store.

    Spans buffer in memory and spill one columnar shard every
    ``shard_size`` records, so feeding a million-span study needs the
    working set of one shard, not the corpus. ``close()`` flushes the
    tail shard and commits the manifest; until then the run directory is
    an unfinished spill that readers refuse.

    Accepts every span offered (returns ``True``): sampling is the
    collector's job — plug this sink behind
    :meth:`~repro.obs.dapper.DapperCollector.spool_to` so head-sampling
    decisions stay in one place.
    """

    def __init__(self, store: SpanStore,
                 shard_size: int = DEFAULT_SHARD_SIZE):
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size!r}")
        self.store = store
        self.shard_size = shard_size
        self.tables = StringTables()
        self.shards: List[Dict[str, int]] = []
        self.spans_spilled = 0
        self._pending: List[Span] = []
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def n_spans(self) -> int:
        """Spans accepted so far (spilled + buffered)."""
        return self.spans_spilled + len(self._pending)

    @property
    def closed(self) -> bool:
        """Whether the manifest has been committed."""
        return self._closed

    def record(self, span: Span) -> bool:
        """Accept one span (always kept); spills a shard when full."""
        if self._closed:
            raise SpanStoreError("sink is closed")
        self._pending.append(span)
        if len(self._pending) >= self.shard_size:
            self.flush()
        return True

    def record_all(self, spans: Iterable[Span]) -> int:
        """Accept many spans; returns the count."""
        n = 0
        for span in spans:
            self.record(span)
            n += 1
        return n

    def flush(self) -> None:
        """Spill the buffered tail as a (possibly short) shard."""
        if not self._pending:
            return
        columns = SpanColumns.from_spans(self._pending, self.tables)
        index = len(self.shards)
        self.store.put(index, columns)
        self.shards.append({"n_spans": columns.n_spans,
                            "n_annotations": columns.n_annotations})
        self.spans_spilled += columns.n_spans
        self._pending = []

    def close(self) -> "SpanWarehouse":
        """Flush, commit the manifest, and open the finished warehouse."""
        if not self._closed:
            self.flush()
            self.store.finalize(self.shards, self.tables)
            self._closed = True
        return SpanWarehouse.open(self.store.root, self.store.run_key)

    def __enter__(self) -> "SpanStoreSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Commit only on clean exit: a crashed writer must leave an
        # unfinished (manifest-less) spill, never a half-true warehouse.
        if exc_type is None:
            self.close()

    # ------------------------------------------------------------------
    def iter_columns(self) -> Iterator[SpanColumns]:
        """Live query view: spilled shards (mmap) plus the buffered tail.

        This is what serve mode's ``/debug/query`` reads — queries see
        every span recorded so far without forcing an early commit.
        """
        for index, meta in enumerate(self.shards):
            columns = self.store.get(index, expect_spans=meta["n_spans"])
            if columns is not None:
                yield columns
        if self._pending:
            yield SpanColumns.from_spans(self._pending, self.tables)


class SpanWarehouse:
    """Read handle over a committed warehouse run.

    ``iter_columns()`` yields zero-copy mmap shard views in shard order
    — which is record order, so analyses that fold shards sequentially
    see spans exactly as the collector recorded them.
    """

    def __init__(self, store: SpanStore, manifest: dict):
        self.store = store
        self.manifest = manifest
        self.tables = StringTables.from_dict(manifest["tables"])
        self.shard_counts: List[int] = [
            int(s["n_spans"]) for s in manifest["shards"]]
        self.missing_shards: List[int] = []

    @classmethod
    def open(cls, root: Union[os.PathLike, str],
             run_key: str) -> "SpanWarehouse":
        """Open a committed run; raises :class:`SpanStoreError` if not."""
        store = SpanStore(root, run_key)
        manifest = store.manifest()
        if manifest is None:
            raise SpanStoreError(
                f"no committed span warehouse at {store.run_dir} "
                f"(missing, corrupt, or foreign manifest)")
        return cls(store, manifest)

    @property
    def n_shards(self) -> int:
        """Shards in the committed run."""
        return len(self.shard_counts)

    @property
    def n_spans(self) -> int:
        """Total spans committed (manifest count; misses not deducted)."""
        return int(self.manifest["n_spans"])

    def iter_columns(self) -> Iterator[SpanColumns]:
        """Shard views in record order; corrupt shards become misses."""
        for index, expect in enumerate(self.shard_counts):
            columns = self.store.get(index, expect_spans=expect)
            if columns is None:
                if index not in self.missing_shards:
                    self.missing_shards.append(index)
                continue
            yield columns

    def iter_spans(self) -> Iterator[Span]:
        """Reconstructed :class:`Span` records in record order."""
        for columns in self.iter_columns():
            for span in columns.to_spans(self.tables):
                yield span


def ingest_spans(spans: Iterable[Span], root: Union[os.PathLike, str],
                 run_key: str,
                 shard_size: int = DEFAULT_SHARD_SIZE) -> SpanWarehouse:
    """Build a committed warehouse from an in-memory span iterable."""
    sink = SpanStoreSink(SpanStore(root, run_key), shard_size=shard_size)
    sink.record_all(spans)
    return sink.close()


def ingest_trace_file(source: Union[str, bytes, BinaryIO],
                      root: Union[os.PathLike, str], run_key: str,
                      shard_size: int = DEFAULT_SHARD_SIZE) -> SpanWarehouse:
    """Convert a ``trace_io`` file (``--save-traces``) into a warehouse.

    Streams record by record, so the trace file never materializes as a
    span list.
    """
    from repro.obs.trace_io import read_traces

    return ingest_spans(read_traces(source), root, run_key,
                        shard_size=shard_size)
