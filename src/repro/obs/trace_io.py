"""Dapper trace serialization: spans to bytes and back.

The real Dapper persists sampled traces to storage for offline analysis;
this module provides the equivalent: spans encode to the same wire format
RPC payloads use (length-prefixed records, so files stream), and a whole
collector round-trips losslessly. Analyses can therefore run on trace
files produced by an earlier simulation, mirroring how the paper's
analysis jobs consumed stored traces rather than live systems.

File layout: ``magic "DTRC" | version varint | repeated
(varint record_len | span record)``.
"""

from __future__ import annotations

from typing import BinaryIO, Iterable, Iterator, List, Union

from repro.obs.dapper import DapperCollector, Span
from repro.rpc.errors import StatusCode
from repro.rpc.stack import COMPONENTS, LatencyBreakdown
from repro.rpc.wire import (
    FieldSpec,
    FieldType,
    MessageSchema,
    WireError,
    decode_message,
    decode_varint,
    encode_message,
    encode_varint,
)

__all__ = ["SPAN_SCHEMA", "span_to_bytes", "span_from_bytes",
           "TraceWriter", "write_traces", "read_traces", "TraceIOError"]

MAGIC = b"DTRC"
VERSION = 1


class TraceIOError(WireError):
    """Raised on malformed trace streams."""


_ANNOTATION_SCHEMA = MessageSchema("Annotation", [
    FieldSpec(1, "key", FieldType.STRING),
    FieldSpec(2, "value", FieldType.DOUBLE),
])

SPAN_SCHEMA = MessageSchema("Span", [
    FieldSpec(1, "trace_id", FieldType.UINT64),
    FieldSpec(2, "span_id", FieldType.UINT64),
    FieldSpec(3, "parent_id", FieldType.UINT64),   # 0 = root
    FieldSpec(4, "service", FieldType.STRING),
    FieldSpec(5, "method", FieldType.STRING),
    FieldSpec(6, "client_cluster", FieldType.STRING),
    FieldSpec(7, "server_cluster", FieldType.STRING),
    FieldSpec(8, "server_machine", FieldType.STRING),
    FieldSpec(9, "start_time", FieldType.DOUBLE),
    FieldSpec(10, "components", FieldType.DOUBLE, repeated=True),
    FieldSpec(11, "status", FieldType.INT64),
    FieldSpec(12, "request_bytes", FieldType.UINT64),
    FieldSpec(13, "response_bytes", FieldType.UINT64),
    FieldSpec(14, "cpu_cycles", FieldType.DOUBLE),
    FieldSpec(15, "annotations", FieldType.MESSAGE, repeated=True,
              message_schema=_ANNOTATION_SCHEMA),
])


def span_to_bytes(span: Span) -> bytes:
    """Encode one span as a wire-format record."""
    msg = {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id or 0,
        "service": span.service,
        "method": span.method,
        "client_cluster": span.client_cluster,
        "server_cluster": span.server_cluster,
        "server_machine": span.server_machine,
        "start_time": span.start_time,
        "components": [getattr(span.breakdown, c) for c in COMPONENTS],
        "status": span.status.value,
        "request_bytes": span.request_bytes,
        "response_bytes": span.response_bytes,
        "cpu_cycles": span.cpu_cycles,
        "annotations": [
            {"key": k, "value": float(v)}
            for k, v in sorted(span.annotations.items())
        ],
    }
    return encode_message(SPAN_SCHEMA, msg)


def span_from_bytes(data: bytes) -> Span:
    """Inverse of :func:`span_to_bytes`."""
    msg = decode_message(SPAN_SCHEMA, data)
    components = msg.get("components", [])
    if len(components) != len(COMPONENTS):
        raise TraceIOError(
            f"span record has {len(components)} components, "
            f"expected {len(COMPONENTS)}"
        )
    raw_status = msg.get("status", 0)
    try:
        status = StatusCode(raw_status)
    except ValueError as err:
        raise TraceIOError(
            f"span record has unknown status code {raw_status}") from err
    return Span(
        trace_id=msg.get("trace_id", 0),
        span_id=msg.get("span_id", 0),
        parent_id=msg.get("parent_id", 0) or None,
        service=msg.get("service", ""),
        method=msg.get("method", ""),
        client_cluster=msg.get("client_cluster", ""),
        server_cluster=msg.get("server_cluster", ""),
        server_machine=msg.get("server_machine", ""),
        start_time=msg.get("start_time", 0.0),
        breakdown=LatencyBreakdown(**dict(zip(COMPONENTS, components))),
        status=status,
        request_bytes=msg.get("request_bytes", 0),
        response_bytes=msg.get("response_bytes", 0),
        cpu_cycles=msg.get("cpu_cycles", 0.0),
        annotations={a["key"]: a["value"]
                     for a in msg.get("annotations", [])},
    )


class TraceWriter:
    """Incremental trace-file writer with bounded buffering.

    Spans are encoded the moment they are appended and staged in a small
    byte buffer that drains to the file every ``flush_every`` records or
    ``max_buffer_bytes`` encoded bytes, whichever comes first — so a
    long-running study can export its corpus as it runs without ever
    materializing the span list. The byte stream is identical to the
    one-shot :func:`write_traces` path (which is now built on this
    class), and because records are length-prefixed every flushed prefix
    is itself a readable trace file.

    Also a :class:`~repro.rpc.tracing.SpanSink` (``record()``), so a
    collector can :meth:`~repro.obs.dapper.DapperCollector.spool_to` a
    trace file directly.
    """

    def __init__(self, sink: Union[str, BinaryIO], flush_every: int = 512,
                 max_buffer_bytes: int = 1 << 20):
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every!r}")
        if max_buffer_bytes < 1:
            raise ValueError(
                f"max_buffer_bytes must be >= 1, got {max_buffer_bytes!r}")
        self.flush_every = flush_every
        self.max_buffer_bytes = max_buffer_bytes
        self._own = isinstance(sink, str)
        self._f: BinaryIO = open(sink, "wb") if self._own else sink
        self._chunks: List[bytes] = [MAGIC + encode_varint(VERSION)]
        self._buffered_bytes = len(self._chunks[0])
        self._buffered_records = 0
        self.spans_written = 0
        self._closed = False

    def append(self, span: Span) -> None:
        """Encode and stage one span; drains the buffer at thresholds."""
        if self._closed:
            raise TraceIOError("trace writer is closed")
        record = span_to_bytes(span)
        self._chunks.append(encode_varint(len(record)))
        self._chunks.append(record)
        self._buffered_bytes += len(self._chunks[-2]) + len(record)
        self._buffered_records += 1
        self.spans_written += 1
        if (self._buffered_records >= self.flush_every
                or self._buffered_bytes >= self.max_buffer_bytes):
            self.flush()

    def record(self, span: Span) -> bool:
        """:class:`~repro.rpc.tracing.SpanSink` protocol: always kept."""
        self.append(span)
        return True

    def flush(self) -> None:
        """Drain the staged bytes to the underlying file."""
        if self._chunks:
            self._f.write(b"".join(self._chunks))
            self._chunks = []
            self._buffered_bytes = 0
            self._buffered_records = 0
        self._f.flush()

    def close(self) -> None:
        """Flush and (for path-opened sinks) close the file. Idempotent."""
        if self._closed:
            return
        self.flush()
        self._closed = True
        if self._own:
            self._f.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def write_traces(spans: Iterable[Span], sink: Union[str, BinaryIO]) -> int:
    """Write spans as a streaming trace file; returns the span count."""
    with TraceWriter(sink) as writer:
        for span in spans:
            writer.append(span)
        return writer.spans_written


def read_traces(source: Union[str, bytes, BinaryIO]) -> Iterator[Span]:
    """Stream spans back from a trace file/buffer.

    Every malformation raises :class:`TraceIOError` (never a bare
    :class:`~repro.rpc.wire.WireError`) with the record index and byte
    offset, so a corrupt archive names the damage instead of surfacing a
    codec internal.
    """
    if isinstance(source, str):
        with open(source, "rb") as f:
            data = f.read()
    elif isinstance(source, bytes):
        data = source
    else:
        data = source.read()
    if len(data) < 4:
        raise TraceIOError(
            f"not a trace file: {len(data)} bytes, need at least the "
            f"4-byte {MAGIC!r} magic")
    if data[:4] != MAGIC:
        raise TraceIOError(
            f"bad trace magic {data[:4]!r} (expected {MAGIC!r})")
    try:
        version, pos = decode_varint(data, 4)
    except WireError as err:
        raise TraceIOError(f"truncated trace header: {err}") from err
    if version != VERSION:
        raise TraceIOError(
            f"unsupported trace version {version} (this reader supports "
            f"{VERSION})")
    index = 0
    while pos < len(data):
        try:
            length, body_pos = decode_varint(data, pos)
        except WireError as err:
            raise TraceIOError(
                f"truncated length prefix for span record #{index} at "
                f"byte {pos}: {err}") from err
        end = body_pos + length
        if end > len(data):
            raise TraceIOError(
                f"truncated span record #{index} at byte {body_pos}: "
                f"need {length} bytes, file has {len(data) - body_pos}")
        try:
            span = span_from_bytes(data[body_pos:end])
        except TraceIOError as err:
            raise TraceIOError(
                f"corrupt span record #{index} at byte {body_pos}: "
                f"{err}") from err
        except WireError as err:
            raise TraceIOError(
                f"corrupt span record #{index} at byte {body_pos}: "
                f"{err}") from err
        yield span
        index += 1
        pos = end


def load_collector(source: Union[str, bytes, BinaryIO]) -> DapperCollector:
    """Read a trace file into a fresh collector (sampling already applied)."""
    collector = DapperCollector(sampling_rate=1.0)
    for span in read_traces(source):
        collector.spans.append(span)
    return collector
