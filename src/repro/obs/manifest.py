"""Run manifests: one JSON record describing what a run actually did.

A study that only prints tables is unauditable after the fact. The
manifest captures, in one machine-readable file per run: the seed, a
digest of the effective configuration, event/RPC counts, the peak event
heap, simulated time reached, wall-clock per phase, and the telemetry
subsystem's own overhead — everything needed to (a) reproduce the run,
(b) sanity-check that two runs are comparable, and (c) watch harness
performance drift across PRs (together with ``BENCH_*.json``).

Wall time is never read here: harness code that is allowed to measure
real elapsed time (benchmarks, examples, the CLI) *injects* a clock
callable; without one, phases record zero and the manifest stays a
deterministic function of the run.

Schema (``MANIFEST_VERSION`` 1)::

    {
      "schema_version": 1,
      "run_id": "three-tier",
      "seed": 41,
      "config": {...},            # the effective knobs, JSON-safe
      "config_digest": "sha256:...",
      "phases": [{"name": "simulate", "wall_s": 1.23,
                  "telemetry": false}, ...],
      "counts": {"events_fired": ..., "events_cancelled": ...,
                 "spans_recorded": ..., "rpcs_completed": ...},
      "sim_time_s": 23.0,
      "peak_heap": 4096,
      "telemetry_overhead_wall_s": 0.04,  # sum of telemetry phases
      "alerts": [{"t": ..., "slo": ..., "severity": ..., "state": ...,
                  ...}]                   # optional: SLO alert timeline
    }

The ``alerts`` key is optional (runs without an SLO spec omit it), so
schema version 1 manifests stay readable.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TextIO, Union

__all__ = ["MANIFEST_VERSION", "RunManifest", "ManifestBuilder",
           "config_digest", "peak_rss_mb", "write_manifest",
           "read_manifest", "ManifestError"]

MANIFEST_VERSION = 1

_REQUIRED_KEYS = ("schema_version", "run_id", "seed", "config",
                  "config_digest", "phases", "counts", "sim_time_s",
                  "peak_heap", "telemetry_overhead_wall_s")


class ManifestError(ValueError):
    """Raised on malformed or incompatible manifest files."""


def config_digest(config: Dict[str, Any]) -> str:
    """A stable digest of a JSON-safe config mapping."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def peak_rss_mb() -> float:
    """This process's peak resident set size, in MB.

    ``ru_maxrss`` is a high-water mark for the whole process lifetime
    (kilobytes on Linux, bytes on macOS), so per-phase readings are
    monotone: attribute a figure to the value *after* it ran, and run a
    memory-budgeted workload in its own process for a clean number —
    that is how the streaming study's RSS ceiling is enforced in CI.
    Returns 0.0 where the ``resource`` module is unavailable (non-POSIX).
    """
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    scale = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return float(peak) / scale


@dataclass
class RunManifest:
    """The completed record; see the module docstring for the schema."""

    run_id: str
    seed: int
    config: Dict[str, Any] = field(default_factory=dict)
    phases: List[Dict[str, Any]] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)
    sim_time_s: float = 0.0
    peak_heap: int = 0
    telemetry_overhead_wall_s: float = 0.0
    alerts: List[Dict[str, Any]] = field(default_factory=list)
    schema_version: int = MANIFEST_VERSION

    def to_dict(self) -> Dict[str, Any]:
        """The JSON document, digest included."""
        doc = {
            "schema_version": self.schema_version,
            "run_id": self.run_id,
            "seed": self.seed,
            "config": self.config,
            "config_digest": config_digest(self.config),
            "phases": self.phases,
            "counts": self.counts,
            "sim_time_s": self.sim_time_s,
            "peak_heap": self.peak_heap,
            "telemetry_overhead_wall_s": self.telemetry_overhead_wall_s,
        }
        if self.alerts:
            doc["alerts"] = self.alerts
        return doc


class ManifestBuilder:
    """Accumulates a :class:`RunManifest` while a study runs.

    >>> build = ManifestBuilder("demo", seed=7)
    >>> with build.phase("simulate"):
    ...     pass
    >>> manifest = build.finish()
    >>> manifest.phases[0]["name"]
    'simulate'
    """

    def __init__(self, run_id: str, seed: int,
                 wall_clock: Optional[Callable[[], float]] = None):
        self.run_id = run_id
        self.seed = seed
        self._wall_clock = wall_clock
        self._config: Dict[str, Any] = {}
        self._phases: List[Dict[str, Any]] = []
        self._counts: Dict[str, int] = {}
        self._sim_time_s = 0.0
        self._peak_heap = 0
        self._alerts: List[Dict[str, Any]] = []

    @contextmanager
    def phase(self, name: str, telemetry: bool = False):
        """Record a named phase; ``telemetry=True`` marks export/probe
        work so its cost is separable as telemetry self-overhead."""
        start_s = self._wall_clock() if self._wall_clock is not None else 0.0
        try:
            yield
        finally:
            end_s = self._wall_clock() if self._wall_clock is not None else 0.0
            self._phases.append({
                "name": name,
                "wall_s": max(end_s - start_s, 0.0),
                "telemetry": bool(telemetry),
            })

    def set_config(self, **config: Any) -> None:
        """Merge effective configuration knobs (JSON-safe values)."""
        self._config.update(config)

    def add_counts(self, **counts: int) -> None:
        """Merge event/RPC counters."""
        for key, value in counts.items():
            self._counts[key] = int(value)

    def add_alerts(self, events) -> None:
        """Append SLO alert events (anything with ``to_dict``, or dicts)."""
        for event in events:
            self._alerts.append(
                event.to_dict() if hasattr(event, "to_dict") else dict(event))

    def observe_sim(self, sim) -> None:
        """Pull the engine's own accounting off a ``Simulator``."""
        self.add_counts(events_fired=sim.events_fired,
                        events_cancelled=sim.events_cancelled)
        self._sim_time_s = float(sim.now)
        self._peak_heap = int(sim.max_heap_size)

    def finish(self) -> RunManifest:
        """Freeze the manifest."""
        overhead_wall_s = sum(p["wall_s"] for p in self._phases
                              if p["telemetry"])
        return RunManifest(
            run_id=self.run_id,
            seed=self.seed,
            config=dict(self._config),
            phases=list(self._phases),
            counts=dict(self._counts),
            sim_time_s=self._sim_time_s,
            peak_heap=self._peak_heap,
            telemetry_overhead_wall_s=overhead_wall_s,
            alerts=list(self._alerts),
        )


def write_manifest(manifest: RunManifest, sink: Union[str, TextIO]) -> None:
    """Serialize ``manifest`` as indented JSON."""
    own = isinstance(sink, str)
    f = open(sink, "w", encoding="utf-8") if own else sink
    try:
        json.dump(manifest.to_dict(), f, indent=2, sort_keys=True)
        f.write("\n")
    finally:
        if own:
            f.close()


def read_manifest(source: Union[str, TextIO]) -> RunManifest:
    """Load and validate a manifest file; raises :class:`ManifestError`."""
    own = isinstance(source, str)
    f = open(source, "r", encoding="utf-8") if own else source
    try:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as err:
            raise ManifestError(f"manifest is not valid JSON: {err}") from err
    finally:
        if own:
            f.close()
    if not isinstance(doc, dict):
        raise ManifestError(f"manifest must be an object, got {type(doc).__name__}")
    missing = [k for k in _REQUIRED_KEYS if k not in doc]
    if missing:
        raise ManifestError(f"manifest missing keys: {missing}")
    if doc["schema_version"] != MANIFEST_VERSION:
        raise ManifestError(
            f"unsupported manifest schema_version {doc['schema_version']!r} "
            f"(supported: {MANIFEST_VERSION})")
    expected = config_digest(doc["config"])
    if doc["config_digest"] != expected:
        raise ManifestError(
            f"config digest mismatch: file says {doc['config_digest']}, "
            f"config hashes to {expected}")
    return RunManifest(
        run_id=doc["run_id"],
        seed=doc["seed"],
        config=doc["config"],
        phases=doc["phases"],
        counts=doc["counts"],
        sim_time_s=doc["sim_time_s"],
        peak_heap=doc["peak_heap"],
        telemetry_overhead_wall_s=doc["telemetry_overhead_wall_s"],
        alerts=doc.get("alerts", []),
        schema_version=doc["schema_version"],
    )
