"""Wire latency between clusters.

One-way latency between two endpoints decomposes into:

``propagation (geometry) + switching (hops) + jitter + congestion + transfer``

Propagation is speed-of-light-in-fiber over the flattened-globe distance of
:mod:`repro.fleet.topology`, inflated by a path-stretch factor (fiber does
not follow great circles). With the default geometry the worst cross-
continent round trip lands near the paper's ~200 ms WAN RTT ceiling, and
Fig. 19's distance staircase reproduces directly.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.fleet.topology import Cluster, distance_km
from repro.net.congestion import CongestionModel
from repro.net.flows import FlowModel

__all__ = ["PathClass", "NetworkModel", "LIGHT_SPEED_FIBER_KM_S"]

# Speed of light in fiber is ~2/3 of c.
LIGHT_SPEED_FIBER_KM_S = 200_000.0


class PathClass(enum.Enum):
    """Locality class of a client→server path (the Fig. 19 x-axis bands)."""

    SAME_CLUSTER = "same_cluster"
    SAME_DATACENTER = "same_datacenter"
    SAME_REGION = "same_region"
    WAN = "wan"


_BASE_LATENCY_S = {
    # Floor one-way latencies per path class (switching, ToR/aggregation
    # hops), before distance and congestion.
    PathClass.SAME_CLUSTER: 25e-6,
    PathClass.SAME_DATACENTER: 80e-6,
    PathClass.SAME_REGION: 350e-6,
    PathClass.WAN: 600e-6,
}

_JITTER_SIGMA = {
    # Lognormal sigma of multiplicative jitter per class; short paths are
    # relatively noisier (switch queues dominate), long paths are stable.
    PathClass.SAME_CLUSTER: 0.35,
    PathClass.SAME_DATACENTER: 0.30,
    PathClass.SAME_REGION: 0.25,
    PathClass.WAN: 0.08,
}


@dataclass
class NetworkModel:
    """Samples one-way wire latencies between clusters.

    ``path_stretch`` inflates geometric distance into fiber-route distance.
    The default fleet coordinates already encode effective route distances
    (the farthest pair is ~19,300 km, giving a ~194 ms max RTT — the paper's
    ~200 ms WAN ceiling), so the default stretch is 1.0. Congestion models
    can be overridden per class; intra-fabric congestion is rarer but the
    WAN sees deeper queues.
    """

    path_stretch: float = 1.0
    flow: FlowModel = field(default_factory=FlowModel)
    intra_congestion: CongestionModel = field(
        default_factory=lambda: CongestionModel(
            base_probability=0.015, delay_median_s=0.5e-3, delay_sigma=1.4
        )
    )
    wan_congestion: CongestionModel = field(
        default_factory=lambda: CongestionModel(
            base_probability=0.03, delay_median_s=4e-3, delay_sigma=1.7
        )
    )

    # ------------------------------------------------------------------
    @staticmethod
    def classify(src: Cluster, dst: Cluster) -> PathClass:
        """Locality class of the (src, dst) path."""
        if src is dst or src.name == dst.name:
            return PathClass.SAME_CLUSTER
        if src.datacenter is dst.datacenter or src.datacenter.name == dst.datacenter.name:
            return PathClass.SAME_DATACENTER
        if src.region is dst.region or src.region.name == dst.region.name:
            return PathClass.SAME_REGION
        return PathClass.WAN

    def propagation_s(self, src: Cluster, dst: Cluster) -> float:
        """Deterministic one-way propagation + switching latency."""
        cls = self.classify(src, dst)
        base = _BASE_LATENCY_S[cls]
        if cls in (PathClass.SAME_CLUSTER, PathClass.SAME_DATACENTER):
            return base
        dist = distance_km(src.region, dst.region)
        return base + self.path_stretch * dist / LIGHT_SPEED_FIBER_KM_S

    def rtt_s(self, src: Cluster, dst: Cluster) -> float:
        """Deterministic round-trip propagation latency."""
        return 2.0 * self.propagation_s(src, dst)

    # ------------------------------------------------------------------
    def sample_oneway(self, rng: np.random.Generator, src: Cluster, dst: Cluster,
                      size_bytes: float = 0.0, n: int = 1, t: float = 0.0) -> np.ndarray:
        """Draw ``n`` one-way wire latencies for a message of ``size_bytes``."""
        cls = self.classify(src, dst)
        base = self.propagation_s(src, dst) + self.flow.transfer_time_s(size_bytes)
        jitter_factor = rng.lognormal(0.0, _JITTER_SIGMA[cls], size=n)
        congestion = self._congestion_for(cls).sample(
            rng, n, t=t, phase=self._path_phase(src, dst)
        )
        return base * jitter_factor + congestion

    def sample_oneway_one(self, rng: np.random.Generator, src: Cluster,
                          dst: Cluster, size_bytes: float = 0.0,
                          t: float = 0.0) -> float:
        """One scalar one-way latency draw."""
        return float(self.sample_oneway(rng, src, dst, size_bytes, 1, t)[0])

    def oneway_sampler(self, rng: np.random.Generator, src: Cluster,
                       dst: Cluster) -> "OnewaySampler":
        """A buffered scalar sampler for one path (DES hot path)."""
        return OnewaySampler(self, rng, src, dst)

    # ------------------------------------------------------------------
    def _congestion_for(self, cls: PathClass) -> CongestionModel:
        if cls is PathClass.WAN:
            return self.wan_congestion
        return self.intra_congestion

    @staticmethod
    def _path_phase(src: Cluster, dst: Cluster) -> float:
        """Stable per-path phase for congestion modulation.

        Not hash(): string hashing is salted per process, which made the
        phases — and therefore every congestion draw — differ from run
        to run.
        """
        from repro.sim.random import derive_seed
        return (derive_seed(0, "path-phase", src.name, dst.name) % 6283) / 1000.0

    def max_wan_rtt_s(self, clusters) -> float:
        """Largest deterministic RTT over a set of clusters (~200 ms target)."""
        best = 0.0
        clusters = list(clusters)
        for i, a in enumerate(clusters):
            for b in clusters[i + 1:]:
                best = max(best, self.rtt_s(a, b))
        return best


class OnewaySampler:
    """Buffered one-way latency draws for a fixed (src, dst) path.

    Semantically equivalent to :meth:`NetworkModel.sample_oneway_one` but
    ~50x cheaper per draw: jitter and congestion randomness are pulled from
    pre-filled buffers (see :class:`repro.sim.random.BufferedDraws`).
    """

    def __init__(self, model: NetworkModel, rng, src: Cluster, dst: Cluster):
        import math as _math

        from repro.sim.random import BufferedDraws

        cls = model.classify(src, dst)
        self._base = model.propagation_s(src, dst)
        self._flow = model.flow
        self._congestion = model._congestion_for(cls)
        self._phase = model._path_phase(src, dst)
        sigma = _JITTER_SIGMA[cls]
        self._jitter = BufferedDraws(lambda n: rng.lognormal(0.0, sigma, n))
        self._uniform = BufferedDraws(lambda n: rng.random(n))
        cong = self._congestion
        self._cong_draws = BufferedDraws(
            lambda n: rng.lognormal(
                _math.log(cong.delay_median_s), cong.delay_sigma, n
            ),
            size=256,
        )

    def sample(self, size_bytes: float, t: float) -> float:
        """Vectorized draws; see :meth:`Distribution.sample`."""
        lat = (self._base + self._flow.transfer_time_s(size_bytes)) \
            * self._jitter.next()
        if self._uniform.next() < self._congestion.probability(t, self._phase):
            lat += self._cong_draws.next()
        return lat
