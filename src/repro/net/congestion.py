"""Episodic network congestion.

Congestion in a well-engineered private WAN is rare but not absent: the
paper finds that average network latency matches wire propagation (§3.3.5)
while tail network latency exceeds the longest propagation delay (§3.2,
§5.1). We model that with *episodes*: each path class has a small
probability that a packet experiences a congested queue, and congested
delays are lognormally heavy. Episode probability also breathes over time
(per-path sinusoidal modulation) so that congestion clusters in time the
way buffer buildup does, which matters for the diurnal studies (Fig. 18).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["CongestionModel"]


@dataclass
class CongestionModel:
    """Samples additional queueing delay for packets on a path.

    Parameters
    ----------
    base_probability:
        Long-run fraction of packets hitting a congested queue.
    delay_median_s / delay_sigma:
        Lognormal parameters of the congested-queue delay.
    modulation_depth:
        How strongly the episode probability swings over time (0 = constant,
        1 = swings between 0 and 2x base).
    modulation_period_s:
        Period of the swing.
    """

    base_probability: float = 0.02
    delay_median_s: float = 1.5e-3
    delay_sigma: float = 1.6
    modulation_depth: float = 0.8
    modulation_period_s: float = 3600.0

    def probability(self, t: float, phase: float = 0.0) -> float:
        """Episode probability at simulated time ``t`` on a path with ``phase``."""
        swing = 1.0 + self.modulation_depth * math.sin(
            2 * math.pi * t / self.modulation_period_s + phase
        )
        return min(1.0, max(0.0, self.base_probability * swing))

    def sample(self, rng: np.random.Generator, n: int, t: float = 0.0,
               phase: float = 0.0) -> np.ndarray:
        """Draw ``n`` congestion delays (seconds); most are exactly zero."""
        p = self.probability(t, phase)
        hit = rng.random(n) < p
        delays = np.zeros(n)
        n_hit = int(hit.sum())
        if n_hit:
            delays[hit] = rng.lognormal(
                math.log(self.delay_median_s), self.delay_sigma, size=n_hit
            )
        return delays

    def sample_one(self, rng: np.random.Generator, t: float = 0.0,
                   phase: float = 0.0) -> float:
        """One scalar draw."""
        return float(self.sample(rng, 1, t, phase)[0])
