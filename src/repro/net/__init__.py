"""Network substrate: propagation geometry, congestion, and flow transfer.

The paper's network observations that this package must reproduce:

- WAN round trips bounded by speed-of-light geography, max RTT ≈ 200 ms
  (§3.2), with Fig. 19's staircase of same-datacenter → same-country →
  different-continent latencies;
- for the *average* RPC, wire latency ≈ actual propagation (congestion is
  not the common case, §3.3.5), yet tail network latency exceeds the
  longest propagation delay (§5.1: "congestion still impacts the WAN");
- heavy-tailed transfer times from heavy-tailed RPC sizes riding on
  bandwidth-limited flows (elephant/mice head-of-line effects, §2.5).
"""

from repro.net.congestion import CongestionModel
from repro.net.flows import FlowModel
from repro.net.latency import NetworkModel, PathClass

__all__ = ["CongestionModel", "FlowModel", "NetworkModel", "PathClass"]
