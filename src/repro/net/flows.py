"""Flow transfer-time model.

RPC messages ride on network flows; a message's wire time is its
propagation delay plus a size-dependent transfer component. The paper's
size analysis (§2.5) shows messages from 64 B cache lines to multi-MB
tails; for the small majority the transfer term is negligible, while for
the elephant tail it dominates — which is what creates elephant/mouse
head-of-line effects.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FlowModel", "MTU_BYTES"]

MTU_BYTES = 1500


@dataclass
class FlowModel:
    """Converts a message size into a transfer time.

    ``effective_gbps`` is the per-flow goodput (well below link speed:
    congestion control, competing flows). ``per_packet_overhead_s`` covers
    per-MTU framing and interrupt costs.
    """

    effective_gbps: float = 8.0
    per_packet_overhead_s: float = 0.4e-6

    def packets(self, size_bytes: float) -> int:
        """Number of MTU-sized packets needed for a message."""
        if size_bytes <= 0:
            return 1
        return int(-(-size_bytes // MTU_BYTES))  # ceil division

    def transfer_time_s(self, size_bytes: float) -> float:
        """Serialization + per-packet time for a message of ``size_bytes``."""
        if size_bytes < 0:
            raise ValueError(f"negative message size {size_bytes!r}")
        bits = size_bytes * 8.0
        serialization = bits / (self.effective_gbps * 1e9)
        return serialization + self.packets(size_bytes) * self.per_packet_overhead_s

    def fits_in_one_mtu(self, size_bytes: float) -> bool:
        """Whether a message fits in a single MTU (Zerializer-style offload
        eligibility, §2.5)."""
        return 0 <= size_bytes <= MTU_BYTES
