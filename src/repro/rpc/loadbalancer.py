"""Load-balancing policies.

The paper's fleet balances RPCs at two levels (§4.3): a cluster-level
balancer that is *network-latency-aware* (CPU balance across clusters is
explicitly not a goal, which is why Fig. 22's solid lines are so spread
out) and an intra-cluster balancer that spreads load across machines much
more tightly (the dashed lines). This module provides both levels as
pluggable policies so the Fig. 22 study and the LB ablation bench can swap
them.

Policies are generic over *targets*: anything with a ``load()`` callable
(machines expose queue pressure; clusters expose aggregate utilization).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Generic, List, Optional, Sequence, TypeVar

import numpy as np

__all__ = [
    "Policy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "WeightedLatencyPolicy",
    "pick_cluster_latency_aware",
]

T = TypeVar("T")


class Policy(Generic[T]):
    """Interface: choose one target out of a non-empty sequence."""

    name = "abstract"

    def pick(self, targets: Sequence[T], rng: np.random.Generator) -> T:
        """Choose one target; see :meth:`Policy.pick`."""
        raise NotImplementedError


class RandomPolicy(Policy[T]):
    """Uniform random assignment — the no-information baseline."""

    name = "random"

    def pick(self, targets: Sequence[T], rng: np.random.Generator) -> T:
        """Choose one target; see :meth:`Policy.pick`."""
        if not targets:
            raise ValueError("no targets")
        return targets[int(rng.integers(len(targets)))]


class RoundRobinPolicy(Policy[T]):
    """Cycle through targets; even in counts, blind to cost variance."""

    name = "round_robin"

    def __init__(self) -> None:
        self._counter = itertools.count()

    def pick(self, targets: Sequence[T], rng: np.random.Generator) -> T:
        """Choose one target; see :meth:`Policy.pick`."""
        if not targets:
            raise ValueError("no targets")
        return targets[next(self._counter) % len(targets)]


class LeastLoadedPolicy(Policy[T]):
    """Power-of-d-choices by instantaneous load.

    ``load_of`` extracts a load figure from a target (defaults to calling
    ``target.load()``); d=2 gives most of the benefit at minimal probing
    cost, the standard result the paper's discussion of better intra-cluster
    balancing leans on.
    """

    name = "least_loaded"

    def __init__(self, d: int = 2,
                 load_of: Optional[Callable[[T], float]] = None):
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d!r}")
        self.d = d
        self.load_of = load_of or (lambda t: t.load())
        self._uniform = None  # lazy BufferedDraws over the first rng seen

    def pick(self, targets: Sequence[T], rng: np.random.Generator) -> T:
        """Choose one target; see :meth:`Policy.pick`."""
        if not targets:
            raise ValueError("no targets")
        if self._uniform is None:
            from repro.sim.random import BufferedDraws

            self._uniform = BufferedDraws(lambda n: rng.random(n), size=2048)
        n = len(targets)
        k = min(self.d, n)
        best = None
        best_load = None
        seen = set()
        for _ in range(k):
            i = int(self._uniform.next() * n)
            if i in seen:
                continue
            seen.add(i)
            load = self.load_of(targets[i])
            if best is None or load < best_load:
                best = targets[i]
                best_load = load
        return best


class WeightedLatencyPolicy(Policy[T]):
    """Prefer closer targets, weighted by inverse latency.

    This models the paper's cluster-level balancer: network latency is the
    input, server CPU is not. ``latency_of(target)`` supplies the distance
    measure; weights fall off as ``1 / (latency + floor)^power``.
    """

    name = "weighted_latency"

    def __init__(self, latency_of: Callable[[T], float],
                 power: float = 2.0, floor_s: float = 200e-6):
        self.latency_of = latency_of
        self.power = power
        self.floor_s = floor_s

    def pick(self, targets: Sequence[T], rng: np.random.Generator) -> T:
        """Choose one target; see :meth:`Policy.pick`."""
        if not targets:
            raise ValueError("no targets")
        lat = np.array([self.latency_of(t) for t in targets], dtype=float)
        weights = 1.0 / np.power(lat + self.floor_s, self.power)
        weights /= weights.sum()
        return targets[int(rng.choice(len(targets), p=weights))]


def pick_cluster_latency_aware(
    clusters: Sequence[T],
    latency_of: Callable[[T], float],
    rng: np.random.Generator,
    power: float = 2.0,
) -> T:
    """Convenience one-shot form of :class:`WeightedLatencyPolicy`."""
    return WeightedLatencyPolicy(latency_of, power=power).pick(clusters, rng)
