"""A TCP socket transport for the RPC framework.

:class:`LoopbackTransport` proves the byte format in-process; this module
carries the *same frames* over real sockets, so the framework serves
actual clients across processes or machines:

- :class:`TcpRpcServer` — a threaded accept loop; each connection is a
  stream of length-prefixed frames handled by a
  :class:`~repro.rpc.framework.RpcServer`;
- :class:`TcpTransport` — the client side, satisfying the same
  ``round_trip(frame) -> frame`` contract as the loopback transport, so a
  :class:`~repro.rpc.framework.Channel` (and generated stubs) work over it
  unchanged.

Stream format: each frame is prefixed with a 4-byte big-endian length.
(The frame itself already carries magic/flags/header/body framing; the
length prefix only delimits the TCP stream.)
"""

from __future__ import annotations

import socket
import struct
import threading
from typing import Optional, Tuple

from repro.rpc.framework import RpcServer

__all__ = ["TcpRpcServer", "TcpTransport", "TransportError",
           "MAX_FRAME_BYTES"]

# Guard against absurd length prefixes from corrupt/malicious peers.
MAX_FRAME_BYTES = 64 * 1024 * 1024
_LEN = struct.Struct(">I")


class TransportError(ConnectionError):
    """Raised on stream-level failures (short reads, oversized frames)."""


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise on EOF."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            raise TransportError(f"peer closed mid-frame ({remaining} bytes short)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> bytes:
    """Read one length-prefixed frame from the stream."""
    (length,) = _LEN.unpack(_recv_exact(sock, 4))
    if length > MAX_FRAME_BYTES:
        raise TransportError(f"frame of {length} bytes exceeds the "
                             f"{MAX_FRAME_BYTES}-byte limit")
    return _recv_exact(sock, length)


def write_frame(sock: socket.socket, frame: bytes) -> None:
    """Write one length-prefixed frame to the stream."""
    if len(frame) > MAX_FRAME_BYTES:
        raise TransportError(f"frame of {len(frame)} bytes exceeds the "
                             f"{MAX_FRAME_BYTES}-byte limit")
    sock.sendall(_LEN.pack(len(frame)) + frame)


class TcpRpcServer:
    """Serves an :class:`RpcServer` over TCP.

    One thread per connection (the in-process server dispatch is
    synchronous); ``serve_in_background()`` returns once the listener is
    accepting, and ``close()`` shuts everything down.
    """

    def __init__(self, rpc_server: RpcServer, host: str = "127.0.0.1",
                 port: int = 0):
        self.rpc_server = rpc_server
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self._threads: list = []
        self._accept_thread: Optional[threading.Thread] = None
        self.connections_accepted = 0

    # ------------------------------------------------------------------
    def serve_in_background(self) -> None:
        """Start the accept loop on a daemon thread."""
        if self._accept_thread is not None:
            raise RuntimeError("server already running")
        self._accept_thread = threading.Thread(target=self._accept_loop,
                                               daemon=True,
                                               name="tcp-rpc-accept")
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self.connections_accepted += 1
            t = threading.Thread(target=self._serve_connection, args=(conn,),
                                 daemon=True, name="tcp-rpc-conn")
            t.start()
            self._threads.append(t)

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            conn.settimeout(5.0)
            while not self._stop.is_set():
                try:
                    request = read_frame(conn)
                except (TransportError, socket.timeout, OSError):
                    return
                try:
                    reply = self.rpc_server.handle_frame(request)
                except Exception:
                    # A frame the dispatcher itself rejects (bad magic,
                    # undecryptable) has no recoverable reply channel:
                    # drop the connection, as real stacks do.
                    return
                try:
                    write_frame(conn, reply)
                except OSError:
                    return

    def close(self) -> None:
        """Release the underlying resources."""
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "TcpRpcServer":
        self.serve_in_background()
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TcpTransport:
    """Client side: one persistent connection, synchronous round trips.

    Satisfies the same contract as
    :class:`~repro.rpc.framework.LoopbackTransport`, so it plugs directly
    into a :class:`~repro.rpc.framework.Channel`.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 5.0):
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout_s)
        self._lock = threading.Lock()
        self.bytes_sent = 0
        self.bytes_received = 0

    def round_trip(self, frame: bytes) -> bytes:
        """Send one frame and return the reply frame."""
        with self._lock:  # one in-flight call per connection
            write_frame(self._sock, frame)
            self.bytes_sent += len(frame) + 4
            reply = read_frame(self._sock)
            self.bytes_received += len(reply) + 4
            return reply

    def close(self) -> None:
        """Release the underlying resources."""
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "TcpTransport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
