"""The RPC stack substrate.

This package implements a Stubby/gRPC-like RPC stack — the system whose
behaviour the paper characterizes — including:

- :mod:`repro.rpc.wire` — a from-scratch protobuf-style wire codec
  (varints, zigzag, tagged fields, length-delimited messages);
- :mod:`repro.rpc.compression` — an LZSS compressor/decompressor (the
  compression stage is the single largest RPC cycle-tax component, Fig. 20);
- :mod:`repro.rpc.crypto` — a ChaCha20 stream cipher for the encryption
  stage;
- :mod:`repro.rpc.message` — request/response envelopes and metadata;
- :mod:`repro.rpc.errors` — gRPC-style status codes and the fleet error
  model behind Fig. 23;
- :mod:`repro.rpc.stack` — the nine-component latency anatomy of Fig. 9 and
  its vectorized sampling model;
- :mod:`repro.rpc.calltree` — nested call-tree generation and traversal
  (Figs. 4–5);
- :mod:`repro.rpc.loadbalancer` — cluster- and machine-level load-balancing
  policies (Fig. 22 and the LB ablations);
- :mod:`repro.rpc.hedging` — hedged requests and cancellation (Fig. 23's
  dominant error class);
- :mod:`repro.rpc.tracing` — the :class:`Span` record and the
  :class:`SpanSink`/:class:`ProfileSink` protocols the DES emits into
  (observability implements them from above, keeping the layer DAG);
- :mod:`repro.rpc.channel` — the discrete-event client/server used by the
  service-specific studies (Figs. 14–19).
"""

from repro.rpc.errors import RpcError, StatusCode
from repro.rpc.message import Request, Response, RpcMetadata
from repro.rpc.stack import COMPONENTS, LatencyBreakdown, StackCostModel
from repro.rpc.tracing import ProfileSink, Span, SpanSink

__all__ = [
    "COMPONENTS",
    "LatencyBreakdown",
    "ProfileSink",
    "Request",
    "Response",
    "RpcError",
    "RpcMetadata",
    "Span",
    "SpanSink",
    "StackCostModel",
    "StatusCode",
]
