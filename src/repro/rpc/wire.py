"""A from-scratch protobuf-style wire codec.

Stubby and gRPC marshal messages with protocol buffers; serialization is
1.2 % of all fleet CPU cycles in the paper (Fig. 20b), which motivates the
serialization-offload literature the paper engages (Zerializer, protobuf
accelerators). To ground that stage in real code, this module implements
the protobuf wire format:

- base-128 **varints** and **zigzag** encoding for signed integers,
- **tagged fields** (field number × wire type),
- wire types 0 (varint), 1 (64-bit), 2 (length-delimited), 5 (32-bit),
- schema-driven encode/decode of ``dict`` messages via
  :class:`MessageSchema`, including nested messages and repeated fields.

The codec is deliberately compatible with protobuf's encoding rules for the
supported types, so the unit tests cross-check against byte strings
produced by protoc-generated fixtures.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "WireType",
    "FieldType",
    "FieldSpec",
    "MessageSchema",
    "WireError",
    "encode_varint",
    "decode_varint",
    "encode_zigzag",
    "decode_zigzag",
    "encode_message",
    "decode_message",
]


class WireError(ValueError):
    """Raised on malformed wire data or schema violations."""


class WireType(enum.IntEnum):
    """Protobuf wire types supported by the codec."""
    VARINT = 0
    FIXED64 = 1
    LENGTH_DELIMITED = 2
    FIXED32 = 5


class FieldType(enum.Enum):
    """Logical field types supported by the codec."""

    INT64 = "int64"       # varint, two's complement (negative = 10 bytes)
    UINT64 = "uint64"     # varint
    SINT64 = "sint64"     # zigzag varint
    BOOL = "bool"         # varint 0/1
    DOUBLE = "double"     # fixed64
    FLOAT = "float"       # fixed32
    FIXED64 = "fixed64"   # fixed64 unsigned
    FIXED32 = "fixed32"   # fixed32 unsigned
    STRING = "string"     # length-delimited UTF-8
    BYTES = "bytes"       # length-delimited
    MESSAGE = "message"   # length-delimited nested message


_WIRE_TYPE_OF = {
    FieldType.INT64: WireType.VARINT,
    FieldType.UINT64: WireType.VARINT,
    FieldType.SINT64: WireType.VARINT,
    FieldType.BOOL: WireType.VARINT,
    FieldType.DOUBLE: WireType.FIXED64,
    FieldType.FLOAT: WireType.FIXED32,
    FieldType.FIXED64: WireType.FIXED64,
    FieldType.FIXED32: WireType.FIXED32,
    FieldType.STRING: WireType.LENGTH_DELIMITED,
    FieldType.BYTES: WireType.LENGTH_DELIMITED,
    FieldType.MESSAGE: WireType.LENGTH_DELIMITED,
}

_MAX_VARINT_BYTES = 10
_U64_MASK = (1 << 64) - 1


# ----------------------------------------------------------------------
# Varints
# ----------------------------------------------------------------------
def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer (< 2**64) as a base-128 varint."""
    if value < 0:
        raise WireError(f"varint requires a non-negative value, got {value!r}")
    if value > _U64_MASK:
        raise WireError(f"varint overflow: {value!r} does not fit in 64 bits")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint at ``offset``; returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise WireError("truncated varint")
        if pos - offset >= _MAX_VARINT_BYTES:
            raise WireError("varint longer than 10 bytes")
        byte = data[pos]
        result |= (byte & 0x7F) << shift
        pos += 1
        if not byte & 0x80:
            if result > _U64_MASK:
                raise WireError("varint overflows 64 bits")
            return result, pos
        shift += 7


def encode_zigzag(value: int) -> int:
    """Map a signed 64-bit integer to an unsigned zigzag value."""
    if not -(1 << 63) <= value < (1 << 63):
        raise WireError(f"zigzag value out of int64 range: {value!r}")
    return ((value << 1) ^ (value >> 63)) & _U64_MASK


def decode_zigzag(value: int) -> int:
    """Inverse of :func:`encode_zigzag`."""
    return (value >> 1) ^ -(value & 1)


def _encode_tag(field_number: int, wire_type: WireType) -> bytes:
    if field_number < 1 or field_number > (1 << 29) - 1:
        raise WireError(f"field number out of range: {field_number!r}")
    return encode_varint((field_number << 3) | int(wire_type))


def _decode_tag(data: bytes, offset: int) -> Tuple[int, WireType, int]:
    key, pos = decode_varint(data, offset)
    field_number = key >> 3
    try:
        wire_type = WireType(key & 0x7)
    except ValueError as exc:
        raise WireError(f"unsupported wire type {key & 0x7}") from exc
    if field_number < 1:
        raise WireError("field number 0 is reserved")
    return field_number, wire_type, pos


# ----------------------------------------------------------------------
# Schemas
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FieldSpec:
    """One field of a message schema."""

    number: int
    name: str
    type: FieldType
    repeated: bool = False
    message_schema: Optional["MessageSchema"] = None  # for FieldType.MESSAGE

    def __post_init__(self) -> None:
        if self.type is FieldType.MESSAGE and self.message_schema is None:
            raise WireError(f"field {self.name!r}: MESSAGE type needs message_schema")

    @property
    def wire_type(self) -> WireType:
        """The wire type implied by the field type."""
        return _WIRE_TYPE_OF[self.type]


class MessageSchema:
    """An ordered collection of :class:`FieldSpec` describing one message."""

    def __init__(self, name: str, fields: List[FieldSpec]):
        self.name = name
        self.fields = list(fields)
        self.by_number: Dict[int, FieldSpec] = {}
        self.by_name: Dict[str, FieldSpec] = {}
        for f in self.fields:
            if f.number in self.by_number:
                raise WireError(f"duplicate field number {f.number} in {name!r}")
            if f.name in self.by_name:
                raise WireError(f"duplicate field name {f.name!r} in {name!r}")
            self.by_number[f.number] = f
            self.by_name[f.name] = f

    def __repr__(self) -> str:
        return f"MessageSchema({self.name!r}, {len(self.fields)} fields)"


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _encode_scalar(spec: FieldSpec, value: Any) -> bytes:
    t = spec.type
    if t is FieldType.INT64:
        v = int(value)
        if v < 0:
            v &= _U64_MASK  # two's complement, matching protobuf int64
        return encode_varint(v)
    if t is FieldType.UINT64:
        return encode_varint(int(value))
    if t is FieldType.SINT64:
        return encode_varint(encode_zigzag(int(value)))
    if t is FieldType.BOOL:
        return encode_varint(1 if value else 0)
    if t is FieldType.DOUBLE:
        return struct.pack("<d", float(value))
    if t is FieldType.FLOAT:
        return struct.pack("<f", float(value))
    if t is FieldType.FIXED64:
        return struct.pack("<Q", int(value))
    if t is FieldType.FIXED32:
        return struct.pack("<I", int(value))
    if t is FieldType.STRING:
        payload = str(value).encode("utf-8")
        return encode_varint(len(payload)) + payload
    if t is FieldType.BYTES:
        payload = bytes(value)
        return encode_varint(len(payload)) + payload
    if t is FieldType.MESSAGE:
        payload = encode_message(spec.message_schema, value)
        return encode_varint(len(payload)) + payload
    raise WireError(f"unsupported field type {t!r}")  # pragma: no cover


def encode_message(schema: MessageSchema, message: Dict[str, Any]) -> bytes:
    """Encode a ``dict`` message against ``schema``.

    Unknown keys are rejected (the schema is the contract); missing keys are
    simply omitted, as in proto3.
    """
    unknown = set(message) - set(schema.by_name)
    if unknown:
        raise WireError(f"unknown fields for {schema.name!r}: {sorted(unknown)}")
    out = bytearray()
    for spec in schema.fields:
        if spec.name not in message:
            continue
        value = message[spec.name]
        if spec.repeated:
            if not isinstance(value, (list, tuple)):
                raise WireError(f"field {spec.name!r} is repeated; expected a list")
            for item in value:
                out += _encode_tag(spec.number, spec.wire_type)
                out += _encode_scalar(spec, item)
        else:
            out += _encode_tag(spec.number, spec.wire_type)
            out += _encode_scalar(spec, value)
    return bytes(out)


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def _decode_scalar(spec: FieldSpec, data: bytes, offset: int) -> Tuple[Any, int]:
    t = spec.type
    if spec.wire_type is WireType.VARINT:
        raw, pos = decode_varint(data, offset)
        if t is FieldType.INT64:
            return (raw - (1 << 64)) if raw >= (1 << 63) else raw, pos
        if t is FieldType.UINT64:
            return raw, pos
        if t is FieldType.SINT64:
            return decode_zigzag(raw), pos
        if t is FieldType.BOOL:
            return bool(raw), pos
    if spec.wire_type is WireType.FIXED64:
        if offset + 8 > len(data):
            raise WireError("truncated fixed64")
        chunk = data[offset:offset + 8]
        if t is FieldType.DOUBLE:
            return struct.unpack("<d", chunk)[0], offset + 8
        return struct.unpack("<Q", chunk)[0], offset + 8
    if spec.wire_type is WireType.FIXED32:
        if offset + 4 > len(data):
            raise WireError("truncated fixed32")
        chunk = data[offset:offset + 4]
        if t is FieldType.FLOAT:
            return struct.unpack("<f", chunk)[0], offset + 4
        return struct.unpack("<I", chunk)[0], offset + 4
    if spec.wire_type is WireType.LENGTH_DELIMITED:
        length, pos = decode_varint(data, offset)
        end = pos + length
        if end > len(data):
            raise WireError("truncated length-delimited field")
        payload = data[pos:end]
        if t is FieldType.STRING:
            return payload.decode("utf-8"), end
        if t is FieldType.BYTES:
            return payload, end
        if t is FieldType.MESSAGE:
            return decode_message(spec.message_schema, payload), end
    raise WireError(f"cannot decode field type {t!r}")  # pragma: no cover


def _skip_field(wire_type: WireType, data: bytes, offset: int) -> int:
    """Skip an unknown field, returning the next offset."""
    if wire_type is WireType.VARINT:
        _, pos = decode_varint(data, offset)
        return pos
    if wire_type is WireType.FIXED64:
        if offset + 8 > len(data):
            raise WireError("truncated fixed64")
        return offset + 8
    if wire_type is WireType.FIXED32:
        if offset + 4 > len(data):
            raise WireError("truncated fixed32")
        return offset + 4
    if wire_type is WireType.LENGTH_DELIMITED:
        length, pos = decode_varint(data, offset)
        if pos + length > len(data):
            raise WireError("truncated length-delimited field")
        return pos + length
    raise WireError(f"cannot skip wire type {wire_type!r}")  # pragma: no cover


def decode_message(schema: MessageSchema, data: bytes) -> Dict[str, Any]:
    """Decode ``data`` against ``schema`` into a ``dict``.

    Unknown field numbers are skipped (forward compatibility, as in
    protobuf); for repeated fields, later occurrences append; for singular
    fields, the last occurrence wins (proto3 semantics).
    """
    out: Dict[str, Any] = {}
    offset = 0
    while offset < len(data):
        field_number, wire_type, offset = _decode_tag(data, offset)
        spec = schema.by_number.get(field_number)
        if spec is None:
            offset = _skip_field(wire_type, data, offset)
            continue
        if wire_type is not spec.wire_type:
            raise WireError(
                f"field {spec.name!r}: wire type {wire_type!r} does not match "
                f"schema type {spec.wire_type!r}"
            )
        value, offset = _decode_scalar(spec, data, offset)
        if spec.repeated:
            out.setdefault(spec.name, []).append(value)
        else:
            out[spec.name] = value
    return out


def iter_fields(data: bytes) -> Iterator[Tuple[int, WireType, Union[int, bytes]]]:
    """Schema-less walk over a wire message (tooling/debugging aid)."""
    offset = 0
    while offset < len(data):
        field_number, wire_type, offset = _decode_tag(data, offset)
        if wire_type is WireType.VARINT:
            value, offset = decode_varint(data, offset)
        elif wire_type is WireType.FIXED64:
            value = data[offset:offset + 8]
            offset += 8
        elif wire_type is WireType.FIXED32:
            value = data[offset:offset + 4]
            offset += 4
        else:
            length, pos = decode_varint(data, offset)
            value = data[pos:pos + length]
            offset = pos + length
        yield field_number, wire_type, value
