"""Nested RPC call trees (Figs. 4–5).

A root RPC fans out into child RPCs, children fan out further, and the
resulting trees are *wider than deep*: the paper finds median descendant
counts around 13 with P99 tails beyond 1155, while ancestor counts (depth)
stay below ~10 at P99 for half the methods.

This module is workload-agnostic: the generator takes two callbacks — a
per-method fanout distribution and a child-method chooser — and the
catalog (:mod:`repro.workloads.catalog`) supplies layer-structured
implementations (front-ends call mid-tiers, mid-tiers call storage, storage
calls disk servers) that produce the wide-not-deep shape naturally through
partition/aggregate fanout rather than by construction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.sim.distributions import Distribution

__all__ = ["CallNode", "CallTree", "CallTreeGenerator", "TreeShapeStats",
           "collect_shape_samples"]


@dataclass
class CallNode:
    """One RPC invocation within a tree."""

    method_id: int
    depth: int
    children: List["CallNode"] = field(default_factory=list)
    _subtree_size: Optional[int] = None

    @property
    def descendants(self) -> int:
        """Number of RPCs (transitively) issued below this invocation."""
        return self.subtree_size() - 1

    def subtree_size(self) -> int:
        """Node count of this subtree (cached)."""
        if self._subtree_size is None:
            self._subtree_size = 1 + sum(c.subtree_size() for c in self.children)
        return self._subtree_size

    @property
    def ancestors(self) -> int:
        """Return distance to the root RPC (the root has 0 ancestors)."""
        return self.depth

    def walk(self):
        """Yield every node, pre-order, iteratively (trees can be huge)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)


@dataclass
class CallTree:
    """A complete trace: the root invocation plus derived counters."""

    root: CallNode
    truncated: bool = False  # hit the node budget while generating

    @property
    def size(self) -> int:
        """Total node count."""
        return self.root.subtree_size()

    @property
    def max_depth(self) -> int:
        """Deepest node depth in the tree."""
        return max(node.depth for node in self.root.walk())

    def nodes(self) -> List[CallNode]:
        """All nodes as a list."""
        return list(self.root.walk())


class CallTreeGenerator:
    """Generates call trees from per-method fanout and routing callbacks.

    Parameters
    ----------
    fanout_for:
        ``method_id -> Distribution`` over the number of direct children of
        one invocation of that method.
    children_of:
        ``(method_id, rng, k) -> sequence of k child method ids``.
    max_nodes:
        Hard budget per tree; generation stops (marking the tree truncated)
        once reached. Hyperscale traces run to ~10K spans (Huye et al.
        comparison in §2.4), so the default leaves the paper's P99 tails
        reachable while bounding memory.
    max_depth:
        Nodes at this depth get no children (deadline/stack-depth limits).
    """

    def __init__(
        self,
        fanout_for: Callable[[int], Distribution],
        children_of: Callable[[int, np.random.Generator, int], Sequence[int]],
        max_nodes: int = 20000,
        max_depth: int = 24,
    ):
        if max_nodes < 1:
            raise ValueError(f"max_nodes must be >= 1, got {max_nodes!r}")
        if max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {max_depth!r}")
        self.fanout_for = fanout_for
        self.children_of = children_of
        self.max_nodes = max_nodes
        self.max_depth = max_depth

    def generate(self, root_method: int, rng: np.random.Generator) -> CallTree:
        """Generate one call tree from a root method."""
        root = CallNode(method_id=root_method, depth=0)
        budget = self.max_nodes - 1
        truncated = False
        # Breadth-first expansion keeps trees wide under a node budget, the
        # same bias real partition/aggregate fanout exhibits.
        frontier = deque([root])
        while frontier and budget > 0:
            node = frontier.popleft()
            if node.depth >= self.max_depth:
                continue
            k = int(self.fanout_for(node.method_id).sample_one(rng))
            if k <= 0:
                continue
            if k > budget:
                k = budget
                truncated = True
            child_methods = self.children_of(node.method_id, rng, k)
            for m in child_methods:
                child = CallNode(method_id=int(m), depth=node.depth + 1)
                node.children.append(child)
                frontier.append(child)
            budget -= len(node.children)
        if frontier and any(n.depth < self.max_depth for n in frontier):
            # Budget exhausted with expandable nodes left.
            truncated = truncated or budget <= 0
        return CallTree(root=root, truncated=truncated)


@dataclass
class TreeShapeStats:
    """Per-method samples of descendant and ancestor counts."""

    descendants: Dict[int, List[int]] = field(default_factory=dict)
    ancestors: Dict[int, List[int]] = field(default_factory=dict)

    def add_tree(self, tree: CallTree) -> None:
        """Accumulate one tree's shape samples."""
        for node in tree.root.walk():
            self.descendants.setdefault(node.method_id, []).append(node.descendants)
            self.ancestors.setdefault(node.method_id, []).append(node.ancestors)

    def methods(self) -> List[int]:
        """Method ids with at least one observed invocation."""
        return sorted(self.descendants)

    def filter_min_samples(self, min_samples: int) -> "TreeShapeStats":
        """Keep methods with at least ``min_samples`` observations (the
        paper's ≥100-samples-per-method rule, applied at whatever scale the
        caller ran)."""
        out = TreeShapeStats()
        for m, vals in self.descendants.items():
            if len(vals) >= min_samples:
                out.descendants[m] = vals
                out.ancestors[m] = self.ancestors[m]
        return out


def collect_shape_samples(
    generator: CallTreeGenerator,
    root_methods: Sequence[int],
    rng: np.random.Generator,
) -> TreeShapeStats:
    """Generate one tree per entry of ``root_methods`` and pool the shapes."""
    stats = TreeShapeStats()
    for root in root_methods:
        stats.add_tree(generator.generate(int(root), rng))
    return stats
