"""Nested RPC call trees (Figs. 4–5).

A root RPC fans out into child RPCs, children fan out further, and the
resulting trees are *wider than deep*: the paper finds median descendant
counts around 13 with P99 tails beyond 1155, while ancestor counts (depth)
stay below ~10 at P99 for half the methods.

This module is workload-agnostic: the generator takes two callbacks — a
per-method fanout distribution and a child-method chooser — and the
catalog (:mod:`repro.workloads.catalog`) supplies layer-structured
implementations (front-ends call mid-tiers, mid-tiers call storage, storage
calls disk servers) that produce the wide-not-deep shape naturally through
partition/aggregate fanout rather than by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.distributions import Distribution

__all__ = ["CallNode", "CallTree", "FlatTree", "FlatForest",
           "CallTreeGenerator", "TreeShapeStats", "TreeShapeAccumulator",
           "collect_flat_samples", "collect_shape_samples"]


@dataclass
class CallNode:
    """One RPC invocation within a tree."""

    method_id: int
    depth: int
    children: List["CallNode"] = field(default_factory=list)
    _subtree_size: Optional[int] = None

    @property
    def descendants(self) -> int:
        """Number of RPCs (transitively) issued below this invocation."""
        return self.subtree_size() - 1

    def subtree_size(self) -> int:
        """Node count of this subtree (cached)."""
        if self._subtree_size is None:
            self._subtree_size = 1 + sum(c.subtree_size() for c in self.children)
        return self._subtree_size

    @property
    def ancestors(self) -> int:
        """Return distance to the root RPC (the root has 0 ancestors)."""
        return self.depth

    def walk(self):
        """Yield every node, pre-order, iteratively (trees can be huge)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)


@dataclass
class CallTree:
    """A complete trace: the root invocation plus derived counters."""

    root: CallNode
    truncated: bool = False  # hit the node budget while generating

    @property
    def size(self) -> int:
        """Total node count."""
        return self.root.subtree_size()

    @property
    def max_depth(self) -> int:
        """Deepest node depth in the tree."""
        return max(node.depth for node in self.root.walk())

    def nodes(self) -> List[CallNode]:
        """All nodes as a list."""
        return list(self.root.walk())


@dataclass
class FlatTree:
    """A call tree as parallel arrays (one entry per node, BFS order).

    The array form is what the vectorized generator emits: no per-node
    Python objects, and every derived statistic (subtree sizes, depths)
    computes with bulk numpy operations. Index 0 is the root; levels are
    contiguous, so ``depths`` is non-decreasing and ``parents`` is sorted
    (children of lower-index parents are emitted first), which lets
    children of node ``i`` be found with one ``searchsorted``.
    """

    method_ids: np.ndarray   # int64 method id per node
    parents: np.ndarray      # int64 parent node index; -1 for the root
    depths: np.ndarray       # int64 ancestors count per node
    truncated: bool = False  # hit the node budget while generating

    @property
    def size(self) -> int:
        """Total node count."""
        return int(self.method_ids.size)

    @property
    def max_depth(self) -> int:
        """Deepest node depth in the tree."""
        return int(self.depths[-1]) if self.depths.size else 0

    def level_slices(self) -> List[slice]:
        """One slice per BFS level (depths are sorted by construction)."""
        bounds = np.searchsorted(self.depths,
                                 np.arange(self.max_depth + 2))
        return [slice(int(bounds[d]), int(bounds[d + 1]))
                for d in range(self.max_depth + 1)]

    def subtree_sizes(self) -> np.ndarray:
        """Node count of each node's subtree, computed level by level."""
        sizes = np.ones(self.size, dtype=np.int64)
        for sl in reversed(self.level_slices()[1:]):
            np.add.at(sizes, self.parents[sl], sizes[sl])
        return sizes

    def descendants(self) -> np.ndarray:
        """Per-node transitive child counts (``subtree_sizes() - 1``)."""
        return self.subtree_sizes() - 1

    def children_slice(self, index: int) -> slice:
        """The contiguous block of node ``index``'s direct children."""
        lo, hi = np.searchsorted(self.parents, [index, index + 1])
        return slice(int(lo), int(hi))

    def to_call_tree(self) -> CallTree:
        """Materialize the linked :class:`CallNode` representation."""
        nodes = [CallNode(method_id=int(m), depth=int(d))
                 for m, d in zip(self.method_ids, self.depths)]
        for i in range(1, self.size):
            nodes[self.parents[i]].children.append(nodes[i])
        return CallTree(root=nodes[0], truncated=self.truncated)


@dataclass
class FlatForest:
    """A whole shard of call trees as parallel arrays, level-major order.

    Where :class:`FlatTree` packs one tree, a forest packs *many*: nodes
    are ordered by BFS level across the entire shard (all roots first,
    then every tree's level-1 nodes, and so on), so one frontier loop —
    and one batched RNG draw per level — generates hundreds of trees at
    once. ``depths`` is therefore non-decreasing and ``parents`` is
    sorted exactly as in :class:`FlatTree`, so the same level-order bulk
    passes (subtree sizes, critical-path composition) apply unchanged;
    ``tree_ids`` says which tree each node belongs to.

    This is the unit the out-of-core study pipeline spills to columnar
    segment files and folds back as memory-mapped views — see
    :mod:`repro.core.shardstore`.
    """

    method_ids: np.ndarray   # int64 method id per node
    parents: np.ndarray      # int64 forest-local parent index; -1 for roots
    depths: np.ndarray       # int64 ancestors count per node
    tree_ids: np.ndarray     # int64 tree index within the forest per node
    n_trees: int
    truncated: np.ndarray    # bool per tree: hit its node budget

    @property
    def size(self) -> int:
        """Total node count across all trees."""
        return int(self.method_ids.size)

    @property
    def max_depth(self) -> int:
        """Deepest node depth anywhere in the forest."""
        return int(self.depths[-1]) if self.depths.size else 0

    def level_slices(self) -> List[slice]:
        """One slice per BFS level (depths are sorted by construction)."""
        bounds = np.searchsorted(self.depths,
                                 np.arange(self.max_depth + 2))
        return [slice(int(bounds[d]), int(bounds[d + 1]))
                for d in range(self.max_depth + 1)]

    def subtree_sizes(self) -> np.ndarray:
        """Node count of each node's subtree, computed level by level."""
        sizes = np.ones(self.size, dtype=np.int64)
        for sl in reversed(self.level_slices()[1:]):
            np.add.at(sizes, self.parents[sl], sizes[sl])
        return sizes

    def descendants(self) -> np.ndarray:
        """Per-node transitive child counts (``subtree_sizes() - 1``)."""
        return self.subtree_sizes() - 1

    def tree_sizes(self) -> np.ndarray:
        """Node count per tree."""
        return np.bincount(self.tree_ids, minlength=self.n_trees)

    def tree(self, index: int) -> FlatTree:
        """Extract one tree as a standalone :class:`FlatTree`.

        The forest's level-major order restricted to one tree *is* that
        tree's BFS order, so extraction only remaps parent indices.
        """
        if not 0 <= index < self.n_trees:
            raise IndexError(f"tree {index} not in forest of {self.n_trees}")
        idx = np.flatnonzero(self.tree_ids == index)
        parents = self.parents[idx]
        local = np.full(parents.shape, -1, dtype=np.int64)
        nonroot = parents >= 0
        local[nonroot] = np.searchsorted(idx, parents[nonroot])
        return FlatTree(method_ids=self.method_ids[idx].copy(),
                        parents=local,
                        depths=self.depths[idx].copy(),
                        truncated=bool(self.truncated[index]))


class CallTreeGenerator:
    """Generates call trees from per-method fanout and routing callbacks.

    Parameters
    ----------
    fanout_for:
        ``method_id -> Distribution`` over the number of direct children of
        one invocation of that method.
    children_of:
        ``(method_id, rng, k) -> sequence of k child method ids``.
    max_nodes:
        Hard budget per tree; generation stops (marking the tree truncated)
        once reached. Hyperscale traces run to ~10K spans (Huye et al.
        comparison in §2.4), so the default leaves the paper's P99 tails
        reachable while bounding memory.
    max_depth:
        Nodes at this depth get no children (deadline/stack-depth limits).
    children_batch:
        Optional vectorized router: ``(parent_method_per_slot, rng) ->
        child method ids``, one entry per child slot. Without it the
        scalar ``children_of`` is called once per parent, which keeps any
        existing callback pair working but forgoes most of the speedup.
    fanout_batch:
        Optional vectorized fanout sampler: ``(method_per_node, rng) ->
        child counts``. Without it, fanouts are drawn with one
        ``Distribution.sample`` per *distinct* method in the frontier.

    Generation is breadth-first and batched: each level draws all its
    fanouts grouped by method (one vectorized ``Distribution.sample`` per
    distinct method) and all its children in one ``children_batch`` call,
    so the per-node Python cost is O(1) amortized instead of one numpy
    dispatch per child. Draw *order* therefore differs from the historic
    node-at-a-time loop; draw *distributions* do not.
    """

    def __init__(
        self,
        fanout_for: Callable[[int], Distribution],
        children_of: Callable[[int, np.random.Generator, int], Sequence[int]],
        max_nodes: int = 20000,
        max_depth: int = 24,
        children_batch: Optional[
            Callable[[np.ndarray, np.random.Generator], np.ndarray]] = None,
        fanout_batch: Optional[
            Callable[[np.ndarray, np.random.Generator], np.ndarray]] = None,
    ):
        if max_nodes < 1:
            raise ValueError(f"max_nodes must be >= 1, got {max_nodes!r}")
        if max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {max_depth!r}")
        self.fanout_for = fanout_for
        self.children_of = children_of
        self.children_batch = children_batch
        self.fanout_batch = fanout_batch
        self.max_nodes = max_nodes
        self.max_depth = max_depth
        self.trees_generated = 0

    # ------------------------------------------------------------------
    def _fanouts(self, methods: np.ndarray,
                 rng: np.random.Generator) -> np.ndarray:
        """Fanout draws for one frontier, grouped by distinct method."""
        if self.fanout_batch is not None:
            draws = np.asarray(self.fanout_batch(methods, rng)).astype(np.int64)
        else:
            uniq, inverse = np.unique(methods, return_inverse=True)
            draws = np.empty(methods.size, dtype=np.int64)
            for u, mid in enumerate(uniq):
                mask = inverse == u
                k = self.fanout_for(int(mid)).sample(rng, int(mask.sum()))
                draws[mask] = np.asarray(k).astype(np.int64)
        return np.maximum(draws, 0)

    def _children(self, parent_methods: np.ndarray,
                  rng: np.random.Generator) -> np.ndarray:
        """Child method ids per slot, vectorized when a batch router exists."""
        if self.children_batch is not None:
            out = np.asarray(self.children_batch(parent_methods, rng),
                             dtype=np.int64)
            if out.shape != parent_methods.shape:
                raise ValueError(
                    f"children_batch returned {out.shape}, "
                    f"expected {parent_methods.shape}"
                )
            return out
        out = np.empty(parent_methods.size, dtype=np.int64)
        i = 0
        while i < parent_methods.size:
            j = i
            mid = parent_methods[i]
            while j < parent_methods.size and parent_methods[j] == mid:
                j += 1
            out[i:j] = np.asarray(
                self.children_of(int(mid), rng, j - i), dtype=np.int64
            )
            i = j
        return out

    def generate_flat(self, root_method: int,
                      rng: np.random.Generator) -> FlatTree:
        """Generate one call tree as a :class:`FlatTree` (the fast path)."""
        cap = self.max_nodes
        method_ids = np.empty(cap, dtype=np.int64)
        parents = np.empty(cap, dtype=np.int64)
        depths = np.empty(cap, dtype=np.int64)
        method_ids[0] = int(root_method)
        parents[0] = -1
        depths[0] = 0
        n = 1
        truncated = False
        level = slice(0, 1)
        depth = 0
        # Breadth-first expansion keeps trees wide under a node budget, the
        # same bias real partition/aggregate fanout exhibits.
        while level.start < level.stop and n < cap and depth < self.max_depth:
            ks = self._fanouts(method_ids[level], rng)
            total = int(ks.sum())
            if total == 0:
                break
            budget = cap - n
            if total > budget:
                # FIFO budget semantics: earlier frontier nodes keep their
                # fanout, the node that crosses the budget is clipped, and
                # later nodes get nothing — same as the node-at-a-time loop.
                truncated = True
                started = np.concatenate(([0], np.cumsum(ks)[:-1]))
                ks = np.clip(budget - started, 0, ks)
                total = budget
            parent_per_slot = np.repeat(
                np.arange(level.start, level.stop), ks)
            method_ids[n:n + total] = self._children(
                method_ids[parent_per_slot], rng)
            parents[n:n + total] = parent_per_slot
            depths[n:n + total] = depth + 1
            level = slice(n, n + total)
            n += total
            depth += 1
        if n >= cap and level.start < level.stop and depth < self.max_depth:
            truncated = True  # budget exhausted with expandable nodes left
        self.trees_generated += 1
        return FlatTree(method_ids=method_ids[:n].copy(),
                        parents=parents[:n].copy(),
                        depths=depths[:n].copy(),
                        truncated=truncated)

    def generate_forest_flat(self, root_methods: Sequence[int],
                             rng: np.random.Generator) -> FlatForest:
        """Generate a whole shard of trees in one breadth-first sweep.

        Per-tree generation pays the fixed numpy dispatch cost of a
        frontier expansion once per *level per tree*; at streaming scale
        (10M+ small trees) that fixed cost dominates. Here every tree in
        the shard advances one level per iteration, so the per-level RNG
        draws amortize across hundreds of trees and throughput becomes a
        function of total node count, not tree count.

        The node budget (``max_nodes``) still applies *per tree* with the
        same FIFO semantics as :meth:`generate_flat`: within a tree,
        earlier frontier nodes keep their fanout, the node that crosses
        the budget is clipped, later nodes get nothing. Draw order (and
        therefore the RNG stream) differs from generating the same trees
        one at a time; draw distributions do not.
        """
        roots = np.asarray(root_methods, dtype=np.int64)
        n_trees = int(roots.size)
        truncated = np.zeros(n_trees, dtype=bool)
        if n_trees == 0:
            empty = np.empty(0, dtype=np.int64)
            return FlatForest(method_ids=empty, parents=empty.copy(),
                              depths=empty.copy(), tree_ids=empty.copy(),
                              n_trees=0, truncated=truncated)
        chunks_m = [roots.copy()]
        chunks_p = [np.full(n_trees, -1, dtype=np.int64)]
        chunks_d = [np.zeros(n_trees, dtype=np.int64)]
        chunks_t = [np.arange(n_trees, dtype=np.int64)]
        tree_counts = np.ones(n_trees, dtype=np.int64)  # nodes so far / tree
        level_methods = chunks_m[0]
        level_trees = chunks_t[0]
        level_start = 0
        n = n_trees
        depth = 0
        while level_methods.size and depth < self.max_depth:
            budgets = self.max_nodes - tree_counts
            alive = budgets[level_trees] > 0
            # A tree with frontier nodes but no budget left is truncated:
            # those nodes would have expanded (same post-loop rule as the
            # single-tree path).
            truncated[level_trees[~alive]] = True
            f_methods = level_methods[alive]
            f_trees = level_trees[alive]
            f_index = np.flatnonzero(alive) + level_start
            if f_methods.size == 0:
                break
            ks = self._fanouts(f_methods, rng)
            # Per-tree FIFO clipping: exclusive cumsum of fanouts *within
            # each tree's run* of the frontier (frontier order groups by
            # tree, so runs are contiguous) against that tree's remaining
            # budget.
            started = np.cumsum(ks) - ks
            first_of_tree = np.searchsorted(f_trees, f_trees, side="left")
            started_in_tree = started - started[first_of_tree]
            allowed = np.clip(budgets[f_trees] - started_in_tree, 0, ks)
            truncated[f_trees[allowed < ks]] = True
            ks = allowed
            total = int(ks.sum())
            if total == 0:
                break
            parent_slot = np.repeat(np.arange(f_methods.size), ks)
            child_methods = self._children(f_methods[parent_slot], rng)
            child_trees = f_trees[parent_slot]
            chunks_m.append(child_methods)
            chunks_p.append(f_index[parent_slot])
            chunks_d.append(np.full(total, depth + 1, dtype=np.int64))
            chunks_t.append(child_trees)
            tree_counts += np.bincount(child_trees, minlength=n_trees)
            level_methods = child_methods
            level_trees = child_trees
            level_start = n
            n += total
            depth += 1
        self.trees_generated += n_trees
        return FlatForest(method_ids=np.concatenate(chunks_m),
                          parents=np.concatenate(chunks_p),
                          depths=np.concatenate(chunks_d),
                          tree_ids=np.concatenate(chunks_t),
                          n_trees=n_trees, truncated=truncated)

    def generate(self, root_method: int, rng: np.random.Generator) -> CallTree:
        """Generate one call tree as linked :class:`CallNode` objects."""
        return self.generate_flat(root_method, rng).to_call_tree()


@dataclass
class TreeShapeStats:
    """Per-method samples of descendant and ancestor counts."""

    descendants: Dict[int, List[int]] = field(default_factory=dict)
    ancestors: Dict[int, List[int]] = field(default_factory=dict)

    def add_tree(self, tree: CallTree) -> None:
        """Accumulate one tree's shape samples."""
        for node in tree.root.walk():
            self.descendants.setdefault(node.method_id, []).append(node.descendants)
            self.ancestors.setdefault(node.method_id, []).append(node.ancestors)

    @classmethod
    def from_arrays(cls, method_ids: np.ndarray, descendants: np.ndarray,
                    ancestors: np.ndarray) -> "TreeShapeStats":
        """Group pooled per-node samples by method in bulk.

        This is the vectorized complement of :meth:`add_tree`: a stable
        argsort on the method column replaces millions of dict/append
        operations, and the per-method values come out as contiguous
        arrays in the original sample order.
        """
        method_ids = np.asarray(method_ids, dtype=np.int64)
        if method_ids.size == 0:
            return cls()
        order = np.argsort(method_ids, kind="stable")
        sorted_mids = method_ids[order]
        uniq, starts = np.unique(sorted_mids, return_index=True)
        desc_sorted = np.asarray(descendants)[order]
        anc_sorted = np.asarray(ancestors)[order]
        out = cls()
        bounds = np.append(starts, sorted_mids.size)
        for i, mid in enumerate(uniq):
            sl = slice(int(bounds[i]), int(bounds[i + 1]))
            out.descendants[int(mid)] = desc_sorted[sl]
            out.ancestors[int(mid)] = anc_sorted[sl]
        return out

    def methods(self) -> List[int]:
        """Method ids with at least one observed invocation."""
        return sorted(self.descendants)

    def filter_min_samples(self, min_samples: int) -> "TreeShapeStats":
        """Keep methods with at least ``min_samples`` observations (the
        paper's ≥100-samples-per-method rule, applied at whatever scale the
        caller ran)."""
        out = TreeShapeStats()
        for m, vals in self.descendants.items():
            if len(vals) >= min_samples:
                out.descendants[m] = vals
                out.ancestors[m] = self.ancestors[m]
        return out


class _CountSet:
    """A multiset of int64 keys held as (key, count) pairs, chunk-buffered.

    ``add`` appends raw key arrays to a pending list; once the buffered
    row count crosses ``compact_at`` the whole thing collapses through
    one ``np.unique``. The working set is therefore bounded by
    ``distinct keys + compact_at`` regardless of how many keys stream
    through — the property the out-of-core fold relies on.
    """

    def __init__(self, compact_at: int = 4_000_000):
        self._keys = np.empty(0, dtype=np.int64)
        self._counts = np.empty(0, dtype=np.int64)
        self._pending: List[Tuple[np.ndarray, np.ndarray]] = []
        self._pending_rows = 0
        self._compact_at = int(compact_at)

    def add(self, keys: np.ndarray,
            counts: Optional[np.ndarray] = None) -> None:
        """Fold in keys (each counted once, or per ``counts``)."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return
        if counts is None:
            counts = np.ones(keys.size, dtype=np.int64)
        self._pending.append((keys, np.asarray(counts, dtype=np.int64)))
        self._pending_rows += keys.size
        if self._pending_rows >= self._compact_at:
            self._compact()

    def _compact(self) -> None:
        keys = np.concatenate([self._keys] + [k for k, _ in self._pending])
        counts = np.concatenate([self._counts]
                                + [c for _, c in self._pending])
        self._pending = []
        self._pending_rows = 0
        uniq, inverse = np.unique(keys, return_inverse=True)
        # bincount-with-weights sums in float64: exact for totals < 2^53,
        # far beyond any reachable node count, and much faster than add.at.
        self._keys = uniq
        self._counts = np.bincount(inverse, weights=counts).astype(np.int64)

    def items(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(keys, counts)`` with keys sorted ascending and unique."""
        if self._pending_rows:
            self._compact()
        return self._keys, self._counts

    @property
    def total(self) -> int:
        """Total multiplicity across all keys."""
        return int(self._counts.sum()
                   + sum(int(c.sum()) for _, c in self._pending))


class TreeShapeAccumulator:
    """Streaming fold of forest shards into exact shape histograms.

    The multiset of per-node (method, descendants) and (method,
    ancestors) samples fully determines every statistic the tree-shape
    analysis reports — percentiles are order-invariant — so folding
    shards into *count* histograms loses nothing while keeping the
    working set O(methods × distinct values), independent of how many
    trees stream through. This is the reducer state of the out-of-core
    pipeline: map workers generate (and optionally spill) forests, the
    reducer folds them shard by shard, and equal fold order gives
    bit-identical state however the shards were transported.

    ``value_cap`` must bound every folded value; ``max_nodes`` works for
    both descendants (≤ max_nodes - 1) and ancestors (a depth-d node has
    d ancestors *in its own tree*, so d < max_nodes).
    """

    def __init__(self, value_cap: int, compact_at: int = 4_000_000):
        if value_cap < 1:
            raise ValueError(f"value_cap must be >= 1, got {value_cap!r}")
        self.value_cap = int(value_cap)
        self._mult = self.value_cap + 1
        self._desc = _CountSet(compact_at)
        self._anc = _CountSet(compact_at)
        self._sizes = _CountSet(compact_at)
        self.n_trees = 0
        self.n_nodes = 0
        self.n_truncated = 0

    # -- folding -------------------------------------------------------
    def fold_forest(self, forest: FlatForest) -> None:
        """Fold one shard's forest (in-memory or memmap-backed)."""
        mids = np.asarray(forest.method_ids, dtype=np.int64)
        if mids.size:
            desc = forest.descendants()
            if int(desc.max()) > self.value_cap or \
                    int(forest.depths[-1]) > self.value_cap:
                raise ValueError(
                    f"forest values exceed value_cap={self.value_cap}; "
                    "construct the accumulator with the generator's "
                    "max_nodes")
            self._desc.add(mids * self._mult + desc)
            self._anc.add(mids * self._mult
                          + np.asarray(forest.depths, dtype=np.int64))
            self._sizes.add(forest.tree_sizes().astype(np.int64))
        self.n_trees += int(forest.n_trees)
        self.n_nodes += int(mids.size)
        self.n_truncated += int(np.count_nonzero(forest.truncated))

    def merge(self, other: "TreeShapeAccumulator") -> None:
        """Fold another accumulator's state into this one (shard order
        is the caller's responsibility; counts commute, so merge order
        cannot change the final histograms)."""
        if other.value_cap != self.value_cap:
            raise ValueError(
                f"cannot merge accumulators with different value caps "
                f"({self.value_cap} vs {other.value_cap})")
        self._desc.add(*other._desc.items())
        self._anc.add(*other._anc.items())
        self._sizes.add(*other._sizes.items())
        self.n_trees += other.n_trees
        self.n_nodes += other.n_nodes
        self.n_truncated += other.n_truncated

    # -- accessors -----------------------------------------------------
    def _decode(self, cs: _CountSet
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        keys, counts = cs.items()
        return keys // self._mult, keys % self._mult, counts

    def descendant_items(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(method_ids, values, counts)`` sorted by (method, value)."""
        return self._decode(self._desc)

    def ancestor_items(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(method_ids, values, counts)`` sorted by (method, value)."""
        return self._decode(self._anc)

    def tree_size_items(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(sizes, counts)`` over whole trees, sizes ascending."""
        return self._sizes.items()

    # -- cache round-trip ----------------------------------------------
    def to_state(self) -> Dict[str, object]:
        """Compact picklable state (the unit the study cache stores)."""
        dk, dc = self._desc.items()
        ak, ac = self._anc.items()
        sk, sc = self._sizes.items()
        return {
            "value_cap": self.value_cap,
            "desc_keys": dk, "desc_counts": dc,
            "anc_keys": ak, "anc_counts": ac,
            "size_keys": sk, "size_counts": sc,
            "n_trees": self.n_trees,
            "n_nodes": self.n_nodes,
            "n_truncated": self.n_truncated,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "TreeShapeAccumulator":
        """Rebuild an accumulator from :meth:`to_state` output."""
        acc = cls(int(state["value_cap"]))
        acc._desc.add(state["desc_keys"], state["desc_counts"])
        acc._anc.add(state["anc_keys"], state["anc_counts"])
        acc._sizes.add(state["size_keys"], state["size_counts"])
        acc.n_trees = int(state["n_trees"])
        acc.n_nodes = int(state["n_nodes"])
        acc.n_truncated = int(state["n_truncated"])
        return acc


def collect_flat_samples(
    generator: CallTreeGenerator,
    root_methods: Sequence[int],
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate one flat tree per root; return pooled per-node samples.

    Returns ``(method_ids, descendants, ancestors)`` arrays concatenated
    across all trees — the raw material for
    :meth:`TreeShapeStats.from_arrays`, and the mergeable unit the
    parallel study runner ships between processes.
    """
    mids: List[np.ndarray] = []
    descs: List[np.ndarray] = []
    ancs: List[np.ndarray] = []
    for root in root_methods:
        tree = generator.generate_flat(int(root), rng)
        mids.append(tree.method_ids)
        descs.append(tree.descendants())
        ancs.append(tree.depths)
    if not mids:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    return np.concatenate(mids), np.concatenate(descs), np.concatenate(ancs)


def collect_shape_samples(
    generator: CallTreeGenerator,
    root_methods: Sequence[int],
    rng: np.random.Generator,
) -> TreeShapeStats:
    """Generate one tree per entry of ``root_methods`` and pool the shapes."""
    return TreeShapeStats.from_arrays(
        *collect_flat_samples(generator, root_methods, rng))
