"""The discrete-event RPC client/server (Tier B).

This module wires the nine-stage anatomy of Fig. 9 through *causal* queues
on simulated machines, so that queueing, interference, exogenous machine
state and load balancing shape latency the way they do in production:

- the client's TX pool produces ``client_send_queue`` (wait) and
  ``request_proc_stack`` (service, size-dependent, inflated by the client
  machine's CPI);
- the network model produces both wire components;
- the server's RX pool plus handler pool plus thread wakeup produce
  ``server_recv_queue``; the handler itself is ``server_application``
  (inflated by the *server* machine's CPI — this is how Fig. 17/18's
  exogenous correlations arise);
- the server's TX pool produces ``server_send_queue`` and
  ``response_proc_stack``;
- the client's RX pool produces ``client_recv_queue``.

Completed calls are recorded as :class:`~repro.rpc.tracing.Span`\\ s
(annotated with the server's exogenous snapshot) through whatever
:class:`~repro.rpc.tracing.SpanSink` is attached — the Dapper collector
in every study — and cycle costs go to a
:class:`~repro.rpc.tracing.ProfileSink` (the GWP profiler). The sinks
are *protocols owned by this layer*: observability plugs in from above,
so the rpc → obs package DAG holds. Hedged calls issue a backup copy
after a delay; the losing copy completes as ``CANCELLED``, burning real
server resources — the behaviour behind Fig. 23's cancellation costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.fleet.machine import Machine
from repro.net.latency import NetworkModel
from repro.rpc.errors import ErrorModel, StatusCode
from repro.rpc.hedging import NO_HEDGING, HedgingPolicy
from repro.rpc.stack import LatencyBreakdown, StackCostModel
from repro.rpc.tracing import ProfileSink, Span, SpanSink
from repro.sim.distributions import Distribution
from repro.sim.engine import Simulator
from repro.sim.queues import Job

__all__ = ["ChildCall", "MethodRuntime", "RpcServerTask", "RpcClientTask",
           "CallResult"]

@dataclass
class ChildCall:
    """A nested dependency of a method: fan out ``count`` calls to
    ``runtime`` while handling each request (partition/aggregate)."""

    runtime: "MethodRuntime"
    count: Distribution


@dataclass
class MethodRuntime:
    """Everything the DES needs to serve one RPC method.

    ``app_time`` is the handler's service time on an *idle* machine; the
    machine's CPI multiplier inflates it at run time. ``error_app_fraction``
    is how much of the handler an erroring RPC executes before failing
    (fail-fast validation errors burn little; cancelled hedges burn all of
    it — handled separately by the hedging path).

    ``child_calls`` declares nested RPCs: the handler runs
    ``child_fanout_phase`` of its compute, fans out to every child in
    parallel, waits for all of them, then finishes the remainder. As in
    the paper (§2.1), the waiting shows up inside the parent's
    server-application component — nesting is invisible to the caller.
    """

    service: str
    method: str
    app_time: Distribution
    request_size: Distribution
    response_size: Distribution
    app_cycles: Distribution
    error_model: Optional[ErrorModel] = None
    error_app_fraction: float = 0.3
    error_response_bytes: int = 64
    child_calls: List[ChildCall] = field(default_factory=list)
    child_fanout_phase: float = 0.35

    @property
    def full_method(self) -> str:
        """The ``"Service/Method"`` identifier."""
        return f"{self.service}/{self.method}"


@dataclass
class CallResult:
    """Returned to the client's completion callback."""

    span: Span
    hedged: bool = False
    attempts: int = 1


class RpcServerTask:
    """One server process on one machine, serving a set of methods."""

    def __init__(self, sim: Simulator, machine: Machine,
                 methods: Sequence[MethodRuntime],
                 stack: Optional[StackCostModel] = None,
                 rng: Optional[np.random.Generator] = None):
        self.sim = sim
        self.machine = machine
        self.methods: Dict[str, MethodRuntime] = {m.method: m for m in methods}
        self.stack = stack or StackCostModel()
        self.rng = rng or np.random.default_rng(0)
        self.rpcs_served = 0
        self.cycles_burned = 0.0
        # Handler service-time multiplier; studies flip it mid-run to
        # inject latency regressions (e.g. a bad rollout doubling app
        # time) without touching the method's base distribution.
        self.app_scale = 1.0
        # Buffered scalar draws (hot path; see BufferedDraws).
        self._app_bufs = {
            name: m.app_time.buffered(self.rng)
            for name, m in self.methods.items()
        }
        self._resp_bufs = {
            name: m.response_size.buffered(self.rng)
            for name, m in self.methods.items()
        }
        self._cycle_bufs = {
            name: m.app_cycles.buffered(self.rng)
            for name, m in self.methods.items()
        }

        # Wired by configure_children for methods with nested calls.
        self._child_client: Optional["RpcClientTask"] = None
        self._child_pickers: Dict[str, Callable] = {}

    @property
    def cluster(self):
        """The cluster hosting this task's machine."""
        return self.machine.cluster

    def load(self) -> float:
        """Instantaneous pressure (queue depth + busy) for least-loaded LB."""
        pool = self.machine.pool
        return pool.queue_depth + pool.busy_servers

    def configure_children(self, client: "RpcClientTask",
                           pickers: Dict[str, Callable]) -> None:
        """Attach the client (on this machine) and per-child-method target
        pickers used to issue nested calls."""
        self._child_client = client
        self._child_pickers = dict(pickers)

    # ------------------------------------------------------------------
    def serve(self, method_name: str, request_bytes: int,
              status: StatusCode,
              on_reply: Callable[[float, float, float, int, float, float], None],
              trace_id: int = 0, span_id: int = 0) -> None:
        """Process one incoming request (already on this machine).

        ``on_reply(recv_queue_s, app_s, send_queue_s, response_bytes,
        resp_proc_s, app_cycles)`` fires when the response leaves the
        server's TX path. ``trace_id``/``span_id`` propagate the Dapper
        context so nested calls link into the same trace tree.
        """
        runtime = self.methods.get(method_name)
        if runtime is None:
            raise KeyError(f"method {method_name!r} not served here")
        arrival = self.sim.now

        # RX path: decrypt + parse on the RX pool.
        parse_s = self.stack.proc_stack_time_s(request_bytes) * 0.5 \
            * self.machine.service_multiplier()

        app_buf = self._app_bufs[method_name]
        resp_buf = self._resp_bufs[method_name]
        cycle_buf = self._cycle_bufs[method_name]
        has_children = bool(runtime.child_calls) and \
            self._child_client is not None and not status.is_error

        def after_parse(_parse_wait: float) -> None:
            # Handler execution: thread wakeup + inflated app time.
            wakeup = self.machine.sample_wakeup()
            base_app = app_buf.next()
            if status.is_error and status is not StatusCode.CANCELLED:
                base_app *= runtime.error_app_fraction
            actual_app = base_app * self.machine.service_multiplier() \
                * self.app_scale
            app_cycles = cycle_buf.next()
            if status.is_error and status is not StatusCode.CANCELLED:
                app_cycles *= runtime.error_app_fraction

            def respond(handler_started_at: float) -> None:
                # The parent's application component is the full handler
                # wall time (local compute + nested-call waits): nesting
                # is invisible to the caller (§2.1).
                app_wall = self.sim.now - handler_started_at
                recv_queue_s = (handler_started_at - arrival)
                if status.is_error:
                    response_bytes = runtime.error_response_bytes
                else:
                    response_bytes = max(1, int(resp_buf.next()))
                resp_proc_s = self.stack.proc_stack_time_s(response_bytes) \
                    * self.machine.service_multiplier()

                def after_tx(tx_wait: float) -> None:
                    self.rpcs_served += 1
                    self.cycles_burned += app_cycles
                    on_reply(max(recv_queue_s, 0.0), app_wall, tx_wait,
                             response_bytes, resp_proc_s, app_cycles)

                self.machine.tx_pool.submit(
                    Job(service_time=resp_proc_s, on_done=after_tx)
                )

            if not has_children:
                def after_app(pool_wait: float) -> None:
                    respond(self.sim.now - actual_app)

                self.machine.pool.submit(
                    Job(service_time=wakeup + actual_app, on_done=after_app)
                )
                return

            # Nested execution: phase-1 compute, parallel fan-out to every
            # child, then phase-2 compute. The handler thread is released
            # while waiting (async server), so the pool does not deadlock.
            phase1 = actual_app * runtime.child_fanout_phase
            phase2 = actual_app - phase1
            handler_start_box = {}

            def after_phase1(_wait: float) -> None:
                handler_start_box["t"] = self.sim.now - phase1 - wakeup
                pending = {"n": 0}
                issued = {"n": 0}

                def child_done(_result) -> None:
                    pending["n"] -= 1
                    if pending["n"] == 0 and issued["done"]:
                        start_phase2()

                def start_phase2() -> None:
                    self.machine.pool.submit(Job(
                        service_time=phase2,
                        on_done=lambda w: respond(handler_start_box["t"]),
                    ))

                issued["done"] = False
                for child in runtime.child_calls:
                    k = max(0, int(round(
                        child.count.sample_one(self._child_client.rng))))
                    picker = self._child_pickers.get(
                        child.runtime.full_method)
                    if picker is None or k == 0:
                        continue
                    for _ in range(k):
                        pending["n"] += 1
                        issued["n"] += 1
                        self._child_client.call(
                            child.runtime, picker,
                            on_complete=child_done,
                            trace_id=trace_id or None,
                            parent_id=span_id or None,
                        )
                issued["done"] = True
                if pending["n"] == 0:
                    start_phase2()

            self.machine.pool.submit(
                Job(service_time=wakeup + phase1, on_done=after_phase1)
            )

        self.machine.rx_pool.submit(Job(service_time=parse_s, on_done=after_parse))


class RpcClientTask:
    """A client process on a machine, issuing calls to server tasks."""

    def __init__(self, sim: Simulator, machine: Machine,
                 network: NetworkModel,
                 dapper: Optional[SpanSink] = None,
                 gwp: Optional[ProfileSink] = None,
                 stack: Optional[StackCostModel] = None,
                 rng: Optional[np.random.Generator] = None,
                 hedging: HedgingPolicy = NO_HEDGING):
        self.sim = sim
        self.machine = machine
        self.network = network
        self.dapper = dapper
        self.gwp = gwp
        self.stack = stack or StackCostModel()
        self.rng = rng or np.random.default_rng(0)
        self.hedging = hedging
        self.calls_issued = 0
        self.calls_completed = 0
        self._req_bufs: Dict[str, object] = {}
        self._status_bufs: Dict[int, object] = {}
        self._wire: Dict[str, object] = {}  # dst cluster name -> OnewaySampler

    @property
    def cluster(self):
        """The cluster hosting this task's machine."""
        return self.machine.cluster

    # ------------------------------------------------------------------
    def call(self, runtime: MethodRuntime,
             pick_server: Callable[[np.random.Generator], RpcServerTask],
             on_complete: Optional[Callable[[CallResult], None]] = None,
             trace_id: Optional[int] = None,
             parent_id: Optional[int] = None) -> None:
        """Issue one RPC; the server is chosen per attempt by ``pick_server``.

        ``trace_id``/``parent_id`` link the call into an existing Dapper
        trace (nested calls); a fresh trace id is minted otherwise, and
        the sink's root-level head-sampling decision (Dapper's
        ``sample_root``, when the sink steers per-method rates) is made
        eagerly so children inherit it.
        """
        if trace_id is None:
            trace_id = self.sim.mint_id("trace")
            sample_root = getattr(self.dapper, "sample_root", None)
            if sample_root is not None:
                sample_root(trace_id, runtime.full_method)
        req_buf = self._req_bufs.get(runtime.full_method)
        if req_buf is None:
            req_buf = runtime.request_size.buffered(self.rng)
            self._req_bufs[runtime.full_method] = req_buf
        request_bytes = max(1, int(req_buf.next()))
        self.calls_issued += 1

        state = {"winner": None, "attempts": 0, "hedge_timer": None}

        def launch_attempt(attempt_index: int) -> None:
            server = pick_server(self.rng)
            state["attempts"] += 1
            probe = self.sim.probe
            if probe is not None:
                probe.rpc_attempt(runtime.full_method, self.sim.now,
                                  attempt_index)
            self._run_attempt(
                runtime, server, trace_id, request_bytes, attempt_index,
                state, on_complete, parent_id,
            )

        if self.hedging.enabled:
            def maybe_hedge() -> None:
                if state["winner"] is None and self.hedging.should_hedge(
                        state["attempts"]):
                    probe = self.sim.probe
                    if probe is not None:
                        probe.rpc_hedge(runtime.full_method, self.sim.now)
                    launch_attempt(1)
            state["hedge_timer"] = self.sim.after(self.hedging.delay_s, maybe_hedge)

        launch_attempt(0)

    # ------------------------------------------------------------------
    def _run_attempt(self, runtime: MethodRuntime, server: RpcServerTask,
                     trace_id: int, request_bytes: int, attempt_index: int,
                     state: dict,
                     on_complete: Optional[Callable[[CallResult], None]],
                     parent_id: Optional[int] = None) -> None:
        span_id = self.sim.mint_id("span")
        t0 = self.sim.now
        # Per-attempt outcome from the method's error model (hedging losers
        # are turned into CANCELLED at completion time below).
        if runtime.error_model is not None:
            status = self._next_status(runtime)
        else:
            status = StatusCode.OK

        req_proc_s = self.stack.proc_stack_time_s(request_bytes) \
            * self.machine.service_multiplier()

        wire = self._wire_sampler(server.cluster)

        def after_client_tx(tx_wait: float) -> None:
            client_send_queue = tx_wait
            wire_req = wire.sample(request_bytes, self.sim.now)

            def deliver() -> None:
                server.serve(
                    runtime.method, request_bytes, status,
                    lambda recv_q, app_s, send_q, resp_bytes, resp_proc, app_cyc:
                    after_server(
                        client_send_queue, wire_req, recv_q, app_s, send_q,
                        resp_bytes, resp_proc, app_cyc,
                    ),
                    trace_id=trace_id, span_id=span_id,
                )

            self.sim.after(wire_req, deliver)

        def after_server(client_send_queue: float, wire_req: float,
                         recv_q: float, app_s: float, send_q: float,
                         resp_bytes: int, resp_proc: float,
                         app_cycles: float) -> None:
            wire_resp = wire.sample(resp_bytes, self.sim.now)

            def arrive_back() -> None:
                client_parse_s = self.stack.proc_stack_time_s(resp_bytes) * 0.3 \
                    * self.machine.service_multiplier()

                def after_client_rx(rx_wait: float) -> None:
                    finalize(
                        client_send_queue, wire_req, recv_q, app_s, send_q,
                        resp_bytes, resp_proc, wire_resp,
                        rx_wait + client_parse_s, app_cycles,
                    )

                self.machine.rx_pool.submit(
                    Job(service_time=client_parse_s, on_done=after_client_rx)
                )

            self.sim.after(wire_resp, arrive_back)

        def finalize(client_send_queue: float, wire_req: float, recv_q: float,
                     app_s: float, send_q: float, resp_bytes: int,
                     resp_proc: float, wire_resp: float,
                     client_recv_queue: float, app_cycles: float) -> None:
            final_status = status
            is_winner = state["winner"] is None
            if is_winner:
                state["winner"] = span_id
                if state["hedge_timer"] is not None:
                    state["hedge_timer"].cancel()
            else:
                final_status = StatusCode.CANCELLED

            breakdown = LatencyBreakdown(
                client_send_queue=client_send_queue,
                request_proc_stack=req_proc_s,
                request_network_wire=wire_req,
                server_recv_queue=recv_q,
                server_application=app_s,
                server_send_queue=send_q,
                response_proc_stack=resp_proc,
                response_network_wire=wire_resp,
                client_recv_queue=client_recv_queue,
            )
            costs = self.stack.cycles(request_bytes, resp_bytes, app_cycles)
            exo = server.machine.exogenous()
            span = Span(
                trace_id=trace_id,
                span_id=span_id,
                parent_id=parent_id,
                service=runtime.service,
                method=runtime.method,
                client_cluster=self.cluster.name,
                server_cluster=server.cluster.name,
                server_machine=server.machine.name,
                start_time=t0,
                breakdown=breakdown,
                status=final_status,
                request_bytes=request_bytes,
                response_bytes=resp_bytes,
                cpu_cycles=costs.total(),
                annotations={
                    "hedge_attempt": float(attempt_index),
                    **{f"exo_{k}": v for k, v in exo.as_dict().items()},
                },
            )
            if self.dapper is not None:
                self.dapper.record(span)
            if self.gwp is not None:
                self.gwp.add_rpc(runtime.service, runtime.method, costs)
            if is_winner:
                self.calls_completed += 1
                probe = self.sim.probe
                if probe is not None:
                    probe.rpc_completed(
                        runtime.full_method, self.sim.now,
                        final_status.name, breakdown.total(),
                        state["attempts"], trace_id,
                    )
                if on_complete is not None:
                    on_complete(CallResult(
                        span=span,
                        hedged=state["attempts"] > 1,
                        attempts=state["attempts"],
                    ))

        self.machine.tx_pool.submit(Job(service_time=req_proc_s,
                                        on_done=after_client_tx))

    # ------------------------------------------------------------------
    def _wire_sampler(self, dst_cluster):
        sampler = self._wire.get(dst_cluster.name)
        if sampler is None:
            sampler = self.network.oneway_sampler(self.rng, self.cluster,
                                                  dst_cluster)
            self._wire[dst_cluster.name] = sampler
        return sampler

    def _next_status(self, runtime: MethodRuntime) -> StatusCode:
        """Buffered per-call outcome; organic CANCELLED is mapped to OK
        because cancellations in the DES come from hedging races."""
        buf = self._status_bufs.get(id(runtime.error_model))
        if buf is None:
            buf = {"values": [], "i": 0}
            self._status_bufs[id(runtime.error_model)] = buf
        if buf["i"] >= len(buf["values"]):
            buf["values"] = list(
                runtime.error_model.sample_outcomes(self.rng, 512)
            )
            buf["i"] = 0
        status = buf["values"][buf["i"]]
        buf["i"] += 1
        if status is StatusCode.CANCELLED:
            return StatusCode.OK
        return status
