"""Request hedging (the tail-at-scale pattern behind most cancellations).

Section 4.4 attributes the dominant error class — Cancelled, 45 % of errors
and 55 % of error-wasted cycles — largely to request hedging: a client that
has waited past some latency threshold issues a backup request to another
replica and cancels the loser. Hedging trades duplicated work for tail
latency, which is exactly the trade-off the hedging ablation bench
measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["HedgingPolicy", "NO_HEDGING"]


@dataclass(frozen=True)
class HedgingPolicy:
    """When and how to hedge.

    ``delay_s`` is the time to wait before issuing the backup (deployments
    typically use an estimate of the method's P95); ``max_attempts`` bounds
    total copies in flight (2 = one hedge).
    """

    enabled: bool = True
    delay_s: float = 10e-3
    max_attempts: int = 2

    def __post_init__(self) -> None:
        if self.enabled:
            if self.delay_s < 0:
                raise ValueError(f"negative hedge delay {self.delay_s!r}")
            if self.max_attempts < 2:
                raise ValueError(
                    f"hedging needs max_attempts >= 2, got {self.max_attempts!r}"
                )

    def should_hedge(self, attempt: int) -> bool:
        """Whether a backup may be issued after ``attempt`` copies exist."""
        return self.enabled and attempt < self.max_attempts

    @classmethod
    def from_percentile_estimate(cls, p95_latency_s: float,
                                 max_attempts: int = 2) -> "HedgingPolicy":
        """Standard deployment: hedge once the P95 estimate has elapsed."""
        return cls(enabled=True, delay_s=p95_latency_s, max_attempts=max_attempts)


NO_HEDGING = HedgingPolicy(enabled=False, delay_s=0.0, max_attempts=2)
