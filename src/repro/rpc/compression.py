"""An LZSS compressor/decompressor.

Compression is the single largest component of the paper's RPC cycle tax —
3.1 % of *all* fleet CPU cycles (Fig. 20b) — so the substrate carries a real
compressor, used by the example applications and to ground the per-byte
cycle-cost constants in :mod:`repro.rpc.stack`.

The format is a classic LZSS token stream:

- a header: magic ``b"RLZ1"``, then the original length as a varint
  (so decompression can pre-size its buffer and detect truncation);
- groups of up to 8 tokens, each group preceded by a flag byte whose bits
  mark (LSB-first) whether the token is a *match* (1) or a *literal* (0);
- a literal token is one raw byte;
- a match token is 3 bytes: a 16-bit little-endian backward distance
  (1..32768) and a length byte storing ``length - MIN_MATCH`` (match lengths
  span 4..259).

The compressor uses hash chains over 4-byte prefixes with a bounded probe
depth; ``level`` trades probe depth for ratio.
"""

from __future__ import annotations

from typing import Dict, List

from repro.rpc.wire import decode_varint, encode_varint

__all__ = ["compress", "decompress", "CompressionError", "compression_ratio",
           "MIN_MATCH", "MAX_MATCH", "WINDOW_SIZE"]

MAGIC = b"RLZ1"
MIN_MATCH = 4
MAX_MATCH = MIN_MATCH + 255
WINDOW_SIZE = 32768

# Probe depth of the hash chain per compression level.
_LEVEL_PROBES = {1: 4, 2: 8, 3: 16, 4: 32, 5: 64, 6: 128}


class CompressionError(ValueError):
    """Raised on malformed compressed data."""


def _hash4(data: bytes, pos: int) -> int:
    """Hash of the 4 bytes at ``pos`` (requires pos+4 <= len(data))."""
    x = data[pos] | (data[pos + 1] << 8) | (data[pos + 2] << 16) | (data[pos + 3] << 24)
    return (x * 2654435761) & 0xFFFFFFFF


def compress(data: bytes, level: int = 3) -> bytes:
    """Compress ``data``; higher ``level`` searches harder (1..6)."""
    if level not in _LEVEL_PROBES:
        raise ValueError(f"level must be in 1..6, got {level!r}")
    max_probes = _LEVEL_PROBES[level]
    n = len(data)
    out = bytearray(MAGIC)
    out += encode_varint(n)

    chains: Dict[int, List[int]] = {}
    tokens: List[bytes] = []  # up to 8 pending tokens
    flags = 0
    flag_count = 0

    def flush_group() -> None:
        nonlocal flags, flag_count
        if flag_count:
            out.append(flags)
            for t in tokens:
                out.extend(t)
            tokens.clear()
            flags = 0
            flag_count = 0

    def emit(token: bytes, is_match: bool) -> None:
        """Write one table into the report."""
        nonlocal flags, flag_count
        if is_match:
            flags |= 1 << flag_count
        tokens.append(token)
        flag_count += 1
        if flag_count == 8:
            flush_group()

    pos = 0
    while pos < n:
        best_len = 0
        best_dist = 0
        if pos + MIN_MATCH <= n:
            h = _hash4(data, pos)
            candidates = chains.get(h)
            if candidates:
                limit = min(MAX_MATCH, n - pos)
                probes = 0
                # Probe most-recent candidates first (they are appended).
                for cand in reversed(candidates):
                    if pos - cand > WINDOW_SIZE:
                        break
                    probes += 1
                    if probes > max_probes:
                        break
                    # Extend the match.
                    length = 0
                    while (length < limit
                           and data[cand + length] == data[pos + length]):
                        length += 1
                    if length > best_len:
                        best_len = length
                        best_dist = pos - cand
                        if length >= limit:
                            break
            chains.setdefault(h, []).append(pos)

        if best_len >= MIN_MATCH:
            emit(bytes((
                best_dist & 0xFF,
                (best_dist >> 8) & 0xFF,
                best_len - MIN_MATCH,
            )), is_match=True)
            # Index the skipped positions so future matches can find them.
            end = pos + best_len
            idx = pos + 1
            while idx < end and idx + MIN_MATCH <= n:
                chains.setdefault(_hash4(data, idx), []).append(idx)
                idx += 1
            pos = end
        else:
            emit(data[pos:pos + 1], is_match=False)
            pos += 1

    flush_group()
    return bytes(out)


def decompress(blob: bytes) -> bytes:
    """Inverse of :func:`compress`."""
    if len(blob) < len(MAGIC) or blob[:len(MAGIC)] != MAGIC:
        raise CompressionError("bad magic")
    original_len, pos = decode_varint(blob, len(MAGIC))
    out = bytearray()
    n = len(blob)
    while pos < n and len(out) < original_len:
        flags = blob[pos]
        pos += 1
        for bit in range(8):
            if pos >= n or len(out) >= original_len:
                break
            if flags & (1 << bit):
                if pos + 3 > n:
                    raise CompressionError("truncated match token")
                dist = blob[pos] | (blob[pos + 1] << 8)
                length = blob[pos + 2] + MIN_MATCH
                pos += 3
                if dist == 0 or dist > len(out):
                    raise CompressionError(f"invalid match distance {dist}")
                start = len(out) - dist
                for i in range(length):  # may self-overlap, so copy bytewise
                    out.append(out[start + i])
            else:
                out.append(blob[pos])
                pos += 1
    if len(out) != original_len:
        raise CompressionError(
            f"length mismatch: header says {original_len}, got {len(out)}"
        )
    return bytes(out)


def compression_ratio(data: bytes, level: int = 3) -> float:
    """Original/compressed size ratio (≥ small values for incompressible data)."""
    if not data:
        return 1.0
    return len(data) / len(compress(data, level))
