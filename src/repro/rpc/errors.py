"""Status codes and the fleet error model.

Section 4.4: 1.9 % of all RPCs end in an error; "Cancelled" dominates (45 %
of errors and 55 % of error-wasted CPU cycles — mostly hedging), followed by
"entity not found" (20 % / 21 %). The :class:`ErrorModel` below generates
per-RPC outcomes with a configurable error rate and mix, and attributes a
relative *wasted-cycle factor* to each error class: cancellations run for a
while before the winner's response kills them, so they burn an outsized
share of cycles; permission/argument errors fail fast and burn less.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

__all__ = ["StatusCode", "RpcError", "ErrorModel", "DEFAULT_ERROR_MIX",
           "DEFAULT_WASTED_CYCLE_FACTORS", "FLEET_ERROR_RATE"]

# Paper §4.4: fraction of all issued RPCs that end in an error.
FLEET_ERROR_RATE = 0.019


class StatusCode(enum.Enum):
    """gRPC/Stubby-style status codes (the subset the fleet analysis uses)."""

    OK = 0
    CANCELLED = 1
    UNKNOWN = 2
    INVALID_ARGUMENT = 3
    DEADLINE_EXCEEDED = 4
    NOT_FOUND = 5
    PERMISSION_DENIED = 7
    RESOURCE_EXHAUSTED = 8
    UNAVAILABLE = 14
    INTERNAL = 13
    UNIMPLEMENTED = 12

    @property
    def is_error(self) -> bool:
        """True for every non-OK status."""
        return self is not StatusCode.OK


class RpcError(Exception):
    """An RPC failure carrying its status code."""

    def __init__(self, status: StatusCode, message: str = ""):
        if not status.is_error:
            raise ValueError("RpcError requires a non-OK status")
        super().__init__(message or status.name)
        self.status = status


# Error mix calibrated to Fig. 23 (percent of errors, not of all RPCs).
DEFAULT_ERROR_MIX: Dict[StatusCode, float] = {
    StatusCode.CANCELLED: 0.45,
    StatusCode.NOT_FOUND: 0.20,
    StatusCode.RESOURCE_EXHAUSTED: 0.10,
    StatusCode.PERMISSION_DENIED: 0.08,
    StatusCode.DEADLINE_EXCEEDED: 0.07,
    StatusCode.UNAVAILABLE: 0.06,
    StatusCode.INTERNAL: 0.04,
}

# Relative CPU cycles burned per error, normalized so that with the default
# mix, Cancelled accounts for ~55 % of wasted cycles and NotFound ~21 %
# (Fig. 23): cancellations (hedge losers) run until the winner returns,
# while validation-style errors fail fast.
DEFAULT_WASTED_CYCLE_FACTORS: Dict[StatusCode, float] = {
    StatusCode.CANCELLED: 1.165,
    StatusCode.NOT_FOUND: 1.0,
    StatusCode.RESOURCE_EXHAUSTED: 0.75,
    StatusCode.PERMISSION_DENIED: 0.30,
    StatusCode.DEADLINE_EXCEEDED: 1.25,
    StatusCode.UNAVAILABLE: 0.55,
    StatusCode.INTERNAL: 0.60,
}


@dataclass
class ErrorModel:
    """Draws per-RPC outcomes (OK or a specific error class).

    ``error_rate`` is the unconditional probability of any error; ``mix``
    is the conditional distribution over error classes.
    """

    error_rate: float = FLEET_ERROR_RATE
    mix: Dict[StatusCode, float] = field(
        default_factory=lambda: dict(DEFAULT_ERROR_MIX)
    )
    wasted_cycle_factors: Dict[StatusCode, float] = field(
        default_factory=lambda: dict(DEFAULT_WASTED_CYCLE_FACTORS)
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError(f"error_rate must be in [0, 1], got {self.error_rate!r}")
        total = sum(self.mix.values())
        if total <= 0:
            raise ValueError("error mix weights must sum > 0")
        self.mix = {k: v / total for k, v in self.mix.items()}
        self._codes = list(self.mix.keys())
        self._probs = np.array([self.mix[c] for c in self._codes])

    def sample_outcomes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Array of ``StatusCode`` for ``n`` RPCs (object dtype)."""
        out = np.full(n, StatusCode.OK, dtype=object)
        errored = rng.random(n) < self.error_rate
        n_err = int(errored.sum())
        if n_err:
            picks = rng.choice(len(self._codes), size=n_err, p=self._probs)
            out[errored] = np.array(self._codes, dtype=object)[picks]
        return out

    def sample_one(self, rng: np.random.Generator) -> StatusCode:
        """One scalar draw."""
        return self.sample_outcomes(rng, 1)[0]

    def wasted_cycle_factor(self, status: StatusCode) -> float:
        """Relative cycles burned by an RPC that ended with ``status``."""
        if not status.is_error:
            return 0.0
        return self.wasted_cycle_factors.get(status, 1.0)

    def expected_cycle_shares(self) -> Dict[StatusCode, float]:
        """The wasted-cycle share per error class implied by the model."""
        weights = {
            c: self.mix[c] * self.wasted_cycle_factor(c) for c in self.mix
        }
        total = sum(weights.values())
        return {c: w / total for c, w in weights.items()}
