"""Span records and the sink protocols the RPC layer emits into.

The DES client/server (:mod:`repro.rpc.channel`) produces one
:class:`Span` per completed RPC attempt and one cycle attribution per
call — but *where* those records go is none of the RPC layer's business.
Historically ``channel`` imported ``repro.obs.dapper`` and
``repro.obs.gwp`` directly, inverting the package DAG (rpc sits below
obs); this module is the fix: **rpc owns the record type and the sink
interfaces, and the observability layer plugs in from above.**

- :class:`Span` — the trace record itself (the nine-component breakdown
  plus identity, tree linkage, status, sizes, cycles, annotations).
  ``repro.obs.dapper`` re-exports it, so analyses keep importing it from
  the observability layer they conceptually read it from.
- :class:`SpanSink` — anything with ``record(span) -> bool``;
  :class:`repro.obs.dapper.DapperCollector` satisfies it structurally.
- :class:`ProfileSink` — anything with ``add_rpc(service, method,
  costs)``; :class:`repro.obs.gwp.GwpProfiler` satisfies it.

Both protocols are ``runtime_checkable`` so tests can assert the
structural relationship with ``isinstance``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.rpc.errors import StatusCode
from repro.rpc.stack import CycleCosts, LatencyBreakdown

try:  # Protocol is 3.8+; runtime_checkable decorates for isinstance().
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - ancient interpreters only
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[no-redef]
        return cls

__all__ = ["Span", "SpanSink", "ProfileSink"]


@dataclass
class Span:
    """One traced RPC."""

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    service: str
    method: str
    client_cluster: str
    server_cluster: str
    server_machine: str
    start_time: float
    breakdown: LatencyBreakdown
    status: StatusCode = StatusCode.OK
    request_bytes: int = 0
    response_bytes: int = 0
    cpu_cycles: float = 0.0
    annotations: Dict[str, float] = field(default_factory=dict)

    @property
    def full_method(self) -> str:
        """The ``"Service/Method"`` identifier."""
        return f"{self.service}/{self.method}"

    @property
    def completion_time(self) -> float:
        """The span's total latency (sum of components)."""
        return self.breakdown.total()

    @property
    def ok(self) -> bool:
        """True when the status is OK."""
        return self.status is StatusCode.OK


@runtime_checkable
class SpanSink(Protocol):
    """Where completed spans go (Dapper collector, test buffers, ...)."""

    def record(self, span: Span) -> bool:
        """Accept one span; returns whether it was kept (sampling)."""
        ...  # pragma: no cover - protocol signature


@runtime_checkable
class ProfileSink(Protocol):
    """Where per-RPC cycle attributions go (the GWP profiler, ...)."""

    def add_rpc(self, service: str, method: str, costs: CycleCosts) -> None:
        """Attribute one RPC's cycle costs."""
        ...  # pragma: no cover - protocol signature
