"""ChaCha20 stream cipher (RFC 8439).

All RPCs inside the fleet are encrypted in transit; encryption shows up in
both the latency tax's "RPC processing" stage and the cycle tax (Fig. 20b).
This module implements ChaCha20 exactly as specified in RFC 8439 so the
substrate's encryption stage is real code with real per-byte cost, and the
implementation is verified against the RFC test vectors in the test suite.

This is a faithful implementation of the algorithm, but a pure-Python
cipher is **not** meant as production crypto — it exists to exercise the
encryption code path of the RPC stack.
"""

from __future__ import annotations

import struct
from typing import List

__all__ = ["chacha20_block", "chacha20_encrypt", "chacha20_decrypt", "keystream"]

_MASK32 = 0xFFFFFFFF
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)  # "expand 32-byte k"


def _rotl32(x: int, n: int) -> int:
    return ((x << n) & _MASK32) | (x >> (32 - n))


def _quarter_round(state: List[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """One 64-byte ChaCha20 block (RFC 8439 §2.3)."""
    if len(key) != 32:
        raise ValueError(f"key must be 32 bytes, got {len(key)}")
    if len(nonce) != 12:
        raise ValueError(f"nonce must be 12 bytes, got {len(nonce)}")
    if not 0 <= counter <= _MASK32:
        raise ValueError(f"counter out of range: {counter!r}")
    state = list(_CONSTANTS)
    state += list(struct.unpack("<8I", key))
    state.append(counter)
    state += list(struct.unpack("<3I", nonce))
    working = state.copy()
    for _ in range(10):  # 20 rounds = 10 double rounds
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    out = [(w + s) & _MASK32 for w, s in zip(working, state)]
    return struct.pack("<16I", *out)


def keystream(key: bytes, nonce: bytes, length: int, counter: int = 1) -> bytes:
    """``length`` bytes of keystream starting at block ``counter``."""
    if length < 0:
        raise ValueError(f"negative length {length!r}")
    blocks = []
    produced = 0
    block_counter = counter
    while produced < length:
        block = chacha20_block(key, block_counter, nonce)
        blocks.append(block)
        produced += len(block)
        block_counter = (block_counter + 1) & _MASK32
    return b"".join(blocks)[:length]


def chacha20_encrypt(key: bytes, nonce: bytes, plaintext: bytes,
                     counter: int = 1) -> bytes:
    """Encrypt (XOR with keystream); RFC 8439 §2.4."""
    stream = keystream(key, nonce, len(plaintext), counter)
    return bytes(p ^ s for p, s in zip(plaintext, stream))


def chacha20_decrypt(key: bytes, nonce: bytes, ciphertext: bytes,
                     counter: int = 1) -> bytes:
    """Decrypt — identical to encryption for a stream cipher."""
    return chacha20_encrypt(key, nonce, ciphertext, counter)
