"""Request/response envelopes and call metadata.

These are the objects that flow through the DES-tier client/server stack
(:mod:`repro.rpc.channel`) and into Dapper spans. Payloads may be real
bytes (the example applications serialize real messages through
:mod:`repro.rpc.wire`) or size-only (the simulation tiers mostly track
sizes, since component latencies depend on size, not content).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.rpc.errors import StatusCode

__all__ = ["RpcMetadata", "Request", "Response", "new_rpc_id"]

_rpc_id_counter = itertools.count(1)


def new_rpc_id() -> int:
    """Process-unique RPC identifier."""
    return next(_rpc_id_counter)


@dataclass
class RpcMetadata:
    """Call metadata propagated with a request (the Dapper context).

    ``trace_id`` is shared by the whole call tree; ``parent_id`` names the
    caller's span so the collector can rebuild tree structure.
    """

    service: str
    method: str
    trace_id: int
    span_id: int
    parent_id: Optional[int] = None
    deadline_s: Optional[float] = None
    hedge_attempt: int = 0  # 0 = primary, >0 = hedged retry

    @property
    def full_method(self) -> str:
        """The ``"Service/Method"`` identifier."""
        return f"{self.service}/{self.method}"


@dataclass
class Request:
    """An RPC request envelope."""

    metadata: RpcMetadata
    size_bytes: int
    payload: Optional[bytes] = None
    issued_at: float = 0.0

    def __post_init__(self) -> None:
        if self.payload is not None:
            self.size_bytes = len(self.payload)
        if self.size_bytes < 0:
            raise ValueError(f"negative request size {self.size_bytes!r}")


@dataclass
class Response:
    """An RPC response envelope."""

    metadata: RpcMetadata
    status: StatusCode = StatusCode.OK
    size_bytes: int = 0
    payload: Optional[bytes] = None
    completed_at: float = 0.0

    def __post_init__(self) -> None:
        if self.payload is not None:
            self.size_bytes = len(self.payload)
        if self.size_bytes < 0:
            raise ValueError(f"negative response size {self.size_bytes!r}")

    @property
    def ok(self) -> bool:
        """True when the status is OK."""
        return self.status is StatusCode.OK
