"""The nine-component RPC latency anatomy (Fig. 9) and its cost models.

An RPC's completion time decomposes into nine stages:

1. ``client_send_queue``     — request waits for local CPU/network
2. ``request_proc_stack``    — marshalling, compression, encryption, TX stack
3. ``request_network_wire``  — propagation + network queueing to the server
4. ``server_recv_queue``     — decrypt/parse then wait for a server thread
5. ``server_application``    — the handler (includes nested RPCs' time)
6. ``server_send_queue``     — response waits for the network
7. ``response_proc_stack``   — response serialization and RX stack
8. ``response_network_wire`` — propagation back
9. ``client_recv_queue``     — response waits for the client to process it

Everything except ``server_application`` is the **RPC latency tax** (§3.1).

Two representations coexist:

- :class:`LatencyBreakdown` — one RPC's scalar breakdown (what a Dapper
  span records in the DES tier);
- :class:`ComponentMatrix` — an ``(n, 9)`` ndarray of per-RPC breakdowns
  (what the vectorized Tier-A sampler produces), with named column access
  and the tax/queue/wire aggregations used throughout :mod:`repro.core`.

:class:`StackCostModel` maps message sizes onto stage processing *times* and
CPU *cycles* per tax category; its constants are calibrated in
:mod:`repro.workloads.calibration` so the fleet-wide cycle-tax shares land
on Fig. 20 (compression 3.1 %, networking 1.7 %, serialization 1.2 %, RPC
library 1.1 % — 7.1 % in total).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from repro.sim.distributions import Constant, Distribution

__all__ = [
    "COMPONENTS",
    "APP_COMPONENT",
    "QUEUE_COMPONENTS",
    "WIRE_COMPONENTS",
    "PROC_COMPONENTS",
    "TAX_COMPONENTS",
    "LatencyBreakdown",
    "ComponentMatrix",
    "ComponentDistributions",
    "StackCostModel",
    "CycleCosts",
]

COMPONENTS = (
    "client_send_queue",
    "request_proc_stack",
    "request_network_wire",
    "server_recv_queue",
    "server_application",
    "server_send_queue",
    "response_proc_stack",
    "response_network_wire",
    "client_recv_queue",
)

APP_COMPONENT = "server_application"
QUEUE_COMPONENTS = (
    "client_send_queue",
    "server_recv_queue",
    "server_send_queue",
    "client_recv_queue",
)
WIRE_COMPONENTS = ("request_network_wire", "response_network_wire")
PROC_COMPONENTS = ("request_proc_stack", "response_proc_stack")
TAX_COMPONENTS = tuple(c for c in COMPONENTS if c != APP_COMPONENT)

_INDEX = {name: i for i, name in enumerate(COMPONENTS)}


@dataclass
class LatencyBreakdown:
    """One RPC's component latencies, all in seconds."""

    client_send_queue: float = 0.0
    request_proc_stack: float = 0.0
    request_network_wire: float = 0.0
    server_recv_queue: float = 0.0
    server_application: float = 0.0
    server_send_queue: float = 0.0
    response_proc_stack: float = 0.0
    response_network_wire: float = 0.0
    client_recv_queue: float = 0.0

    def __post_init__(self) -> None:
        for name in COMPONENTS:
            if getattr(self, name) < 0:
                raise ValueError(f"negative component {name}: {getattr(self, name)!r}")

    def total(self) -> float:
        """RPC completion time (RCT)."""
        return sum(getattr(self, name) for name in COMPONENTS)

    def tax(self) -> float:
        """The RPC latency tax: everything except application time."""
        return self.total() - self.server_application

    def tax_ratio(self) -> float:
        """Tax as a fraction of completion time (0 for a zero-latency RPC)."""
        t = self.total()
        return self.tax() / t if t > 0 else 0.0

    def queueing(self) -> float:
        """Sum of the four queue components."""
        return sum(getattr(self, name) for name in QUEUE_COMPONENTS)

    def wire(self) -> float:
        """Sum of the two network-wire components."""
        return sum(getattr(self, name) for name in WIRE_COMPONENTS)

    def proc_stack(self) -> float:
        """Sum of the two processing/stack components."""
        return sum(getattr(self, name) for name in PROC_COMPONENTS)

    def as_array(self) -> np.ndarray:
        """The nine components as an ndarray."""
        return np.array([getattr(self, name) for name in COMPONENTS])

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view of the fields."""
        return {name: getattr(self, name) for name in COMPONENTS}

    @classmethod
    def from_array(cls, values: Iterable[float]) -> "LatencyBreakdown":
        """Build from nine component values."""
        vals = list(values)
        if len(vals) != len(COMPONENTS):
            raise ValueError(f"need {len(COMPONENTS)} values, got {len(vals)}")
        return cls(**dict(zip(COMPONENTS, vals)))

    def replace(self, **overrides: float) -> "LatencyBreakdown":
        """A copy with some components overridden."""
        d = self.as_dict()
        d.update(overrides)
        return LatencyBreakdown(**d)


class ComponentMatrix:
    """``(n, 9)`` per-RPC component latencies with named column access.

    This is the unit of exchange between the Tier-A sampler, the Dapper
    collector, and every analysis in :mod:`repro.core`.
    """

    def __init__(self, values: np.ndarray):
        arr = np.asarray(values, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != len(COMPONENTS):
            raise ValueError(
                f"expected shape (n, {len(COMPONENTS)}), got {arr.shape}"
            )
        if np.any(arr < 0):
            raise ValueError("component latencies must be non-negative")
        self.values = arr

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.values.shape[0]

    def column(self, name: str) -> np.ndarray:
        """One percentile column / named component column."""
        return self.values[:, _INDEX[name]]

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def total(self) -> np.ndarray:
        """Sum of all components."""
        return self.values.sum(axis=1)

    def application(self) -> np.ndarray:
        """The server-application column."""
        return self.column(APP_COMPONENT)

    def tax(self) -> np.ndarray:
        """Everything except application time."""
        return self.total() - self.application()

    def tax_ratio(self) -> np.ndarray:
        """Per-row tax over total."""
        t = self.total()
        with np.errstate(invalid="ignore", divide="ignore"):
            r = np.where(t > 0, self.tax() / t, 0.0)
        return r

    def queueing(self) -> np.ndarray:
        """Sum of the four queue components."""
        return sum(self.column(c) for c in QUEUE_COMPONENTS)

    def wire(self) -> np.ndarray:
        """Sum of the two network-wire components."""
        return sum(self.column(c) for c in WIRE_COMPONENTS)

    def proc_stack(self) -> np.ndarray:
        """Sum of the two processing/stack components."""
        return sum(self.column(c) for c in PROC_COMPONENTS)

    def row(self, i: int) -> LatencyBreakdown:
        """One row as a LatencyBreakdown."""
        return LatencyBreakdown.from_array(self.values[i])

    def subset(self, mask: np.ndarray) -> "ComponentMatrix":
        """Rows selected by a boolean mask."""
        return ComponentMatrix(self.values[mask])

    def with_component(self, name: str, values: np.ndarray) -> "ComponentMatrix":
        """A copy with one column replaced (what-if analyses, Fig. 15)."""
        out = self.values.copy()
        out[:, _INDEX[name]] = values
        return ComponentMatrix(out)

    @classmethod
    def concat(cls, parts: Iterable["ComponentMatrix"]) -> "ComponentMatrix":
        """Stack several matrices vertically."""
        arrays = [p.values for p in parts]
        if not arrays:
            return cls(np.zeros((0, len(COMPONENTS))))
        return cls(np.vstack(arrays))

    @classmethod
    def from_breakdowns(cls, rows: Iterable[LatencyBreakdown]) -> "ComponentMatrix":
        """Build from LatencyBreakdown rows."""
        arrays = [r.as_array() for r in rows]
        if not arrays:
            return cls(np.zeros((0, len(COMPONENTS))))
        return cls(np.vstack(arrays))


class ComponentDistributions:
    """Per-component sampling distributions for one RPC method (Tier A).

    Missing components default to zero — e.g. leaf methods inside a fast
    fabric may model client queues as negligible.
    """

    def __init__(self, dists: Mapping[str, Distribution]):
        unknown = set(dists) - set(COMPONENTS)
        if unknown:
            raise ValueError(f"unknown components: {sorted(unknown)}")
        self._dists: Dict[str, Distribution] = {
            name: dists.get(name, Constant(0.0)) for name in COMPONENTS
        }

    def __getitem__(self, name: str) -> Distribution:
        return self._dists[name]

    def sample(self, rng: np.random.Generator, n: int) -> ComponentMatrix:
        """Vectorized draws; see :meth:`Distribution.sample`."""
        cols = np.empty((n, len(COMPONENTS)))
        for i, name in enumerate(COMPONENTS):
            cols[:, i] = np.maximum(self._dists[name].sample(rng, n), 0.0)
        return ComponentMatrix(cols)


# ----------------------------------------------------------------------
# Cost models (time and cycles)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CycleCosts:
    """CPU cycles attributed to one RPC, split by tax category.

    Units are *normalized cycles* — the paper's architecture-neutral unit.
    ``application`` covers the handler; the remaining fields are the cycle
    tax of Fig. 20b.
    """

    application: float
    compression: float
    serialization: float
    networking: float
    rpc_library: float

    def tax(self) -> float:
        """Everything except application time."""
        return self.compression + self.serialization + self.networking + self.rpc_library

    def total(self) -> float:
        """Sum of all components."""
        return self.application + self.tax()

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view of the fields."""
        return {
            "application": self.application,
            "compression": self.compression,
            "serialization": self.serialization,
            "networking": self.networking,
            "rpc_library": self.rpc_library,
        }


@dataclass
class StackCostModel:
    """Size → per-stage processing time and cycle costs.

    Time constants model a single core working through the request path;
    cycle constants express the same work in normalized cycles. Per-RPC
    fixed costs dominate for the small-message majority; per-byte terms
    take over in the elephant tail, matching the intuition that led the
    paper to flag compression/serialization offload (§5.3).
    """

    # --- time (seconds) ---
    serialize_base_s: float = 2.0e-6
    serialize_per_byte_s: float = 0.6e-9
    compress_base_s: float = 3.0e-6
    compress_per_byte_s: float = 2.0e-9
    encrypt_base_s: float = 1.0e-6
    encrypt_per_byte_s: float = 0.4e-9
    netstack_base_s: float = 4.0e-6
    netstack_per_byte_s: float = 0.3e-9
    rpc_library_s: float = 3.0e-6
    # --- cycles (normalized) per RPC-side (request or response leg) ---
    compress_cycles_base: float = 2.4e-4
    compress_cycles_per_byte: float = 1.9e-7
    serialize_cycles_base: float = 1.0e-4
    serialize_cycles_per_byte: float = 7.0e-8
    network_cycles_base: float = 1.5e-4
    network_cycles_per_byte: float = 1.0e-7
    rpc_library_cycles: float = 1.6e-3

    # ------------------------------------------------------------------
    def proc_stack_time_s(self, size_bytes: float) -> float:
        """One leg's (request *or* response) processing + network stack time."""
        if size_bytes < 0:
            raise ValueError(f"negative size {size_bytes!r}")
        return (
            self.serialize_base_s + self.serialize_per_byte_s * size_bytes
            + self.compress_base_s + self.compress_per_byte_s * size_bytes
            + self.encrypt_base_s + self.encrypt_per_byte_s * size_bytes
            + self.netstack_base_s + self.netstack_per_byte_s * size_bytes
            + self.rpc_library_s
        )

    def proc_stack_time_vec(self, sizes: np.ndarray) -> np.ndarray:
        """Vectorized proc_stack_time_s."""
        sizes = np.asarray(sizes, dtype=float)
        per_byte = (
            self.serialize_per_byte_s + self.compress_per_byte_s
            + self.encrypt_per_byte_s + self.netstack_per_byte_s
        )
        base = (
            self.serialize_base_s + self.compress_base_s + self.encrypt_base_s
            + self.netstack_base_s + self.rpc_library_s
        )
        return base + per_byte * sizes

    # ------------------------------------------------------------------
    def cycles(self, request_bytes: float, response_bytes: float,
               application_cycles: float) -> CycleCosts:
        """Cycle attribution for one complete RPC (both legs)."""
        both = request_bytes + response_bytes
        return CycleCosts(
            application=application_cycles,
            compression=2 * self.compress_cycles_base
            + self.compress_cycles_per_byte * both,
            serialization=2 * self.serialize_cycles_base
            + self.serialize_cycles_per_byte * both,
            networking=2 * self.network_cycles_base
            + self.network_cycles_per_byte * both,
            rpc_library=2 * self.rpc_library_cycles,
        )

    def cycles_vec(self, request_bytes: np.ndarray, response_bytes: np.ndarray,
                   application_cycles: np.ndarray) -> Dict[str, np.ndarray]:
        """Vectorized :meth:`cycles`, returning a dict of category arrays."""
        both = np.asarray(request_bytes, dtype=float) + np.asarray(
            response_bytes, dtype=float
        )
        n = both.shape[0]
        return {
            "application": np.asarray(application_cycles, dtype=float),
            "compression": 2 * self.compress_cycles_base
            + self.compress_cycles_per_byte * both,
            "serialization": 2 * self.serialize_cycles_base
            + self.serialize_cycles_per_byte * both,
            "networking": 2 * self.network_cycles_base
            + self.network_cycles_per_byte * both,
            "rpc_library": np.full(n, 2 * self.rpc_library_cycles),
        }
