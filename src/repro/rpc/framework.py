"""A working in-process RPC framework (the "Stubby library" itself).

The simulation tiers model the *costs* of the RPC stack; this module is
the stack as a real, runnable library, so that example applications and
tests exercise genuine code paths end to end:

- services declare methods with request/response :class:`MessageSchema`\\ s
  and register Python handlers;
- a :class:`Channel` marshals a dict through the protobuf-style wire codec,
  optionally compresses (LZSS) and encrypts (ChaCha20) the frame, ships it
  through a transport, and unmarshals the reply;
- servers dispatch by ``/Service/Method``, run interceptor chains on both
  sides, enforce deadlines, and convert handler exceptions into status
  codes;
- the provided :class:`LoopbackTransport` runs everything in-process (the
  byte-level framing is identical to what a socket transport would carry),
  and a tracing interceptor records real Dapper spans with measured stage
  timings.

Time never comes from the wall clock: components share a deterministic
:class:`~repro.sim.clock.ManualClock` by default (the loopback transport
*advances* it by its configured latency instead of sleeping), so deadline
behaviour is bit-identical across runs.  Code that genuinely serves real
clients (the TCP examples) passes ``time.monotonic`` explicitly.

The frame layout (little-endian):

``magic "RRPC" | flags u8 | varint header_len | header | varint body_len |
body``

where ``flags`` bit 0 = body compressed, bit 1 = body encrypted, and the
header is itself a wire-format message (method, trace/span ids, deadline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.rpc import compression, crypto
from repro.sim.clock import ManualClock
from repro.sim.instrument import Probe, resolve_probe
from repro.rpc.errors import RpcError, StatusCode
from repro.rpc.wire import (
    FieldSpec,
    FieldType,
    MessageSchema,
    WireError,
    decode_message,
    decode_varint,
    encode_message,
    encode_varint,
)

__all__ = [
    "MethodDef",
    "ServiceDef",
    "RpcServer",
    "Channel",
    "LoopbackTransport",
    "ClientInterceptor",
    "ServerInterceptor",
    "CallInfo",
    "FrameError",
    "HEADER_SCHEMA",
]

FRAME_MAGIC = b"RRPC"
FLAG_COMPRESSED = 0x01
FLAG_ENCRYPTED = 0x02

# The RPC header rides the same wire format as payloads.
HEADER_SCHEMA = MessageSchema("RpcHeader", [
    FieldSpec(1, "method", FieldType.STRING),      # "/Service/Method"
    FieldSpec(2, "trace_id", FieldType.UINT64),
    FieldSpec(3, "span_id", FieldType.UINT64),
    FieldSpec(4, "parent_id", FieldType.UINT64),
    FieldSpec(5, "deadline_ms", FieldType.UINT64),  # 0 = none
    FieldSpec(6, "status", FieldType.INT64),        # responses only
    FieldSpec(7, "error_message", FieldType.STRING),
])


class FrameError(WireError):
    """Raised on malformed RPC frames."""


@dataclass
class MethodDef:
    """One RPC method: schemas plus the server-side handler."""

    name: str
    request_schema: MessageSchema
    response_schema: MessageSchema
    handler: Callable[[Dict[str, Any]], Dict[str, Any]]


@dataclass
class ServiceDef:
    """A named collection of methods."""

    name: str
    methods: Dict[str, MethodDef] = field(default_factory=dict)

    def method(self, name: str, request_schema: MessageSchema,
               response_schema: MessageSchema):
        """Decorator: register a handler for ``name``."""
        def register(fn):
            """Register with this component for later collection/dispatch."""
            self.methods[name] = MethodDef(name, request_schema,
                                           response_schema, fn)
            return fn
        return register


@dataclass
class CallInfo:
    """What interceptors see about one call."""

    full_method: str
    trace_id: int
    span_id: int
    parent_id: int
    deadline_ms: int


ClientInterceptor = Callable[[CallInfo, Dict[str, Any]], None]
ServerInterceptor = Callable[[CallInfo, Dict[str, Any]], None]


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(header: Dict[str, Any], body: bytes, *,
                 compress: bool = False,
                 key: Optional[bytes] = None,
                 nonce: Optional[bytes] = None) -> bytes:
    """Build one RPC frame from header fields and a serialized body."""
    flags = 0
    if compress:
        body = compression.compress(body)
        flags |= FLAG_COMPRESSED
    if key is not None:
        if nonce is None:
            raise ValueError("encryption requires a nonce")
        body = crypto.chacha20_encrypt(key, nonce, body)
        flags |= FLAG_ENCRYPTED
    header_bytes = encode_message(HEADER_SCHEMA, header)
    return (FRAME_MAGIC + bytes((flags,))
            + encode_varint(len(header_bytes)) + header_bytes
            + encode_varint(len(body)) + body)


def decode_frame(frame: bytes, *, key: Optional[bytes] = None,
                 nonce: Optional[bytes] = None
                 ) -> Tuple[Dict[str, Any], bytes]:
    """Inverse of :func:`encode_frame`; returns (header, body)."""
    if frame[:4] != FRAME_MAGIC:
        raise FrameError("bad frame magic")
    if len(frame) < 5:
        raise FrameError("truncated frame")
    flags = frame[4]
    hlen, pos = decode_varint(frame, 5)
    header_end = pos + hlen
    if header_end > len(frame):
        raise FrameError("truncated header")
    header = decode_message(HEADER_SCHEMA, frame[pos:header_end])
    blen, pos = decode_varint(frame, header_end)
    if pos + blen > len(frame):
        raise FrameError("truncated body")
    body = frame[pos:pos + blen]
    if flags & FLAG_ENCRYPTED:
        if key is None or nonce is None:
            raise FrameError("frame is encrypted; key/nonce required")
        body = crypto.chacha20_decrypt(key, nonce, body)
    if flags & FLAG_COMPRESSED:
        try:
            body = compression.decompress(body)
        except compression.CompressionError as err:
            raise FrameError(f"corrupt compressed body: {err}") from err
    return header, body


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------
class RpcServer:
    """Dispatches frames to registered service handlers."""

    def __init__(self, *, key: Optional[bytes] = None,
                 nonce: Optional[bytes] = None,
                 clock: Optional[Callable[[], float]] = None,
                 probe: Optional[Probe] = None):
        self._services: Dict[str, ServiceDef] = {}
        self._interceptors: List[ServerInterceptor] = []
        self._key = key
        self._nonce = nonce
        self._clock = clock if clock is not None else ManualClock()
        # Stage timings are charged to the server's own clock; with the
        # default ManualClock they are zero but the stage *markers*
        # still fire, so probes can count dispatches deterministically.
        self._probe = resolve_probe(probe)
        self.calls_served = 0

    def register(self, service: ServiceDef) -> None:
        """Register with this component for later collection/dispatch."""
        if service.name in self._services:
            raise ValueError(f"service {service.name!r} already registered")
        self._services[service.name] = service

    def add_interceptor(self, interceptor: ServerInterceptor) -> None:
        """Append an interceptor to the chain."""
        self._interceptors.append(interceptor)

    # ------------------------------------------------------------------
    def handle_frame(self, frame: bytes) -> bytes:
        """Process one request frame; always returns a response frame."""
        probe = self._probe
        t_recv_s = self._clock() if probe is not None else 0.0
        header, body = decode_frame(frame, key=self._key, nonce=self._nonce)
        full_method = header.get("method", "")
        info = CallInfo(
            full_method=full_method,
            trace_id=header.get("trace_id", 0),
            span_id=header.get("span_id", 0),
            parent_id=header.get("parent_id", 0),
            deadline_ms=header.get("deadline_ms", 0),
        )
        if probe is not None:
            probe.rpc_stage("server/decode", self._clock() - t_recv_s)
        try:
            method = self._resolve(full_method)
            request = decode_message(method.request_schema, body)
            for interceptor in self._interceptors:
                interceptor(info, request)
            t_handler_s = self._clock() if probe is not None else 0.0
            response = method.handler(request)
            if probe is not None:
                probe.rpc_stage("server/handler",
                                self._clock() - t_handler_s)
            payload = encode_message(method.response_schema, response or {})
            status = StatusCode.OK
            message = ""
        except RpcError as err:
            payload, status, message = b"", err.status, str(err)
        except WireError as err:
            payload, status, message = b"", StatusCode.INVALID_ARGUMENT, str(err)
        except KeyError as err:
            payload, status, message = b"", StatusCode.UNIMPLEMENTED, str(err)
        except Exception as err:  # handler bug -> INTERNAL, never a crash
            payload, status, message = b"", StatusCode.INTERNAL, repr(err)
        self.calls_served += 1
        t_encode_s = self._clock() if probe is not None else 0.0
        reply = encode_frame(
            {
                "method": full_method,
                "trace_id": info.trace_id,
                "span_id": info.span_id,
                "status": status.value,
                "error_message": message,
            },
            payload,
            compress=self._should_compress(payload),
            key=self._key, nonce=self._nonce,
        )
        if probe is not None:
            probe.rpc_stage("server/encode", self._clock() - t_encode_s)
        return reply

    # ------------------------------------------------------------------
    def _resolve(self, full_method: str) -> MethodDef:
        try:
            _, service_name, method_name = full_method.split("/")
        except ValueError:
            raise KeyError(f"malformed method {full_method!r}")
        service = self._services.get(service_name)
        if service is None or method_name not in service.methods:
            raise KeyError(f"unknown method {full_method!r}")
        return service.methods[method_name]

    @staticmethod
    def _should_compress(payload: bytes) -> bool:
        return len(payload) >= 256


# ----------------------------------------------------------------------
# Transports and channel
# ----------------------------------------------------------------------
class LoopbackTransport:
    """Delivers frames to a server in-process.

    Byte-for-byte identical frames to what a socket transport would send.
    Artificial latency is charged to a deterministic :class:`ManualClock`
    (shared with any :class:`Channel` built on this transport), so examples
    show deadline enforcement without sleeping or reading the wall clock.
    """

    def __init__(self, server: RpcServer, latency_s: float = 0.0,
                 clock: Optional[ManualClock] = None):
        self.server = server
        self.latency_s = latency_s
        self.clock = clock if clock is not None else ManualClock()
        self.bytes_sent = 0
        self.bytes_received = 0

    def round_trip(self, frame: bytes) -> bytes:
        """Send one frame and return the reply frame."""
        self.bytes_sent += len(frame)
        if self.latency_s:
            self.clock.advance(self.latency_s)
        reply = self.server.handle_frame(frame)
        self.bytes_received += len(reply)
        return reply


class Channel:
    """The client half: stubs call through here."""

    def __init__(self, transport: LoopbackTransport, *,
                 compress_threshold: int = 256,
                 key: Optional[bytes] = None,
                 nonce: Optional[bytes] = None,
                 clock: Optional[Callable[[], float]] = None,
                 probe: Optional[Probe] = None):
        self.transport = transport
        self.compress_threshold = compress_threshold
        self._key = key
        self._nonce = nonce
        # Share the transport's clock when it has one, so latency the
        # transport charges is visible to deadline checks here.
        if clock is None:
            clock = getattr(transport, "clock", None) or ManualClock()
        self._clock = clock
        self._probe = resolve_probe(probe)
        self._interceptors: List[ClientInterceptor] = []
        self._next_id = 1
        self.calls_made = 0

    def add_interceptor(self, interceptor: ClientInterceptor) -> None:
        """Append an interceptor to the chain."""
        self._interceptors.append(interceptor)

    # ------------------------------------------------------------------
    def call(self, service: str, method: str, request: Dict[str, Any],
             request_schema: MessageSchema, response_schema: MessageSchema,
             *, deadline_s: Optional[float] = None,
             trace_id: Optional[int] = None,
             parent_id: int = 0) -> Dict[str, Any]:
        """Invoke ``/service/method``; raises :class:`RpcError` on failure."""
        full_method = f"/{service}/{method}"
        span_id = self._next_id
        self._next_id += 1
        info = CallInfo(
            full_method=full_method,
            trace_id=trace_id if trace_id is not None else span_id,
            span_id=span_id,
            parent_id=parent_id,
            deadline_ms=int(deadline_s * 1000) if deadline_s else 0,
        )
        for interceptor in self._interceptors:
            interceptor(info, request)

        body = encode_message(request_schema, request)
        frame = encode_frame(
            {
                "method": full_method,
                "trace_id": info.trace_id,
                "span_id": info.span_id,
                "parent_id": info.parent_id,
                "deadline_ms": info.deadline_ms,
            },
            body,
            compress=len(body) >= self.compress_threshold,
            key=self._key, nonce=self._nonce,
        )
        start_s = self._clock()
        reply = self.transport.round_trip(frame)
        elapsed_s = self._clock() - start_s
        self.calls_made += 1
        probe = self._probe
        if probe is not None:
            probe.rpc_stage("client/round_trip", elapsed_s)

        if deadline_s is not None and elapsed_s > deadline_s:
            if probe is not None:
                probe.rpc_deadline_hit(full_method, elapsed_s, deadline_s)
            raise RpcError(StatusCode.DEADLINE_EXCEEDED,
                           f"{full_method} took {elapsed_s:.3f}s "
                           f"(deadline {deadline_s:.3f}s)")
        header, payload = decode_frame(reply, key=self._key,
                                       nonce=self._nonce)
        status = StatusCode(header.get("status", 0))
        if status.is_error:
            raise RpcError(status, header.get("error_message", ""))
        return decode_message(response_schema, payload)
