"""Client-stub generation (the ``protoc`` role).

Real RPC stacks don't make applications call ``channel.call(service,
method, request, schema, schema)`` by hand — a generator emits typed stubs
from the service definition. This module provides both forms:

- :func:`make_stub` builds a stub *object* at runtime: one Python method
  per RPC, schemas bound, with per-call ``deadline_s``/trace overrides.
- :func:`generate_stub_source` renders the equivalent stub as Python
  source text (what a build-time generator would write into a
  ``_pb2_grpc.py``-style file), which is importable via ``exec`` and kept
  deterministic so it can be checked into a client repository.
"""

from __future__ import annotations

import keyword
import re
from typing import Any, Dict, Optional

from repro.rpc.framework import Channel, ServiceDef

__all__ = ["make_stub", "generate_stub_source", "StubError"]


class StubError(ValueError):
    """Raised for service definitions a stub cannot be generated for."""


_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _method_attr(name: str) -> str:
    """Python attribute name for an RPC method (CamelCase -> snake_case)."""
    snake = re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()
    if not _IDENT.match(snake) or keyword.iskeyword(snake):
        raise StubError(f"cannot derive a Python name from method {name!r}")
    return snake


class _Stub:
    """A dynamically assembled client stub; see :func:`make_stub`."""

    def __init__(self, channel: Channel, service: ServiceDef):
        self._channel = channel
        self._service = service

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self._service.name}Stub methods={sorted(self._service.methods)}>"


def make_stub(channel: Channel, service: ServiceDef):
    """Build a typed stub for ``service`` bound to ``channel``.

    >>> # stub = make_stub(channel, kv_service)
    >>> # stub.get({"key": "user:1"}, deadline_s=0.1)
    """
    if not service.methods:
        raise StubError(f"service {service.name!r} has no methods")
    stub = _Stub(channel, service)
    for method_name, mdef in service.methods.items():
        attr = _method_attr(method_name)

        def call(request: Dict[str, Any], *,
                 deadline_s: Optional[float] = None,
                 trace_id: Optional[int] = None,
                 parent_id: int = 0,
                 _mdef=mdef) -> Dict[str, Any]:
            """Issue one RPC."""
            return channel.call(
                service.name, _mdef.name, request,
                _mdef.request_schema, _mdef.response_schema,
                deadline_s=deadline_s, trace_id=trace_id,
                parent_id=parent_id,
            )

        call.__name__ = attr
        call.__doc__ = (f"Invoke /{service.name}/{mdef.name} "
                        f"({mdef.request_schema.name} -> "
                        f"{mdef.response_schema.name}).")
        setattr(stub, attr, call)
    return stub


_TEMPLATE = '''\
"""Generated client stub for service {service!r}. DO NOT EDIT.

Regenerate with repro.rpc.stubgen.generate_stub_source().
"""


class {service}Stub:
    """Typed client for /{service}/*; bind to a repro.rpc.framework.Channel."""

    SERVICE = {service!r}

    def __init__(self, channel, schemas):
        """``schemas`` maps method name -> (request_schema, response_schema)."""
        self._channel = channel
        self._schemas = schemas
{methods}
'''

_METHOD_TEMPLATE = '''\

    def {attr}(self, request, *, deadline_s=None, trace_id=None, parent_id=0):
        """Invoke /{service}/{method}."""
        req_schema, resp_schema = self._schemas[{method!r}]
        return self._channel.call(
            {service!r}, {method!r}, request, req_schema, resp_schema,
            deadline_s=deadline_s, trace_id=trace_id, parent_id=parent_id,
        )
'''


def generate_stub_source(service: ServiceDef) -> str:
    """Render the stub as deterministic Python source text."""
    if not service.methods:
        raise StubError(f"service {service.name!r} has no methods")
    if not _IDENT.match(service.name) or keyword.iskeyword(service.name):
        raise StubError(f"service name {service.name!r} is not a valid "
                        "Python identifier")
    methods = "".join(
        _METHOD_TEMPLATE.format(attr=_method_attr(name),
                                service=service.name, method=name)
        for name in sorted(service.methods)
    )
    return _TEMPLATE.format(service=service.name, methods=methods)
