"""Discrete-event simulation substrate.

This package provides the event-driven core used by the fleet simulator:

- :mod:`repro.sim.engine` — the event loop and simulated clock.
- :mod:`repro.sim.clock` — deterministic wall-clock stand-ins
  (:class:`ManualClock`, :class:`SimulatorClock`) for components that need
  elapsed time without reading the host clock.
- :mod:`repro.sim.queues` — FIFO/priority queues with server pools and
  waiting-time accounting.
- :mod:`repro.sim.instrument` — the :class:`Probe` telemetry interface
  (no-op here; aggregating implementations live in ``repro.obs``, so the
  sim layer stays free of upward dependencies).
- :mod:`repro.sim.random` — deterministic, named RNG streams derived from a
  single root seed, so that independent subsystems draw from independent
  streams and a run is reproducible end to end.
- :mod:`repro.sim.distributions` — the distribution library (lognormal,
  Pareto, Zipf, mixtures, ...) used to model heavy-tailed RPC behaviour.

All simulated time is in **seconds**, sizes are in **bytes**, and CPU costs
are in **normalized cycles** (the paper's architecture-neutral cycle unit).
"""

from repro.sim.distributions import (
    Constant,
    Distribution,
    Empirical,
    Exponential,
    LogNormal,
    Mixture,
    Pareto,
    Shifted,
    Truncated,
    Uniform,
    Weibull,
    zipf_weights,
)
from repro.sim.clock import ManualClock, SimulatorClock
from repro.sim.engine import Event, Simulator
from repro.sim.instrument import NullProbe, Probe, ProbeGroup
from repro.sim.queues import QueueStats, ServerPool
from repro.sim.random import RngRegistry

__all__ = [
    "Constant",
    "Distribution",
    "Empirical",
    "Event",
    "Exponential",
    "LogNormal",
    "ManualClock",
    "Mixture",
    "NullProbe",
    "Pareto",
    "Probe",
    "ProbeGroup",
    "QueueStats",
    "RngRegistry",
    "ServerPool",
    "Shifted",
    "Simulator",
    "SimulatorClock",
    "Truncated",
    "Uniform",
    "Weibull",
    "zipf_weights",
]
