"""Runtime-telemetry probes for the simulation substrate.

The engine, queues, and the RPC layers built on top of them are hot
paths: a study fires millions of events, and observability must not
change what it observes. This module therefore defines the *interface*
only — a :class:`Probe` with one no-op hook per instrumentation point —
and leaves every aggregating implementation (metric counters, Chrome
trace builders, heartbeat panels) to :mod:`repro.obs.telemetry`, keeping
the sim layer free of upward dependencies.

Two design rules keep the overhead at zero when nobody is listening:

- Instrumented code guards every hook call with ``if probe is not None``
  — one attribute load and a pointer test, nothing else.
- :func:`resolve_probe` normalizes the canonical discard sentinel
  (:class:`NullProbe` — the exact class, not subclasses) to ``None``, so
  "instrumented but unobserved" runs execute the identical fast path as
  uninstrumented ones. Subclasses that override even a single hook are
  kept and called.

Hooks receive plain scalars (simulated time, names, counts) rather than
engine objects, so probes cannot accidentally mutate simulation state
and events are cheap to record or serialize.
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = ["Probe", "NullProbe", "ProbeGroup", "resolve_probe"]


class Probe:
    """The instrumentation interface: every hook is a no-op.

    Implementations subclass and override only the hooks they care
    about. The hooks and their call sites:

    Engine (:class:`repro.sim.engine.Simulator`):

    - :meth:`event_scheduled` — after every ``at``/``after`` push;
    - :meth:`event_fired` — before a popped event's callback runs;
    - :meth:`event_cancelled` — when a lazily-cancelled event is
      discarded from the heap (cancellation itself is O(1) and silent;
      the discard is the deterministic point in event order).

    Queues (:class:`repro.sim.queues.ServerPool`):

    - :meth:`job_enqueued` / :meth:`job_started` / :meth:`job_finished`.

    DES RPC channel (:class:`repro.rpc.channel.RpcClientTask`):

    - :meth:`rpc_attempt` / :meth:`rpc_hedge` / :meth:`rpc_completed`.

    Real RPC library (:mod:`repro.rpc.framework`):

    - :meth:`rpc_stage` — per-stage server/client timings;
    - :meth:`rpc_deadline_hit` — a call exceeded its deadline.

    Streaming study pipeline (:mod:`repro.core.parallel`):

    - :meth:`shard_spilled` — a generated shard was written to the
      columnar spill store;
    - :meth:`shard_folded` — a shard was folded into reducer state.
    """

    __slots__ = ()

    # -- engine --------------------------------------------------------
    def event_scheduled(self, time_s: float, heap_size: int) -> None:
        """An event was pushed for simulated ``time_s``."""

    def event_fired(self, time_s: float, heap_size: int) -> None:
        """The clock advanced to ``time_s`` and a callback is about to run."""

    def event_cancelled(self, time_s: float) -> None:
        """A cancelled event was discarded at its scheduled ``time_s``."""

    # -- queues --------------------------------------------------------
    def job_enqueued(self, pool: str, time_s: float, depth: int) -> None:
        """A job joined ``pool``'s queue (``depth`` jobs now waiting)."""

    def job_started(self, pool: str, time_s: float, wait_s: float) -> None:
        """A job started serving after ``wait_s`` in ``pool``'s queue."""

    def job_finished(self, pool: str, time_s: float, service_s: float) -> None:
        """A job finished its ``service_s`` of work on ``pool``."""

    # -- DES RPC channel ----------------------------------------------
    def rpc_attempt(self, method: str, time_s: float, attempt: int) -> None:
        """Attempt ``attempt`` (0 = first) of one call of ``method``."""

    def rpc_hedge(self, method: str, time_s: float) -> None:
        """A hedged backup copy of ``method`` was launched."""

    def rpc_completed(self, method: str, time_s: float, status: str,
                      latency_s: float, attempts: int,
                      trace_id: int = 0) -> None:
        """A call finished (winning attempt only) with ``latency_s``.

        ``trace_id`` is the Dapper trace the call belongs to (0 when the
        caller has none) — probes that export distributions use it to
        attach tail exemplars."""

    # -- real RPC library ---------------------------------------------
    def rpc_stage(self, stage: str, elapsed_s: float) -> None:
        """One framework stage (e.g. ``server/handler``) took ``elapsed_s``."""

    def rpc_deadline_hit(self, method: str, elapsed_s: float,
                         deadline_s: float) -> None:
        """``method`` blew its deadline: ``elapsed_s`` > ``deadline_s``."""

    # -- streaming study pipeline --------------------------------------
    def shard_spilled(self, shard_index: int, n_trees: int, n_nodes: int,
                      n_bytes: int) -> None:
        """Shard ``shard_index`` was spilled (``n_bytes`` on disk)."""

    def shard_folded(self, shard_index: int, n_trees: int,
                     n_nodes: int) -> None:
        """Shard ``shard_index`` was folded into the reducer state."""


class NullProbe(Probe):
    """The canonical discard probe.

    Passing this (exact class) anywhere a probe is accepted is
    equivalent to passing ``None``: :func:`resolve_probe` folds it onto
    the uninstrumented fast path, so its hooks are never even called.
    """

    __slots__ = ()


class ProbeGroup(Probe):
    """Fans every hook out to several probes, in order.

    Member probes are resolved through :func:`resolve_probe`, so nested
    ``NullProbe``\\ s cost nothing and a group of nothing behaves as
    ``None`` at the call sites (callers should install
    ``resolve_probe(ProbeGroup(...))``).
    """

    __slots__ = ("probes",)

    def __init__(self, *probes: Optional[Probe]):
        resolved = [resolve_probe(p) for p in probes]
        self.probes = tuple(p for p in resolved if p is not None)

    def __iter__(self) -> Iterable[Probe]:
        return iter(self.probes)

    def event_scheduled(self, time_s, heap_size):
        for p in self.probes:
            p.event_scheduled(time_s, heap_size)

    def event_fired(self, time_s, heap_size):
        for p in self.probes:
            p.event_fired(time_s, heap_size)

    def event_cancelled(self, time_s):
        for p in self.probes:
            p.event_cancelled(time_s)

    def job_enqueued(self, pool, time_s, depth):
        for p in self.probes:
            p.job_enqueued(pool, time_s, depth)

    def job_started(self, pool, time_s, wait_s):
        for p in self.probes:
            p.job_started(pool, time_s, wait_s)

    def job_finished(self, pool, time_s, service_s):
        for p in self.probes:
            p.job_finished(pool, time_s, service_s)

    def rpc_attempt(self, method, time_s, attempt):
        for p in self.probes:
            p.rpc_attempt(method, time_s, attempt)

    def rpc_hedge(self, method, time_s):
        for p in self.probes:
            p.rpc_hedge(method, time_s)

    def rpc_completed(self, method, time_s, status, latency_s, attempts,
                      trace_id=0):
        for p in self.probes:
            p.rpc_completed(method, time_s, status, latency_s, attempts,
                            trace_id)

    def rpc_stage(self, stage, elapsed_s):
        for p in self.probes:
            p.rpc_stage(stage, elapsed_s)

    def rpc_deadline_hit(self, method, elapsed_s, deadline_s):
        for p in self.probes:
            p.rpc_deadline_hit(method, elapsed_s, deadline_s)

    def shard_spilled(self, shard_index, n_trees, n_nodes, n_bytes):
        for p in self.probes:
            p.shard_spilled(shard_index, n_trees, n_nodes, n_bytes)

    def shard_folded(self, shard_index, n_trees, n_nodes):
        for p in self.probes:
            p.shard_folded(shard_index, n_trees, n_nodes)


def resolve_probe(probe: Optional[Probe]) -> Optional[Probe]:
    """Normalize a probe argument onto the fast path.

    ``None`` and the exact :class:`NullProbe` class map to ``None`` (no
    hook calls at all); an empty :class:`ProbeGroup` likewise. Anything
    else is returned unchanged.
    """
    if probe is None or type(probe) is NullProbe:
        return None
    if type(probe) is ProbeGroup and not probe.probes:
        return None
    return probe
