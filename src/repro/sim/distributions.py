"""Parametric distributions for heavy-tailed RPC behaviour.

The paper's fleet-wide findings are distributional: lognormal-ish latencies
spanning microseconds to seconds, Zipf-like method popularity, Pareto-tailed
sizes and fanouts. This module provides a small, composable distribution
algebra:

- every distribution is vectorized (``sample(rng, n)`` returns an ndarray),
- distributions expose analytic ``mean()`` and ``quantile(q)`` where a closed
  form exists (used by calibration and by tests),
- :class:`Mixture`, :class:`Truncated` and :class:`Shifted` compose the
  primitives into the multi-modal, bounded shapes real methods exhibit.

All parameters are in the unit of the quantity being modelled (seconds,
bytes, cycles); the distributions themselves are unit-agnostic.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "AliasSampler",
    "Distribution",
    "Constant",
    "Uniform",
    "Exponential",
    "LogNormal",
    "Pareto",
    "Weibull",
    "Mixture",
    "Truncated",
    "Shifted",
    "Empirical",
    "zipf_weights",
    "lognormal_from_median_p99",
]

_SQRT2 = math.sqrt(2.0)

# Standard-normal quantiles used to convert (median, p99) pairs into
# lognormal parameters: Phi^-1(0.99).
_Z99 = 2.3263478740408408


def _ndtr(x: float) -> float:
    """Standard normal CDF (avoids a scipy dependency in the core library)."""
    return 0.5 * (1.0 + math.erf(x / _SQRT2))


def _ndtri(p: float) -> float:
    """Standard normal inverse CDF via Acklam's rational approximation.

    Accurate to ~1e-9 over (0, 1), which is far tighter than anything the
    calibration needs.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {p!r}")
    # Coefficients for the central and tail rational approximations.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    plow, phigh = 0.02425, 1 - 0.02425
    if p < plow:
        q = math.sqrt(-2 * math.log(p))
        num = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        den = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        return num / den
    if p > phigh:
        q = math.sqrt(-2 * math.log(1 - p))
        num = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        den = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        return -num / den
    q = p - 0.5
    r = q * q
    num = ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
    den = ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
    return q * num / den


class Distribution:
    """Base class for all distributions.

    Subclasses implement :meth:`sample`; ``mean`` and ``quantile`` are
    optional analytic conveniences and raise :class:`NotImplementedError`
    where no closed form exists.
    """

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Vectorized draws; see :meth:`Distribution.sample`."""
        raise NotImplementedError

    def sample_one(self, rng: np.random.Generator) -> float:
        """One scalar draw."""
        return float(self.sample(rng, 1)[0])

    def buffered(self, rng: np.random.Generator, size: int = 1024):
        """A :class:`repro.sim.random.BufferedDraws` over this distribution
        (cheap scalar draws for the DES hot path)."""
        from repro.sim.random import BufferedDraws

        return BufferedDraws(lambda n: self.sample(rng, n), size=size)

    def mean(self) -> float:
        """Analytic mean; see :meth:`Distribution.mean`."""
        raise NotImplementedError(f"{type(self).__name__} has no analytic mean")

    def quantile(self, q: float) -> float:
        """Analytic quantile; see :meth:`Distribution.quantile`."""
        raise NotImplementedError(f"{type(self).__name__} has no analytic quantile")


class Constant(Distribution):
    """A degenerate distribution; useful for fixed protocol costs."""

    def __init__(self, value: float):
        self.value = float(value)

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Vectorized draws; see :meth:`Distribution.sample`."""
        return np.full(n, self.value)

    def mean(self) -> float:
        """Analytic mean; see :meth:`Distribution.mean`."""
        return self.value

    def quantile(self, q: float) -> float:
        """Analytic quantile; see :meth:`Distribution.quantile`."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        return self.value

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


class Uniform(Distribution):
    """Uniform over [low, high]."""
    def __init__(self, low: float, high: float):
        if high < low:
            raise ValueError(f"high {high!r} < low {low!r}")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Vectorized draws; see :meth:`Distribution.sample`."""
        return rng.uniform(self.low, self.high, size=n)

    def mean(self) -> float:
        """Analytic mean; see :meth:`Distribution.mean`."""
        return 0.5 * (self.low + self.high)

    def quantile(self, q: float) -> float:
        """Analytic quantile; see :meth:`Distribution.quantile`."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        return self.low + q * (self.high - self.low)

    def __repr__(self) -> str:
        return f"Uniform({self.low!r}, {self.high!r})"


class Exponential(Distribution):
    """Exponential with the given mean (scale), not rate."""

    def __init__(self, mean: float):
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        self._mean = float(mean)

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Vectorized draws; see :meth:`Distribution.sample`."""
        return rng.exponential(self._mean, size=n)

    def mean(self) -> float:
        """Analytic mean; see :meth:`Distribution.mean`."""
        return self._mean

    def quantile(self, q: float) -> float:
        """Analytic quantile; see :meth:`Distribution.quantile`."""
        if not 0.0 <= q < 1.0:
            raise ValueError(f"quantile must be in [0, 1), got {q!r}")
        return -self._mean * math.log1p(-q)

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean!r})"


class LogNormal(Distribution):
    """Lognormal parameterized by the underlying normal's (mu, sigma).

    Prefer :func:`lognormal_from_median_p99` or :meth:`from_median_sigma`
    when calibrating against paper-reported percentiles.
    """

    def __init__(self, mu: float, sigma: float):
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma!r}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    @classmethod
    def from_median_sigma(cls, median: float, sigma: float) -> "LogNormal":
        """Lognormal from its median and log-space sigma."""
        if median <= 0:
            raise ValueError(f"median must be positive, got {median!r}")
        return cls(math.log(median), sigma)

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Vectorized draws; see :meth:`Distribution.sample`."""
        return rng.lognormal(self.mu, self.sigma, size=n)

    def mean(self) -> float:
        """Analytic mean; see :meth:`Distribution.mean`."""
        return math.exp(self.mu + 0.5 * self.sigma**2)

    def median(self) -> float:
        """Analytic median."""
        return math.exp(self.mu)

    def quantile(self, q: float) -> float:
        """Analytic quantile; see :meth:`Distribution.quantile`."""
        if self.sigma == 0.0:
            return math.exp(self.mu)
        return math.exp(self.mu + self.sigma * _ndtri(q))

    def cdf(self, x: float) -> float:
        """Analytic CDF at ``x``."""
        if x <= 0:
            return 0.0
        if self.sigma == 0.0:
            return 1.0 if math.log(x) >= self.mu else 0.0
        return _ndtr((math.log(x) - self.mu) / self.sigma)

    def __repr__(self) -> str:
        return f"LogNormal(mu={self.mu:.4f}, sigma={self.sigma:.4f})"


def lognormal_from_median_p99(median: float, p99: float) -> LogNormal:
    """Build a lognormal hitting a target (median, P99) pair.

    This is the main calibration entry point: the paper reports per-method
    medians and tail percentiles, and this converts such a pair into
    distribution parameters exactly.
    """
    if median <= 0 or p99 < median:
        raise ValueError(f"need 0 < median <= p99, got ({median!r}, {p99!r})")
    sigma = math.log(p99 / median) / _Z99
    return LogNormal(math.log(median), sigma)


class Pareto(Distribution):
    """Pareto Type I with scale ``xm`` and shape ``alpha`` (tail index)."""

    def __init__(self, xm: float, alpha: float):
        if xm <= 0 or alpha <= 0:
            raise ValueError(f"xm and alpha must be positive, got ({xm!r}, {alpha!r})")
        self.xm = float(xm)
        self.alpha = float(alpha)

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        # numpy's pareto is the Lomax (shifted) form; convert to Type I.
        """Vectorized draws; see :meth:`Distribution.sample`."""
        return self.xm * (1.0 + rng.pareto(self.alpha, size=n))

    def mean(self) -> float:
        """Analytic mean; see :meth:`Distribution.mean`."""
        if self.alpha <= 1.0:
            return math.inf
        return self.alpha * self.xm / (self.alpha - 1.0)

    def quantile(self, q: float) -> float:
        """Analytic quantile; see :meth:`Distribution.quantile`."""
        if not 0.0 <= q < 1.0:
            raise ValueError(f"quantile must be in [0, 1), got {q!r}")
        return self.xm * (1.0 - q) ** (-1.0 / self.alpha)

    def __repr__(self) -> str:
        return f"Pareto(xm={self.xm!r}, alpha={self.alpha!r})"


class Weibull(Distribution):
    """Weibull with ``scale`` and ``shape``; sub-exponential tails for shape<1."""

    def __init__(self, scale: float, shape: float):
        if scale <= 0 or shape <= 0:
            raise ValueError(f"scale and shape must be positive, got ({scale!r}, {shape!r})")
        self.scale = float(scale)
        self.shape = float(shape)

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Vectorized draws; see :meth:`Distribution.sample`."""
        return self.scale * rng.weibull(self.shape, size=n)

    def mean(self) -> float:
        """Analytic mean; see :meth:`Distribution.mean`."""
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def quantile(self, q: float) -> float:
        """Analytic quantile; see :meth:`Distribution.quantile`."""
        if not 0.0 <= q < 1.0:
            raise ValueError(f"quantile must be in [0, 1), got {q!r}")
        return self.scale * (-math.log1p(-q)) ** (1.0 / self.shape)

    def __repr__(self) -> str:
        return f"Weibull(scale={self.scale!r}, shape={self.shape!r})"


class Mixture(Distribution):
    """A weighted mixture of component distributions.

    Used for bimodal methods (e.g. a cache with hit/miss paths) and for the
    "mostly fast with a heavy tail" shapes in Figs. 2, 12 and 13.
    """

    def __init__(self, components: Sequence[Distribution], weights: Sequence[float]):
        if len(components) != len(weights):
            raise ValueError("components and weights must have equal length")
        if not components:
            raise ValueError("mixture needs at least one component")
        w = np.asarray(weights, dtype=float)
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError(f"weights must be non-negative and sum > 0, got {weights!r}")
        self.components = list(components)
        self.weights = w / w.sum()

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Vectorized draws; see :meth:`Distribution.sample`."""
        choices = rng.choice(len(self.components), size=n, p=self.weights)
        out = np.empty(n)
        for idx, comp in enumerate(self.components):
            mask = choices == idx
            count = int(mask.sum())
            if count:
                out[mask] = comp.sample(rng, count)
        return out

    def mean(self) -> float:
        """Analytic mean; see :meth:`Distribution.mean`."""
        return float(sum(w * c.mean() for w, c in zip(self.weights, self.components)))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{w:.3f}*{c!r}" for w, c in zip(self.weights, self.components)
        )
        return f"Mixture({parts})"


class Truncated(Distribution):
    """Clip another distribution into ``[low, high]``.

    Clipping (rather than rejection) is deliberate: it models saturation
    effects like minimum message sizes (a 64 B cache line) and RPC deadlines.
    """

    def __init__(self, inner: Distribution, low: Optional[float] = None,
                 high: Optional[float] = None):
        if low is not None and high is not None and high < low:
            raise ValueError(f"high {high!r} < low {low!r}")
        self.inner = inner
        self.low = low
        self.high = high

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Vectorized draws; see :meth:`Distribution.sample`."""
        x = self.inner.sample(rng, n)
        if self.low is not None or self.high is not None:
            x = np.clip(x, self.low, self.high)
        return x

    def __repr__(self) -> str:
        return f"Truncated({self.inner!r}, low={self.low!r}, high={self.high!r})"


class Shifted(Distribution):
    """Add a constant offset — e.g. a propagation-delay floor under jitter."""

    def __init__(self, inner: Distribution, offset: float):
        self.inner = inner
        self.offset = float(offset)

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Vectorized draws; see :meth:`Distribution.sample`."""
        return self.inner.sample(rng, n) + self.offset

    def mean(self) -> float:
        """Analytic mean; see :meth:`Distribution.mean`."""
        return self.inner.mean() + self.offset

    def quantile(self, q: float) -> float:
        """Analytic quantile; see :meth:`Distribution.quantile`."""
        return self.inner.quantile(q) + self.offset

    def __repr__(self) -> str:
        return f"Shifted({self.inner!r}, offset={self.offset!r})"


class Empirical(Distribution):
    """Resample (with replacement) from observed values.

    Used to replay Dapper-collected component samples through what-if
    analyses without assuming a parametric form.
    """

    def __init__(self, values: Sequence[float]):
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            raise ValueError("empirical distribution needs at least one value")
        self.values = arr

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Vectorized draws; see :meth:`Distribution.sample`."""
        return rng.choice(self.values, size=n, replace=True)

    def mean(self) -> float:
        """Analytic mean; see :meth:`Distribution.mean`."""
        return float(self.values.mean())

    def quantile(self, q: float) -> float:
        """Analytic quantile; see :meth:`Distribution.quantile`."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        return float(np.quantile(self.values, q))

    def __repr__(self) -> str:
        return f"Empirical(n={self.values.size})"


class AliasSampler:
    """O(1) categorical sampling via Walker/Vose alias tables.

    ``rng.choice(n, p=weights)`` pays an O(n) cumulative-sum walk *per
    call*; the call-tree generator makes one such draw per child, which
    made it the analysis pipeline's bottleneck. An alias table spends
    O(n) once at construction and then answers every draw with one
    uniform integer, one uniform float, and one comparison — and the
    draws vectorize: ``sample(rng, k)`` costs two bulk RNG calls
    regardless of the table size.

    The table is exact (up to float rounding in the normalization), so
    draws follow the given weights identically to ``rng.choice(p=...)``
    in distribution; only the stream of RNG values consumed differs.
    """

    __slots__ = ("n", "prob", "alias", "weights")

    def __init__(self, weights: Sequence[float]):
        w = np.asarray(weights, dtype=float)
        if w.ndim != 1 or w.size == 0:
            raise ValueError("weights must be a non-empty 1-d sequence")
        if np.any(w < 0) or not np.all(np.isfinite(w)) or w.sum() <= 0:
            raise ValueError(
                f"weights must be finite, non-negative, and sum > 0, got {weights!r}"
            )
        self.n = int(w.size)
        self.weights = w / w.sum()

        scaled = self.weights * self.n
        prob = np.ones(self.n)
        alias = np.arange(self.n, dtype=np.int64)
        # Vose's stable construction: pair one under-full column with one
        # over-full column until both stacks drain.
        small = [i for i in range(self.n) if scaled[i] < 1.0]
        large = [i for i in range(self.n) if scaled[i] >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] -= 1.0 - scaled[s]
            (large if scaled[l] >= 1.0 else small).append(l)
        # Residual columns (float rounding) keep probability one.
        self.prob = prob
        self.alias = alias

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw ``n`` category indices (vectorized, O(1) per draw)."""
        idx = rng.integers(0, self.n, size=n)
        keep = rng.random(n) < self.prob[idx]
        return np.where(keep, idx, self.alias[idx])

    def sample_one(self, rng: np.random.Generator) -> int:
        """One scalar category index."""
        return int(self.sample(rng, 1)[0])

    def __repr__(self) -> str:
        return f"AliasSampler(n={self.n})"


def zipf_weights(n: int, s: float = 1.0) -> np.ndarray:
    """Normalized Zipf weights for ranks 1..n with exponent ``s``.

    The paper's popularity skew (top-10 methods = 58 % of calls, top-100 =
    91 %) is Zipf-like with an extra head spike; the catalog generator
    layers the Network-Disk-Write spike on top of these weights.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n!r}")
    if s < 0:
        raise ValueError(f"exponent must be non-negative, got {s!r}")
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks ** (-s)
    return w / w.sum()
