"""The discrete-event simulation engine.

The engine is a classic calendar-queue simulator: callbacks are scheduled at
absolute simulated times and executed in time order. It is intentionally
small — the fleet, network, and RPC-stack models are built as callbacks and
state machines on top of it — but it supports everything those models need:

- deterministic tie-breaking (events at equal times run in scheduling order),
- event cancellation (used by RPC hedging and deadline cancellation),
- bounded runs (``run_until``) and drain runs (``run``),
- lightweight periodic processes (``every``) for metric scrapers and load
  generators.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterator, Optional

from repro.sim.instrument import Probe, resolve_probe

__all__ = ["Event", "PeriodicTask", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on invalid use of the simulator (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.at` / :meth:`Simulator.after`
    and can be cancelled before they fire. A cancelled event stays in the
    heap but is skipped by the main loop; this makes cancellation O(1).
    The owning simulator counts dead entries so ``pending_events`` stays
    O(1) and the heap can be compacted when mostly dead.
    """

    __slots__ = ("time", "callback", "cancelled", "fired", "_sim")

    def __init__(self, time: float, callback: Callable[[], None],
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.callback = callback
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> bool:
        """Cancel the event. Returns True if it had not yet fired."""
        if self.fired:
            return False
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._note_cancelled()
        return True

    @property
    def pending(self) -> bool:
        """True while neither fired nor cancelled."""
        return not self.fired and not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"Event(t={self.time:.6f}, {state})"


class PeriodicTask:
    """Handle for a periodic callback chain created by :meth:`Simulator.every`.

    Cancelling the handle stops all future occurrences.
    """

    __slots__ = ("_current", "stopped", "fires")

    def __init__(self) -> None:
        self._current: Optional[Event] = None
        self.stopped = False
        self.fires = 0

    def cancel(self) -> None:
        """Cancel; returns False if already fired."""
        self.stopped = True
        if self._current is not None:
            self._current.cancel()


class Simulator:
    """The event loop and simulated clock.

    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.after(1.0, lambda: seen.append(sim.now))
    >>> _ = sim.after(0.5, lambda: seen.append(sim.now))
    >>> _ = sim.run()
    >>> seen
    [0.5, 1.0]
    """

    def __init__(self, start_time: float = 0.0,
                 probe: Optional[Probe] = None):
        self.now: float = start_time
        self._heap: list[_HeapEntry] = []
        self._seq = itertools.count()
        self._id_counters: dict[str, Iterator[int]] = {}
        self._events_fired = 0
        self._events_cancelled = 0
        self._dead = 0  # cancelled entries still sitting in the heap
        self._max_heap_size = 0
        # None (the common case) skips all instrumentation: hot paths
        # guard each hook behind a single pointer test. NullProbe is
        # folded to None by resolve_probe, so "instrumented but
        # unobserved" runs take the identical fast path.
        self.probe: Optional[Probe] = resolve_probe(probe)

    def set_probe(self, probe: Optional[Probe]) -> None:
        """Install (or clear, with ``None``/``NullProbe``) the probe."""
        self.probe = resolve_probe(probe)

    def mint_id(self, kind: str) -> int:
        """Next id (1-based) from this run's ``kind`` counter.

        Identifiers that end up in run artifacts (Dapper trace and span
        ids, most notably) must be minted per simulation, not from a
        process-global counter: a global leaks ordering between runs in
        the same process, so the second of two identical runs gets
        different ids and reports stop being byte-reproducible.
        """
        counter = self._id_counters.get(kind)
        if counter is None:
            counter = itertools.count(1)
            self._id_counters[kind] = counter
        return next(counter)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, clock is already at t={self.now:.6f}"
            )
        event = Event(time, callback, self)
        # The heap holds (time, seq, event) tuples: tuple comparison is
        # ~3x faster than a dataclass __lt__, and seq breaks ties FIFO.
        heapq.heappush(self._heap, (time, next(self._seq), event))
        heap_size = len(self._heap)
        if heap_size > self._max_heap_size:
            self._max_heap_size = heap_size
        if self.probe is not None:
            self.probe.event_scheduled(time, heap_size)
        return event

    def after(self, delay_s: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` ``delay_s`` seconds from now."""
        if delay_s < 0:
            raise SimulationError(f"negative delay {delay_s!r}")
        return self.at(self.now + delay_s, callback)

    def every(
        self,
        interval_s: float,
        callback: Callable[[], None],
        *,
        start_after: Optional[float] = None,
        until: Optional[float] = None,
    ) -> PeriodicTask:
        """Run ``callback`` every ``interval_s`` seconds.

        The first occurrence is at ``now + (start_after or interval_s)``;
        the chain stops after simulated time ``until`` if given, or when
        the returned handle is cancelled.
        """
        if interval_s <= 0:
            raise SimulationError(f"non-positive interval {interval_s!r}")

        task = PeriodicTask()

        def tick() -> None:
            if task.stopped:
                return
            callback()
            task.fires += 1
            next_time = self.now + interval_s
            if until is not None and next_time > until:
                return
            task._current = self.at(next_time, tick)

        first_delay_s = interval_s if start_after is None else start_after
        task._current = self.after(first_delay_s, tick)
        return task

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------
    #: Below this size, compaction costs more than the dead entries do.
    _COMPACT_MIN_HEAP = 64

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; compacts a mostly-dead heap.

        Hedging and deadline-cancellation studies cancel most of what
        they schedule, so without compaction the heap grows with dead
        entries and every pop wades through them. Compacting when more
        than half the heap is dead keeps the amortized cost O(1) per
        cancellation while preserving pop order (live entries keep their
        ``(time, seq)`` keys).
        """
        self._dead += 1
        if (self._dead * 2 > len(self._heap)
                and len(self._heap) >= self._COMPACT_MIN_HEAP):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the heap and re-heapify."""
        probe = self.probe
        live = []
        for entry in self._heap:
            if entry[2].cancelled:
                self._events_cancelled += 1
                if probe is not None:
                    probe.event_cancelled(entry[0])
            else:
                live.append(entry)
        heapq.heapify(live)
        self._heap = live
        self._dead = 0

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event. Returns False if the heap is empty."""
        probe = self.probe
        while self._heap:
            time, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                self._dead -= 1
                self._events_cancelled += 1
                if probe is not None:
                    probe.event_cancelled(time)
                continue
            self.now = time
            event.fired = True
            self._events_fired += 1
            if probe is not None:
                probe.event_fired(time, len(self._heap))
            event.callback()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the event heap; returns the number of events fired."""
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        return fired

    def run_until(self, time: float) -> int:
        """Run events with timestamps ≤ ``time``; the clock ends at ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot run until t={time:.6f}, clock is already at t={self.now:.6f}"
            )
        fired = 0
        while self._heap:
            head_time, _seq, head_event = self._heap[0]
            if head_event.cancelled:
                heapq.heappop(self._heap)
                self._dead -= 1
                self._events_cancelled += 1
                if self.probe is not None:
                    self.probe.event_cancelled(head_time)
                continue
            if head_time > time:
                break
            self.step()
            fired += 1
        self.now = time
        return fired

    @property
    def pending_events(self) -> int:
        """The number of not-yet-cancelled events still scheduled (O(1))."""
        return len(self._heap) - self._dead

    @property
    def events_fired(self) -> int:
        """Total events executed so far."""
        return self._events_fired

    @property
    def events_cancelled(self) -> int:
        """Cancelled events discarded from the heap so far."""
        return self._events_cancelled

    @property
    def max_heap_size(self) -> int:
        """Peak heap size observed (cancelled entries included)."""
        return self._max_heap_size
