"""Deterministic named RNG streams.

A fleet simulation draws randomness from many logically independent sources
(per-method latency, per-machine interference, network jitter, workload
arrivals, ...). If they all shared one generator, adding a draw anywhere
would perturb every downstream number and make runs impossible to compare.

:class:`RngRegistry` derives an independent ``numpy.random.Generator`` per
*name* from a single root seed using ``SeedSequence.spawn`` semantics: the
stream for ``("method", 17)`` is the same in every run with the same root
seed, regardless of creation order or of which other streams exist.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple, Union

import numpy as np

__all__ = ["BufferedDraws", "RngRegistry", "derive_seed"]

_Key = Tuple[Union[str, int], ...]


def derive_seed(root_seed: int, *key: Union[str, int]) -> int:
    """Derive a stable 64-bit child seed from ``root_seed`` and a key path.

    The derivation hashes the textual key path, so it is insensitive to
    stream creation order — the property that makes runs reproducible when
    code is reorganized.
    """
    material = repr((int(root_seed),) + tuple(key)).encode("utf-8")
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "little")


class RngRegistry:
    """A factory of named, mutually independent RNG streams.

    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("arrivals")
    >>> b = rngs.stream("method", 3)
    >>> a is rngs.stream("arrivals")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[_Key, np.random.Generator] = {}

    def stream(self, *key: Union[str, int]) -> np.random.Generator:
        """Return the (cached) generator for a key path like ``("net", 4)``."""
        if not key:
            raise ValueError("stream key must be non-empty")
        k: _Key = tuple(key)
        gen = self._streams.get(k)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.seed, *key))
            self._streams[k] = gen
        return gen

    def fresh(self, *key: Union[str, int]) -> np.random.Generator:
        """Return a new, uncached generator for the key (same seed each call)."""
        return np.random.default_rng(derive_seed(self.seed, *key))

    def fork(self, *key: Union[str, int]) -> "RngRegistry":
        """Derive a child registry whose streams are independent of this one."""
        return RngRegistry(derive_seed(self.seed, "__fork__", *key))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(seed={self.seed}, streams={len(self._streams)})"


class BufferedDraws:
    """Amortizes numpy's per-call overhead for scalar draws.

    The DES needs millions of *scalar* random draws; calling a vectorized
    numpy sampler once per draw costs ~10 us each in dispatch overhead.
    ``BufferedDraws`` pulls batches from a ``fill(n) -> ndarray`` callable
    and hands out scalars, cutting the amortized cost by ~50x.
    """

    __slots__ = ("_fill", "_size", "_buf", "_i")

    def __init__(self, fill, size: int = 1024):
        if size < 1:
            raise ValueError(f"batch size must be >= 1, got {size!r}")
        self._fill = fill
        self._size = size
        self._buf = None
        self._i = 0

    def next(self) -> float:
        """The next buffered scalar."""
        buf = self._buf
        if buf is None or self._i >= len(buf):
            buf = self._buf = self._fill(self._size)
            self._i = 0
        v = buf[self._i]
        self._i += 1
        return float(v)

    def invalidate(self) -> None:
        """Drop buffered values (e.g. when the fill parameters went stale)."""
        self._buf = None
        self._i = 0
