"""Deterministic clocks: simulated time without the wall clock.

The runnable RPC framework (:mod:`repro.rpc.framework`) needs a notion
of elapsed time for deadline enforcement, but reading the host clock
would make runs non-reproducible (and is banned by repro-lint RL001).
These clocks close the gap:

- :class:`ManualClock` — time advances only when a component says so
  (e.g. a transport charging its configured latency).  The default for
  in-process stacks: deterministic, instant, and bit-identical across
  runs.
- :class:`SimulatorClock` — adapts a :class:`~repro.sim.engine.Simulator`
  so framework components observe discrete-event time.
- :class:`WallClock` — the one sanctioned real-time source, for serve
  mode (:mod:`repro.serve`), where the workload *is* wall time.  It is
  anchored at construction so readings start near zero like the other
  clocks, and this module is allowlisted for RL001 so the exemption
  lives in one reviewed place instead of pragma comments.

All are plain callables returning seconds, so any ``Callable[[],
float]`` satisfies the same contract.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["Clock", "ManualClock", "SimulatorClock", "WallClock"]

#: Anything the framework accepts as a time source.
Clock = Callable[[], float]


class ManualClock:
    """A clock that moves only via :meth:`advance`.

    >>> clock = ManualClock()
    >>> clock()
    0.0
    >>> clock.advance(0.25)
    >>> clock()
    0.25
    """

    __slots__ = ("now_s",)

    def __init__(self, start_s: float = 0.0):
        self.now_s = float(start_s)

    def __call__(self) -> float:
        return self.now_s

    def advance(self, delta_s: float) -> None:
        """Move time forward by ``delta_s`` seconds (never backward)."""
        if delta_s < 0:
            raise ValueError(f"cannot advance by negative time {delta_s!r}")
        self.now_s += delta_s

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ManualClock(now_s={self.now_s:.6f})"


class SimulatorClock:
    """Expose a :class:`~repro.sim.engine.Simulator`'s clock as a callable."""

    __slots__ = ("_sim",)

    def __init__(self, sim):
        self._sim = sim

    def __call__(self) -> float:
        return self._sim.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimulatorClock(now={self._sim.now:.6f})"


class WallClock:
    """Monotonic elapsed real seconds since construction (or ``anchor_s``).

    The sanctioned wall-time source for serve mode: a live server's
    scrape/alert/sampling cadence must track the host clock, not a
    discrete-event schedule.  Readings share the "seconds since the run
    started" convention of the other clocks, so Monarch series, span
    timestamps, and manifests look the same whether the time domain was
    simulated or real.

    >>> clock = WallClock()
    >>> clock() >= 0.0
    True
    """

    __slots__ = ("_anchor_s",)

    def __init__(self, anchor_s: Optional[float] = None):
        self._anchor_s = (time.monotonic() if anchor_s is None
                          else float(anchor_s))

    def __call__(self) -> float:
        return time.monotonic() - self._anchor_s

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WallClock(elapsed_s={self():.6f})"
