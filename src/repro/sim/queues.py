"""Queues and server pools for the discrete-event tier.

A :class:`ServerPool` models the worker-thread pools that serve RPC stages:
``c`` servers drain a queue of jobs, each job occupying one server for its
service time. The pool records the waiting time of every job (the paper's
"Server Recv Queue" / "Client Send Queue" components come straight out of
these numbers) and maintains busy-time integrals so utilization can be
sampled by the Monarch scraper.

Three (non-preemptive) disciplines are available, supporting the queueing
ablation the paper's §4.2 HOL-blocking discussion motivates:

- ``fifo`` — arrival order (production default);
- ``sjf``  — shortest job first, assuming service times are known (they
  aren't, in general — the paper stresses that cost prediction is hard —
  which makes this an *oracle* bound, not a deployable policy);
- ``lifo`` — newest first (the adversarial baseline).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional

from repro.sim.engine import Simulator

__all__ = ["Job", "QueueStats", "ServerPool", "DISCIPLINES"]

DISCIPLINES = ("fifo", "sjf", "lifo")


@dataclass
class Job:
    """A unit of work: occupy one server for ``service_time`` seconds."""

    service_time: float
    on_start: Optional[Callable[[float], None]] = None
    on_done: Optional[Callable[[float], None]] = None
    enqueued_at: float = 0.0
    started_at: Optional[float] = None
    weight: float = 1.0  # CPU cost attributed while running (for profilers)


@dataclass
class QueueStats:
    """Aggregate statistics maintained by a :class:`ServerPool`."""

    jobs_enqueued: int = 0
    jobs_completed: int = 0
    total_wait: float = 0.0
    total_service: float = 0.0
    max_queue_depth: int = 0
    waits: List[float] = field(default_factory=list)

    @property
    def mean_wait(self) -> float:
        """Mean queue wait across completed jobs."""
        return self.total_wait / self.jobs_completed if self.jobs_completed else 0.0

    @property
    def mean_service(self) -> float:
        """Mean service time across completed jobs."""
        return self.total_service / self.jobs_completed if self.jobs_completed else 0.0


class ServerPool:
    """An M/G/c-style FIFO queue with ``servers`` parallel workers.

    The pool integrates busy time so that ``utilization(since, now)`` gives
    the average fraction of servers busy over a window — the quantity the
    fleet's Monarch scraper exports as "CPU utilization".
    """

    def __init__(self, sim: Simulator, servers: int, name: str = "",
                 record_waits: bool = False, discipline: str = "fifo"):
        if servers <= 0:
            raise ValueError(f"servers must be positive, got {servers!r}")
        if discipline not in DISCIPLINES:
            raise ValueError(
                f"discipline must be one of {DISCIPLINES}, got {discipline!r}"
            )
        self.sim = sim
        self.servers = servers
        self.name = name
        self.record_waits = record_waits
        self.discipline = discipline
        self.stats = QueueStats()
        self._queue: Deque[Job] = deque()
        self._sjf_heap: List = []
        self._sjf_seq = itertools.count()
        self._busy = 0
        # Busy-time integral: sum over time of (busy servers) dt.
        self._busy_integral = 0.0
        self._last_change = sim.now

    # ------------------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Enqueue a job; it starts as soon as a server is free."""
        if job.service_time < 0:
            raise ValueError(f"negative service time {job.service_time!r}")
        job.enqueued_at = self.sim.now
        self.stats.jobs_enqueued += 1
        probe = self.sim.probe
        if probe is not None:
            # Depth after this submit: 0 if a server takes the job now,
            # else the waiting jobs including this one.
            will_wait = self._busy >= self.servers
            probe.job_enqueued(self.name, self.sim.now,
                               self.queue_depth + (1 if will_wait else 0))
        if self._busy < self.servers:
            self._start(job)
        else:
            if self.discipline == "sjf":
                heapq.heappush(self._sjf_heap,
                               (job.service_time, next(self._sjf_seq), job))
            else:
                self._queue.append(job)
            depth = self.queue_depth
            if depth > self.stats.max_queue_depth:
                self.stats.max_queue_depth = depth

    def submit_callable(self, service_time: float,
                        on_done: Optional[Callable[[float], None]] = None) -> Job:
        """Convenience wrapper building a :class:`Job` from a service time."""
        job = Job(service_time=service_time, on_done=on_done)
        self.submit(job)
        return job

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Jobs waiting (not yet started)."""
        return len(self._queue) + len(self._sjf_heap)

    @property
    def busy_servers(self) -> int:
        """Servers currently serving."""
        return self._busy

    def utilization(self, since: float, now: Optional[float] = None) -> float:
        """Mean fraction of servers busy over ``[since, now]``."""
        t = self.sim.now if now is None else now
        self._accumulate(t)
        window = t - since
        if window <= 0:
            return self._busy / self.servers
        # _busy_integral covers [_epoch, t]; callers reset via mark().
        return min(1.0, self._busy_integral / (window * self.servers))

    def mark(self) -> None:
        """Reset the busy-time integral (start of a new utilization window)."""
        self._accumulate(self.sim.now)
        self._busy_integral = 0.0

    # ------------------------------------------------------------------
    def _accumulate(self, t: float) -> None:
        if t > self._last_change:
            self._busy_integral += self._busy * (t - self._last_change)
            self._last_change = t

    def _start(self, job: Job) -> None:
        now = self.sim.now
        self._accumulate(now)
        self._busy += 1
        job.started_at = now
        wait = now - job.enqueued_at
        self.stats.total_wait += wait
        if self.record_waits:
            self.stats.waits.append(wait)
        probe = self.sim.probe
        if probe is not None:
            probe.job_started(self.name, now, wait)
        if job.on_start is not None:
            job.on_start(wait)
        self.sim.after(job.service_time, lambda: self._finish(job, wait))

    def _finish(self, job: Job, wait: float) -> None:
        self._accumulate(self.sim.now)
        self._busy -= 1
        self.stats.jobs_completed += 1
        self.stats.total_service += job.service_time
        probe = self.sim.probe
        if probe is not None:
            probe.job_finished(self.name, self.sim.now, job.service_time)
        nxt = self._dequeue()
        if nxt is not None:
            self._start(nxt)
        if job.on_done is not None:
            job.on_done(wait)

    def _dequeue(self) -> Optional[Job]:
        if self.discipline == "sjf":
            if self._sjf_heap:
                return heapq.heappop(self._sjf_heap)[2]
            return None
        if not self._queue:
            return None
        if self.discipline == "lifo":
            return self._queue.pop()
        return self._queue.popleft()
