"""The lint driver: collect files, parse once, run rules, filter, report.

Each file is parsed exactly once; every enabled file rule sees the same
:class:`FileContext`.  Since v2 the runner then makes a second,
whole-program pass: the parsed contexts are assembled into one
:class:`~repro.analysis.model.ProgramModel` (symbol table, import
graph, class hierarchy) and every enabled
:class:`~repro.analysis.rules.base.ProgramRule` runs once over it —
that is how RL006-RL009 relate a worker entrypoint in one file to a
mutable global three imports away.

Findings from both passes go through the same two filters — inline
pragmas (``# repro-lint: disable=...``) and the baseline file — before
reaching the report.  Unparseable files surface as ``RL000`` findings
rather than crashing the run (and are left out of the program model):
a syntax error in one file must not hide findings in the other two
hundred.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.config import LintConfig
from repro.analysis.findings import PARSE_ERROR_CODE, Finding
from repro.analysis.model import ProgramModel
from repro.analysis.pragmas import PragmaIndex, parse_pragmas
from repro.analysis.rules import all_rules
from repro.analysis.rules.base import FileContext, ProgramRule

__all__ = ["LintReport", "lint_paths", "collect_files", "module_name_for"]


@dataclass
class LintReport:
    """Everything one lint run learned."""

    findings: List[Finding] = field(default_factory=list)   # active, sorted
    files_scanned: int = 0
    suppressed_pragma: int = 0
    suppressed_baseline: int = 0
    stale_baseline: List[dict] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen = {}
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            seen[candidate.resolve()] = candidate
    return [seen[key] for key in sorted(seen)]


def module_name_for(path: Path, root_package: str) -> Optional[str]:
    """Dotted module path, anchored at the *last* ``root_package`` dir.

    ``src/repro/rpc/channel.py`` -> ``repro.rpc.channel``; a file with no
    ``root_package`` ancestor directory gets None (layer rules skip it).
    """
    parts = list(path.parts)
    if path.suffix == ".py":
        parts[-1] = path.stem
    ancestors = parts[:-1]
    try:
        anchor = len(ancestors) - 1 - ancestors[::-1].index(root_package)
    except ValueError:
        return None
    module_parts = parts[anchor:]
    if module_parts[-1] == "__init__":
        module_parts = module_parts[:-1]
    return ".".join(module_parts)


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _excluded(relpath: str, config: LintConfig) -> bool:
    return any(relpath == p.rstrip("/") or relpath.startswith(p)
               for p in config.exclude_paths)


def lint_paths(paths: Sequence[Path], config: Optional[LintConfig] = None,
               baseline_path: Optional[Path] = None) -> LintReport:
    """Lint ``paths`` and return the filtered report.

    ``baseline_path`` overrides the config's baseline location; pass a
    nonexistent path (or configure ``baseline = ""``) for no baseline.
    """
    config = config or LintConfig()
    root = Path(config.root)
    rules = [cls() for cls in all_rules() if config.rule_enabled(cls.code)]
    file_rules = [r for r in rules if not isinstance(r, ProgramRule)]
    program_rules = [r for r in rules if isinstance(r, ProgramRule)]

    report = LintReport()
    raw: List[Finding] = []
    contexts: List[FileContext] = []
    pragmas_by_path: Dict[str, PragmaIndex] = {}
    for path in collect_files([Path(p) for p in paths]):
        relpath = _relpath(path, root)
        if _excluded(relpath, config):
            continue
        report.files_scanned += 1
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as err:
            line = getattr(err, "lineno", 1) or 1
            raw.append(Finding(
                code=PARSE_ERROR_CODE, path=relpath, line=line, col=1,
                message=f"cannot parse file: {err}", symbol="parse-error",
            ))
            continue
        ctx = FileContext(
            path=relpath, source=source, tree=tree, config=config,
            module=module_name_for(path, config.root_package),
        )
        contexts.append(ctx)
        pragmas = parse_pragmas(source)
        pragmas_by_path[relpath] = pragmas
        for rule in file_rules:
            for finding in rule.check(ctx):
                if pragmas.is_suppressed(finding.code, finding.line):
                    report.suppressed_pragma += 1
                else:
                    raw.append(finding)

    if program_rules and contexts:
        program = ProgramModel.build(contexts, config)
        for rule in program_rules:
            for finding in rule.check_program(program):
                pragmas = pragmas_by_path.get(finding.path)
                if pragmas is not None and pragmas.is_suppressed(
                        finding.code, finding.line):
                    report.suppressed_pragma += 1
                else:
                    raw.append(finding)

    if baseline_path is None and config.baseline:
        baseline_path = root / config.baseline
    if baseline_path is not None:
        entries = load_baseline(Path(baseline_path))
        raw, suppressed, stale = apply_baseline(raw, entries)
        report.suppressed_baseline = suppressed
        report.stale_baseline = stale

    report.findings = sorted(raw, key=lambda f: f.sort_key)
    return report
