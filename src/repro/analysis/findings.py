"""The unit of lint output: one finding at one source location.

Findings are value objects: rules produce them, the runner filters them
through pragmas and the baseline, and reporters render them.  The
*fingerprint* deliberately excludes the line number so that baselined
findings survive unrelated edits that shift code up or down a file.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["Finding", "PARSE_ERROR_CODE"]

#: Pseudo-rule code used for files the runner cannot parse.
PARSE_ERROR_CODE = "RL000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``symbol`` is the stable anchor for fingerprinting: the identifier,
    dotted name, or import that triggered the rule (e.g. ``time.sleep``
    or ``repro.obs.dapper``).  Two findings of the same rule on the same
    symbol in the same file share a fingerprint even if the code moves.
    """

    code: str
    path: str          # repo-relative posix path
    line: int
    col: int
    message: str
    symbol: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number independent)."""
        material = f"{self.path}::{self.code}::{self.symbol or self.message}"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (used by the JSON reporter and baseline)."""
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        """The classic ``path:line:col: CODE message`` text form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    @property
    def sort_key(self):
        return (self.path, self.line, self.col, self.code)
