"""Text and JSON renderings of a :class:`LintReport`.

The text form is the human/editor-facing ``path:line:col: CODE message``
with a one-line summary; the JSON form is the machine-facing contract
consumed by CI (stable keys, schema version, findings sorted by
location).
"""

from __future__ import annotations

import json

from repro.analysis.runner import LintReport

__all__ = ["render_text", "render_json", "REPORT_SCHEMA_VERSION"]

REPORT_SCHEMA_VERSION = 1


def render_text(report: LintReport) -> str:
    lines = [f.render() for f in report.findings]
    n = len(report.findings)
    summary = (
        f"{n} finding{'s' if n != 1 else ''} "
        f"in {report.files_scanned} file{'s' if report.files_scanned != 1 else ''}"
    )
    extras = []
    if report.suppressed_pragma:
        extras.append(f"{report.suppressed_pragma} suppressed by pragmas")
    if report.suppressed_baseline:
        extras.append(f"{report.suppressed_baseline} baselined")
    if report.stale_baseline:
        extras.append(f"{len(report.stale_baseline)} stale baseline entries")
    if extras:
        summary += " (" + ", ".join(extras) + ")"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    payload = {
        "version": REPORT_SCHEMA_VERSION,
        "findings": [f.to_dict() for f in report.findings],
        "summary": {
            "files_scanned": report.files_scanned,
            "total": len(report.findings),
            "suppressed_pragma": report.suppressed_pragma,
            "suppressed_baseline": report.suppressed_baseline,
            "stale_baseline": [e.get("fingerprint") for e in report.stale_baseline],
            "clean": report.clean,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
