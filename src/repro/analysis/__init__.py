"""Static analysis for the repository's load-bearing invariants.

The analyses in :mod:`repro.core` are only trustworthy if the simulator
is bit-reproducible and dimensionally consistent.  The invariants that
carry that guarantee are invisible to generic linters:

1. **Seeded determinism** — simulated time comes from the engine clock,
   never the wall clock; every random draw is threaded from the seeded
   generators in :mod:`repro.sim.random`; and no mutable module/class
   state hides in the worker-reachable import closure.
2. **Cache-key completeness** — every input a cached study reads is
   covered by its ``study_key`` digest, or a stale hit silently serves
   the old numbers after an edit.
3. **Unit discipline** — quantities carry their unit in the identifier
   suffix (``_us``/``_ms``/``_s``, ``_bytes``), arithmetic never mixes
   suffixes, and units survive dataflow across assignments, calls, and
   returns (the Kingman-math ``C_s`` vs ``C_s^2`` trap).
4. **Layer purity** — imports follow the declared package DAG
   (``sim`` → ``fleet``/``rpc``/``net`` → ``workloads``/``obs`` →
   ``core`` → ``studies``/``cli``); probes observe without mutating.

``repro-lint`` (this package's console script) encodes them as lint
rules in two passes: per-file rules over one AST each, and
whole-program rules over a model of the full linted tree
(:mod:`repro.analysis.model` / :mod:`repro.analysis.graph`) that
resolves names across modules, aliases, and re-exports.  The package is
deliberately **standalone**: it imports nothing from the rest of
``repro`` so it can never be broken by the code it checks.

Rule pack
---------

========  =======  ====================================================
RL001     file     no wall-clock (``time.time``/``datetime.now``/...)
RL002     file     no global RNG (``random.*`` / unseeded ``np.random``)
RL003     file     unit-suffix discipline (naming + mixed arithmetic)
RL004     file     layer purity (no upward imports in the package DAG)
RL005     file     no mutable default arguments
RL006     program  hidden-state determinism (worker-reachable globals)
RL007     program  cache-key completeness (config reads vs key fields)
RL008     program  unit dataflow (suffixes across assigns/calls/returns)
RL009     program  probe purity (hooks observe, never mutate)
RL010     file     no star imports (they blind the program model)
========  =======  ====================================================

``repro-lint --explain RL###`` prints any rule's rationale with a
bad/good example.  See ``docs/LINTING.md`` for the program-model
architecture, suppression pragmas, the baseline workflow, and how to
write file and cross-module rules.
"""

from repro.analysis.config import LintConfig, load_config
from repro.analysis.findings import Finding
from repro.analysis.runner import LintReport, lint_paths
from repro.analysis.rules import all_rules, get_rule

__all__ = [
    "Finding",
    "LintConfig",
    "LintReport",
    "all_rules",
    "get_rule",
    "lint_paths",
    "load_config",
]
