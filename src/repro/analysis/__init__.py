"""Static analysis for the repository's load-bearing invariants.

The analyses in :mod:`repro.core` are only trustworthy if the simulator
is bit-reproducible and dimensionally consistent.  Three invariants carry
that guarantee, and all three are invisible to generic linters:

1. **Seeded determinism** — simulated time comes from the engine clock,
   never the wall clock, and every random draw is threaded from the
   seeded generators in :mod:`repro.sim.random`.
2. **Unit discipline** — quantities carry their unit in the identifier
   suffix (``_us``/``_ms``/``_s``, ``_bytes``), and arithmetic never
   mixes suffixes (the Kingman-math ``C_s`` vs ``C_s^2`` trap).
3. **Layer purity** — imports follow the declared package DAG
   (``sim`` → ``fleet``/``rpc``/``net`` → ``workloads``/``obs`` →
   ``core`` → ``studies``/``cli``); analyses never reach upward into
   the layers that feed them.

``repro-lint`` (this package's console script) encodes them as AST lint
rules.  It is deliberately **standalone**: it imports nothing from the
rest of ``repro`` so it can never be broken by the code it checks.

Rule pack
---------

========  =====================================================
RL001     no wall-clock (``time.time``/``datetime.now``/...)
RL002     no global RNG (``random.*`` / unseeded ``np.random``)
RL003     unit-suffix discipline (naming + mixed-unit arithmetic)
RL004     layer purity (no upward imports in the package DAG)
RL005     no mutable default arguments
========  =====================================================

See ``docs/LINTING.md`` for the full rule reference, suppression
pragmas, the baseline workflow, and how to add a rule.
"""

from repro.analysis.config import LintConfig, load_config
from repro.analysis.findings import Finding
from repro.analysis.runner import LintReport, lint_paths
from repro.analysis.rules import all_rules, get_rule

__all__ = [
    "Finding",
    "LintConfig",
    "LintReport",
    "all_rules",
    "get_rule",
    "lint_paths",
    "load_config",
]
