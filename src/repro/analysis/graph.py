"""Graphs over the program model: imports, reachability, class hierarchy.

Thin, pure-function queries on a built :class:`~repro.analysis.model.
ProgramModel`.  Separated from the model so rules share one set of
graph semantics (what counts as an edge, how cycles are handled)
instead of five ad-hoc walkers:

- the **import graph** has an edge ``a -> b`` when module ``a`` imports
  module ``b`` (or a symbol from it) and ``b`` is part of the analyzed
  program; external imports are not edges;
- **reachability** is plain BFS over that graph — cycles are fine;
- the **class hierarchy** resolves base names through each defining
  module's alias table, so ``class MetricsProbe(Probe)`` matches
  ``repro.sim.instrument.Probe`` whether ``Probe`` arrived by ``from
  ... import Probe``, ``import ... as si; si.Probe``, or a re-export.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.analysis.model import ClassInfo, ModuleInfo, ProgramModel

__all__ = [
    "internal_import_targets",
    "import_graph",
    "reachable_modules",
    "subclasses_of",
]


def internal_import_targets(model: ProgramModel,
                            module: ModuleInfo) -> Set[str]:
    """Program modules this module imports (directly or via a symbol)."""
    targets: Set[str] = set()
    origins = list(module.imports.values())
    origins.extend(module.module_imports)
    origins.extend(origin for origin, _ in module.star_imports)
    for origin in origins:
        info, _ = model._split_module(origin)
        if info is not None and info.name != module.name:
            targets.add(info.name)
    return targets


def import_graph(model: ProgramModel) -> Dict[str, Set[str]]:
    """``module -> imported program modules`` for the whole program."""
    return {name: internal_import_targets(model, info)
            for name, info in model.modules.items()}


def reachable_modules(model: ProgramModel,
                      roots: Iterable[str]) -> Set[str]:
    """Modules reachable from ``roots`` along import edges (roots included).

    Unknown roots are ignored; import cycles terminate naturally.
    """
    graph = import_graph(model)
    seen: Set[str] = set()
    frontier = [r for r in roots if r in graph]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        frontier.extend(graph.get(name, ()))
    return seen


def subclasses_of(model: ProgramModel,
                  base_qualnames: Iterable[str]) -> List[ClassInfo]:
    """Every program class that (transitively) subclasses any base.

    Bases are resolved through the defining module's imports, so the
    match works across files and through aliases.  The bases
    themselves are not returned.  Fixpoint iteration handles chains
    (``A <- B <- C``) in any definition order.
    """
    wanted = set(base_qualnames)
    hits: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for klass in model.classes.values():
            if klass.qualname in hits:
                continue
            module = model.modules[klass.module]
            for base in klass.bases:
                resolved = model.resolve(module, base)
                if resolved in wanted or resolved in hits:
                    hits.add(klass.qualname)
                    changed = True
                    break
    return [model.classes[q] for q in sorted(hits)]
