"""The whole-program model: symbols, imports, and name resolution.

PR 1's rules were per-file: each saw one AST and nothing else.  The
cross-module families (RL006-RL009) need to answer questions no single
file can — *is this module reachable from the parallel worker
entrypoints?*, *which fields of ``config`` does the callee read?*,
*does this class subclass ``Probe`` three imports away?*  This module
builds the shared substrate those rules query:

- one :class:`ModuleInfo` per linted file: its resolved dotted name,
  import alias table (``import as`` handled, relative imports resolved
  against the package), star-import records, top-level functions,
  classes with their methods, and literal string/tuple constants
  (the metadata hooks ``WORKER_ENTRYPOINTS`` / ``CACHE_KEY_FUNCTIONS``
  that :mod:`repro.core.parallel` and :mod:`repro.core.cache` declare);
- a program-wide symbol table keyed by canonical qualified name
  (``repro.core.cache.study_key``, ``repro.obs.telemetry.MetricsProbe``);
- :meth:`ProgramModel.resolve`: alias-aware resolution of a dotted
  reference in some module to its canonical qualified name, following
  re-export chains (``from repro.analysis.rules.base import Rule``)
  with a cycle guard so circular imports terminate.

Everything here is derived from the already-parsed ASTs the runner
hands over — the model never reads the filesystem and never imports
the code under analysis.  Names a star import would have provided are
simply unresolvable (rules skip what they cannot resolve); RL010
surfaces the star import itself so the blind spot is visible.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.analysis.config import LintConfig

if TYPE_CHECKING:  # pragma: no cover - the import would be circular at runtime
    from repro.analysis.rules.base import FileContext

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProgramModel",
    "dotted_name",
    "iter_refs",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))

#: Containers whose display/constructor creates process-local mutable state.
MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "bytearray",
    "collections.defaultdict", "collections.OrderedDict",
    "collections.Counter", "collections.deque",
})


@dataclass
class FunctionInfo:
    """One function or method definition."""

    name: str
    qualname: str            # canonical: <module>.<name> or <module>.<Class>.<name>
    module: str
    path: str                # repo-relative posix path of the defining file
    node: ast.AST            # FunctionDef | AsyncFunctionDef
    params: Tuple[str, ...]  # positional parameters, in order (incl. self)
    kwonly: Tuple[str, ...]
    is_method: bool = False
    decorators: Tuple[str, ...] = ()   # raw dotted decorator names

    @property
    def all_params(self) -> Tuple[str, ...]:
        return self.params + self.kwonly


@dataclass
class ClassInfo:
    """One class definition with its immediate bases and methods."""

    name: str
    qualname: str
    module: str
    path: str
    node: ast.ClassDef
    bases: Tuple[str, ...]   # raw dotted base names, unresolved
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Everything the program model knows about one file."""

    name: str                # dotted module name (synthesized for files
                             # outside the root package)
    path: str
    tree: ast.Module
    is_package: bool = False
    imports: Dict[str, str] = field(default_factory=dict)  # alias -> origin
    #: Full dotted module targets of every import statement — the alias
    #: table alone loses ``import repro.b`` (which binds only ``repro``
    #: but still depends on ``repro.b``).
    module_imports: List[str] = field(default_factory=list)
    star_imports: List[Tuple[str, int]] = field(default_factory=list)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: Module-level literal constants: str or tuple-of-str assignments.
    constants: Dict[str, object] = field(default_factory=dict)


def _const_literal(node: ast.AST) -> Optional[object]:
    """A string or tuple-of-strings literal value, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, (ast.Tuple, ast.List)):
        items = []
        for elt in node.elts:
            if not (isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)):
                return None
            items.append(elt.value)
        return tuple(items)
    return None


def _params_of(node) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    args = node.args
    positional = tuple(a.arg for a in (args.posonlyargs + args.args))
    return positional, tuple(a.arg for a in args.kwonlyargs)


def _relative_base(module: ModuleInfo, level: int) -> Optional[str]:
    """The package a ``level``-dot relative import resolves against."""
    parts = module.name.split(".")
    if not module.is_package:
        parts = parts[:-1]          # the containing package
    drop = level - 1                # one dot = the containing package itself
    if drop >= len(parts):
        return None
    return ".".join(parts[:len(parts) - drop]) if drop else ".".join(parts)


def iter_refs(node: ast.AST) -> Iterator[Tuple[str, Tuple[str, ...], ast.AST]]:
    """Yield ``(root_name, attr_chain, node)`` for each outermost reference.

    ``catalog.config.seed`` yields one entry ``("catalog", ("config",
    "seed"), <Attribute>)`` — never the inner ``catalog`` Name — so a
    rule can reason about attribute paths without double counting.
    Bare names yield an empty chain.  Chains based on calls or
    subscripts recurse into the base expression instead.
    """
    if isinstance(node, ast.Attribute):
        chain: List[str] = []
        cur: ast.AST = node
        while isinstance(cur, ast.Attribute):
            chain.append(cur.attr)
            cur = cur.value
        if isinstance(cur, ast.Name):
            yield cur.id, tuple(reversed(chain)), node
            return
        yield from iter_refs(cur)
        return
    if isinstance(node, ast.Name):
        yield node.id, (), node
        return
    for child in ast.iter_child_nodes(node):
        yield from iter_refs(child)


class ProgramModel:
    """Project-wide symbol table plus alias-aware name resolution."""

    def __init__(self, config: Optional[LintConfig] = None):
        self.config = config or LintConfig()
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    # -- construction --------------------------------------------------
    @classmethod
    def build(cls, contexts: Iterable[FileContext],
              config: Optional[LintConfig] = None) -> "ProgramModel":
        model = cls(config)
        for ctx in contexts:
            model.add_file(ctx)
        return model

    def add_file(self, ctx: FileContext) -> None:
        name = ctx.module or ctx.path[:-3].replace("/", ".")
        info = ModuleInfo(
            name=name, path=ctx.path, tree=ctx.tree,
            is_package=ctx.path.endswith("__init__.py"),
        )
        self._collect_imports(info)
        self._collect_symbols(info)
        self.modules[info.name] = info
        self.by_path[info.path] = info
        for fn in info.functions.values():
            self.functions[fn.qualname] = fn
        for klass in info.classes.values():
            self.classes[klass.qualname] = klass
            for method in klass.methods.values():
                self.functions[method.qualname] = method

    def _collect_imports(self, info: ModuleInfo) -> None:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".")[0]
                    origin = item.name if item.asname else item.name.split(".")[0]
                    info.imports[local] = origin
                    info.module_imports.append(item.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = _relative_base(info, node.level)
                    if base is None:
                        continue
                    origin_mod = f"{base}.{node.module}" if node.module else base
                else:
                    origin_mod = node.module or ""
                if not origin_mod:
                    continue
                info.module_imports.append(origin_mod)
                for item in node.names:
                    if item.name == "*":
                        info.star_imports.append((origin_mod, node.lineno))
                        continue
                    local = item.asname or item.name
                    info.imports[local] = f"{origin_mod}.{item.name}"

    def _collect_symbols(self, info: ModuleInfo) -> None:
        for stmt in info.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.functions[stmt.name] = self._function(info, stmt)
            elif isinstance(stmt, ast.ClassDef):
                info.classes[stmt.name] = self._class(info, stmt)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                literal = _const_literal(stmt.value)
                if literal is not None:
                    info.constants[stmt.targets[0].id] = literal

    def _function(self, info: ModuleInfo, node,
                  owner: Optional[str] = None) -> FunctionInfo:
        params, kwonly = _params_of(node)
        qual = (f"{info.name}.{owner}.{node.name}" if owner
                else f"{info.name}.{node.name}")
        decorators = tuple(
            d for d in (dotted_name(dec.func if isinstance(dec, ast.Call)
                                    else dec)
                        for dec in node.decorator_list)
            if d is not None)
        return FunctionInfo(
            name=node.name, qualname=qual, module=info.name, path=info.path,
            node=node, params=params, kwonly=kwonly,
            is_method=owner is not None, decorators=decorators,
        )

    def _class(self, info: ModuleInfo, node: ast.ClassDef) -> ClassInfo:
        bases = tuple(b for b in (dotted_name(base) for base in node.bases)
                      if b is not None)
        klass = ClassInfo(
            name=node.name, qualname=f"{info.name}.{node.name}",
            module=info.name, path=info.path, node=node, bases=bases,
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                klass.methods[stmt.name] = self._function(
                    info, stmt, owner=node.name)
        return klass

    # -- resolution ----------------------------------------------------
    def resolve(self, module: ModuleInfo, dotted: str) -> Optional[str]:
        """Canonical qualified name for ``dotted`` as seen from ``module``.

        Local definitions win over imports; import aliases are expanded
        and re-export chains followed (bounded, so circular imports
        terminate).  External references (``numpy.cumsum``) come back
        as their expanded dotted path; unresolvable heads give None.
        """
        head, _, rest = dotted.partition(".")
        if head in module.functions or head in module.classes:
            return f"{module.name}.{dotted}"
        origin = module.imports.get(head)
        if origin is not None:
            return self._canonical(f"{origin}.{rest}" if rest else origin)
        if head in self.modules or dotted in self.modules:
            return self._canonical(dotted)
        return None

    def _canonical(self, dotted: str, depth: int = 0) -> str:
        """Follow re-exports until ``dotted`` names a definition."""
        if depth > 8:          # re-export cycle: give up, keep the name
            return dotted
        info, remainder = self._split_module(dotted)
        if info is None or not remainder:
            return dotted
        head, _, rest = remainder.partition(".")
        if head in info.functions or head in info.classes:
            return f"{info.name}.{remainder}"
        origin = info.imports.get(head)
        if origin is not None:
            return self._canonical(f"{origin}.{rest}" if rest else origin,
                                   depth + 1)
        return dotted

    def _split_module(self, dotted: str
                      ) -> Tuple[Optional[ModuleInfo], str]:
        """Split ``dotted`` into (longest known module, symbol remainder)."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            name = ".".join(parts[:cut])
            info = self.modules.get(name)
            if info is not None:
                return info, ".".join(parts[cut:])
        return None, dotted

    # -- lookups -------------------------------------------------------
    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def resolve_call(self, module: ModuleInfo,
                     call: ast.Call) -> Optional[FunctionInfo]:
        """The :class:`FunctionInfo` a call resolves to, if known.

        Plain and dotted module-level functions resolve; constructor
        calls resolve to ``__init__``.  Method calls through instances
        do not resolve (no type inference) and return None.
        """
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        qual = self.resolve(module, dotted)
        if qual is None:
            return None
        fn = self.functions.get(qual)
        if fn is not None:
            return fn
        klass = self.classes.get(qual)
        if klass is not None:
            return klass.methods.get("__init__")
        return None

    def declared_constant(self, constant: str) -> Dict[str, object]:
        """``module name -> value`` for every module declaring ``constant``."""
        return {name: info.constants[constant]
                for name, info in self.modules.items()
                if constant in info.constants}
