"""The ``repro-lint`` console script.

Exit codes follow the usual lint contract:

- ``0`` — clean (no active findings),
- ``1`` — findings (including unparseable files, reported as RL000),
- ``2`` — bad invocation (unknown rule code, corrupt baseline).

``--write-baseline`` records the current findings and exits 0: the
follow-up run is clean by construction, and the diff of the baseline
file shows reviewers exactly what was grandfathered.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import write_baseline
from repro.analysis.config import load_config
from repro.analysis.reporting import render_json, render_text
from repro.analysis.runner import lint_paths
from repro.analysis.rules import all_rules, get_rule

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static analysis for the repo's determinism, unit, "
                    "layering, and caching invariants (file rules "
                    "RL001-RL005/RL010, whole-program rules RL006-RL009).",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint (default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--config", type=Path, default=None, metavar="PYPROJECT",
                        help="pyproject.toml to read [tool.repro-lint] from "
                             "(default: discovered from the first path upward)")
    parser.add_argument("--baseline", type=Path, default=None, metavar="FILE",
                        help="baseline file (default: from config)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any configured baseline")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current findings as the new baseline and exit 0")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run (default: all)")
    parser.add_argument("--ignore", metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    parser.add_argument("--explain", metavar="CODE",
                        help="print a rule's rationale and bad/good example "
                             "and exit")
    parser.add_argument("--fail-stale-baseline", action="store_true",
                        help="exit 1 when baseline entries no longer match "
                             "any finding (time to regenerate the baseline)")
    return parser


def _parse_codes(spec: Optional[str], known) -> tuple:
    if not spec:
        return ()
    codes = tuple(c.strip().upper() for c in spec.split(",") if c.strip())
    unknown = [c for c in codes if c not in known]
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )
    return codes


def explain_rule(code: str) -> str:
    """The ``--explain`` text for one rule: header plus class docstring.

    The docstring *is* the documentation of record — rationale and a
    Bad/Good example pair live on the rule class so the code and its
    explanation cannot drift apart.
    """
    cls = get_rule(code)
    header = f"{cls.code} ({cls.name})\n  {cls.summary}"
    doc = inspect.getdoc(cls)
    if not doc:
        return header
    return f"{header}\n\n{doc}"


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in all_rules():
            print(f"{cls.code}  {cls.name:<28} {cls.summary}")
        return 0

    if args.explain:
        try:
            print(explain_rule(args.explain.strip().upper()))
        except KeyError:
            known = ", ".join(cls.code for cls in all_rules())
            print(f"repro-lint: unknown rule code {args.explain!r} "
                  f"(known: {known})", file=sys.stderr)
            return 2
        return 0

    first = Path(args.paths[0]) if args.paths else Path.cwd()
    config = load_config(pyproject=args.config, search_from=first)
    known = {cls.code for cls in all_rules()}
    try:
        select = _parse_codes(args.select, known)
        ignore = _parse_codes(args.ignore, known)
    except ValueError as err:
        print(f"repro-lint: {err}", file=sys.stderr)
        return 2
    if select or ignore:
        config = replace(config, select=select or config.select,
                         ignore=ignore or config.ignore)

    # Where the baseline lives (for both reading and --write-baseline).
    baseline_target: Optional[Path] = args.baseline
    if baseline_target is None and config.baseline:
        baseline_target = Path(config.root) / config.baseline

    skip_baseline = args.no_baseline or args.write_baseline
    run_config = replace(config, baseline=None) if skip_baseline else config
    try:
        report = lint_paths(
            [Path(p) for p in args.paths], run_config,
            baseline_path=None if skip_baseline else args.baseline,
        )
    except ValueError as err:  # corrupt baseline file
        print(f"repro-lint: {err}", file=sys.stderr)
        return 2

    if args.write_baseline:
        if baseline_target is None:
            print("repro-lint: --write-baseline needs --baseline or a "
                  "configured baseline path", file=sys.stderr)
            return 2
        count = write_baseline(baseline_target, report.findings)
        print(f"wrote {count} finding(s) to {baseline_target}")
        return 0

    print(render_json(report) if args.format == "json" else render_text(report))
    if args.fail_stale_baseline and report.stale_baseline:
        n = len(report.stale_baseline)
        print(f"repro-lint: {n} stale baseline entr"
              f"{'ies' if n != 1 else 'y'}: regenerate with "
              f"--write-baseline", file=sys.stderr)
        return 1
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
