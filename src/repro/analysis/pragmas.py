"""Suppression pragmas: ``# repro-lint: disable=RL001``.

Two scopes are supported:

- **line**: a trailing comment on the offending line suppresses the
  listed codes for that line only::

      import time  # repro-lint: disable=RL001 - benchmark harness

  Everything after the code list (a dash-prefixed justification) is
  ignored by the parser but encouraged by policy — see docs/LINTING.md.

- **file**: a standalone comment anywhere in the file suppresses the
  listed codes for the whole file::

      # repro-lint: disable-file=RL003

``disable=all`` suppresses every rule.  Comments are found with
:mod:`tokenize`, so pragma-looking text inside string literals is never
misread as a pragma.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Set

__all__ = ["PragmaIndex", "parse_pragmas"]

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable|disable-file)\s*="
    r"\s*(?P<codes>all|RL\d{3}(?:\s*,\s*RL\d{3})*)",
    re.IGNORECASE,
)

_ALL = frozenset(["all"])


def _parse_codes(spec: str) -> FrozenSet[str]:
    if spec.strip().lower() == "all":
        return _ALL
    return frozenset(c.strip().upper() for c in spec.split(",") if c.strip())


class PragmaIndex:
    """Per-file map of suppressed rule codes by line."""

    def __init__(self) -> None:
        self.line_codes: Dict[int, Set[str]] = {}
        self.file_codes: Set[str] = set()

    def is_suppressed(self, code: str, line: int) -> bool:
        """True if ``code`` is disabled on ``line`` or for the whole file."""
        if "all" in self.file_codes or code in self.file_codes:
            return True
        codes = self.line_codes.get(line)
        if codes is None:
            return False
        return "all" in codes or code in codes

    @property
    def empty(self) -> bool:
        return not self.line_codes and not self.file_codes


def parse_pragmas(source: str) -> PragmaIndex:
    """Extract every pragma from ``source``.

    Tolerates tokenize errors (the AST parse will report those); pragmas
    found before the error still apply.
    """
    index = PragmaIndex()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if not match:
                continue
            codes = _parse_codes(match.group("codes"))
            if match.group("scope").lower() == "disable-file":
                index.file_codes.update(codes)
            else:
                index.line_codes.setdefault(tok.start[0], set()).update(codes)
    except (tokenize.TokenError, IndentationError):
        pass
    return index
