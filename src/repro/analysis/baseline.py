"""The baseline file: grandfathered findings that do not fail the build.

A baseline lets the linter land with strict rules before every legacy
finding is fixed: ``repro-lint --write-baseline`` records the current
findings' fingerprints, and subsequent runs subtract them.  Matching is
by :attr:`Finding.fingerprint` (path + rule + symbol, no line number),
so baselined findings survive unrelated edits; entries whose finding
has been fixed show up as *stale* so the file can be re-shrunk.

Policy for this repository: the baseline stays empty — violations are
fixed or carry an inline pragma with a justification (docs/LINTING.md).
The machinery exists for downstream forks and for emergencies.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Tuple

from repro.analysis.findings import Finding

__all__ = ["load_baseline", "write_baseline", "apply_baseline"]

_VERSION = 1


def load_baseline(path: Path) -> List[dict]:
    """Entries from a baseline file; an absent file is an empty baseline."""
    if not path.is_file():
        return []
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise ValueError(f"unsupported baseline format in {path}")
    return list(data.get("findings", []))


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Write ``findings`` as the new baseline; returns the entry count."""
    entries = sorted(
        (
            {
                "fingerprint": f.fingerprint,
                "code": f.code,
                "path": f.path,
                "symbol": f.symbol,
                "message": f.message,
            }
            for f in findings
        ),
        key=lambda e: (e["path"], e["code"], e["symbol"]),
    )
    payload = {"version": _VERSION, "findings": entries}
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(entries)


def apply_baseline(findings: List[Finding],
                   entries: List[dict]) -> Tuple[List[Finding], int, List[dict]]:
    """Split findings into (active, suppressed_count, stale_entries)."""
    known = {e.get("fingerprint") for e in entries}
    active = [f for f in findings if f.fingerprint not in known]
    suppressed = len(findings) - len(active)
    seen = {f.fingerprint for f in findings}
    stale = [e for e in entries if e.get("fingerprint") not in seen]
    return active, suppressed, stale
