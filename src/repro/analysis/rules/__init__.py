"""The rule pack.

Importing this package registers every built-in rule.  Adding a rule is
three steps: subclass :class:`~repro.analysis.rules.base.Rule` in a new
module here, decorate it with ``@register``, and import the module
below so registration runs (docs/LINTING.md walks through an example).
"""

from repro.analysis.rules.base import (
    FileContext,
    ProgramRule,
    Rule,
    all_rules,
    get_rule,
    register,
)

# Importing for the registration side effect.
from repro.analysis.rules import defaults as _defaults      # noqa: F401
from repro.analysis.rules import determinism as _determinism  # noqa: F401
from repro.analysis.rules import layering as _layering      # noqa: F401
from repro.analysis.rules import units as _units            # noqa: F401
from repro.analysis.rules import hidden_state as _hidden_state  # noqa: F401
from repro.analysis.rules import cachekeys as _cachekeys    # noqa: F401
from repro.analysis.rules import unitflow as _unitflow      # noqa: F401
from repro.analysis.rules import probe_purity as _probe_purity  # noqa: F401
from repro.analysis.rules import imports as _imports        # noqa: F401

__all__ = [
    "FileContext", "ProgramRule", "Rule", "all_rules", "get_rule", "register",
]
