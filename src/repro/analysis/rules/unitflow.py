"""RL008 unit dataflow.

RL003 checks unit suffixes *syntactically*: a ``+`` whose operands
carry different suffixes is flagged, but a ``_ms`` value that flows
through an assignment, a return, or a function call into a ``_s``
slot is invisible to it.  This rule upgrades the suffix convention to
a lightweight flow-sensitive type check:

- every function's **signature** is typed from its parameter suffixes
  and its return unit (the function name's own suffix, or the
  consistent suffix of what it returns);
- inside each function, units **propagate through assignments**
  (``x = wait_ms`` makes ``x`` milliseconds; multiplication/division
  clear the unit — that is how units legitimately convert; unit-
  preserving builtins like ``min``/``max``/``abs`` pass it through);
- at every **call that resolves through the program model** (same
  file or across modules), each argument's inferred unit is checked
  against the parameter's declared suffix; keyword arguments are also
  checked against suffix-bearing keyword names on *unresolvable*
  calls, since the keyword name states the contract;
- **returns** are checked against the function's own suffix.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.model import FunctionInfo, ModuleInfo, ProgramModel
from repro.analysis.rules.base import ProgramRule, dotted_name, register

__all__ = ["UnitDataflow"]

#: A unit is (dimension, suffix), e.g. ("time", "ms") or ("size", "bytes").
Unit = Tuple[str, str]

#: Builtins through which a unit passes unchanged.
_UNIT_PRESERVING = frozenset({"min", "max", "abs", "float", "int", "round",
                              "sum", "sorted"})


def _suffix_unit(name: str, config) -> Optional[Unit]:
    segments = name.lower().split("_")
    if len(segments) < 2:
        return None
    tail = segments[-1]
    if tail in config.time_suffixes:
        return ("time", tail)
    if tail in config.size_suffixes:
        return ("size", tail)
    return None


class _FunctionTyper:
    """Infers unit types inside one function body."""

    def __init__(self, program: ProgramModel, module: ModuleInfo,
                 fn: FunctionInfo):
        self.program = program
        self.module = module
        self.fn = fn
        self.config = program.config
        self.env: Dict[str, Unit] = {}
        for param in fn.all_params:
            unit = _suffix_unit(param, self.config)
            if unit is not None:
                self.env[param] = unit

    def unit_of(self, node: ast.AST) -> Optional[Unit]:
        if isinstance(node, ast.Name):
            return _suffix_unit(node.id, self.config) or self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            return _suffix_unit(node.attr, self.config)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Add, ast.Sub)):
                left = self.unit_of(node.left)
                right = self.unit_of(node.right)
                if left is not None and left == right:
                    return left
            return None          # Mult/Div convert; mixed Add is RL003's job
        if isinstance(node, ast.Call):
            return self.call_unit(node)
        if isinstance(node, ast.IfExp):
            body = self.unit_of(node.body)
            orelse = self.unit_of(node.orelse)
            return body if body == orelse else None
        return None

    def call_unit(self, call: ast.Call) -> Optional[Unit]:
        dotted = dotted_name(call.func)
        if dotted in _UNIT_PRESERVING:
            units = {self.unit_of(a) for a in call.args}
            units.discard(None)
            if len(units) == 1:
                return units.pop()
            return None
        callee = self.program.resolve_call(self.module, call)
        if callee is not None:
            return return_unit(self.program, callee)
        return None


_RETURN_CACHE: Dict[Tuple[int, str], Optional[Unit]] = {}


def return_unit(program: ProgramModel, fn: FunctionInfo,
                _depth: int = 0) -> Optional[Unit]:
    """The unit a function returns: its name suffix, else a consistent
    suffix across its return expressions (one level, no recursion)."""
    cache_key = (id(program), fn.qualname)
    if cache_key in _RETURN_CACHE:
        return _RETURN_CACHE[cache_key]
    unit = _suffix_unit(fn.name, program.config)
    if unit is None and _depth == 0:
        units = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if isinstance(node.value, ast.Name):
                    units.add(_suffix_unit(node.value.id, program.config))
                elif isinstance(node.value, ast.Attribute):
                    units.add(_suffix_unit(node.value.attr, program.config))
                else:
                    units.add(None)
        if len(units) == 1:
            unit = units.pop()
    _RETURN_CACHE[cache_key] = unit
    return unit


@register
class UnitDataflow(ProgramRule):
    """A ``_ms`` value must not flow into a ``_s`` slot, even across files.

    Bad::

        # a.py                          # b.py
        def backoff_ms(attempt):        from a import backoff_ms
            return 2.0 ** attempt       def schedule(delay_s): ...
                                        wait = backoff_ms(3)
                                        schedule(wait)        # ms into _s

    Good::

        wait_ms = backoff_ms(3)
        schedule(wait_ms / 1000.0)      # explicit conversion clears the unit

    The unit rides the identifier suffix through assignments, calls,
    and returns; multiplication/division clear it because that is how
    units legitimately convert.
    """

    code = "RL008"
    name = "unit-dataflow"
    summary = ("unit suffixes are propagated through assignments, calls, "
               "and returns; mismatched flows are dimensional bugs")

    def check_program(self, program: ProgramModel) -> Iterator[Finding]:
        _RETURN_CACHE.clear()
        for fn in sorted(program.functions.values(),
                         key=lambda f: (f.path, f.node.lineno)):
            module = program.modules.get(fn.module)
            if module is None:
                continue
            yield from self._check_function(program, module, fn)

    # ------------------------------------------------------------------
    def _check_function(self, program: ProgramModel, module: ModuleInfo,
                        fn: FunctionInfo) -> Iterator[Finding]:
        typer = _FunctionTyper(program, module, fn)
        fn_unit = _suffix_unit(fn.name, program.config)
        nested = {id(sub) for node in ast.walk(fn.node)
                  if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                  and node is not fn.node
                  for sub in ast.walk(node)}
        for node in self._in_order(fn.node):
            if id(node) in nested:
                continue
            if isinstance(node, ast.Assign):
                yield from self._check_assign(typer, module, node)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    yield from self._bind(typer, module, node.target.id,
                                          node.value, node)
            elif isinstance(node, ast.AugAssign):
                pass             # RL003 owns augmented arithmetic
            elif isinstance(node, ast.Call):
                yield from self._check_call(typer, module, node)
            elif isinstance(node, ast.Return) and node.value is not None \
                    and fn_unit is not None:
                value_unit = typer.unit_of(node.value)
                if value_unit is not None and value_unit != fn_unit:
                    yield self.module_finding(
                        module, node,
                        f"`{fn.name}` is suffixed _{fn_unit[1]} but returns "
                        f"a _{value_unit[1]} value; convert before "
                        f"returning",
                        symbol=f"return:{fn.qualname}:_{value_unit[1]}",
                    )

    @staticmethod
    def _in_order(fn_node: ast.AST) -> List[ast.AST]:
        nodes = [n for n in ast.walk(fn_node)]
        nodes.sort(key=lambda n: (getattr(n, "lineno", 0),
                                  getattr(n, "col_offset", 0)))
        return nodes

    def _check_assign(self, typer: _FunctionTyper, module: ModuleInfo,
                      node: ast.Assign) -> Iterator[Finding]:
        for target in node.targets:
            if isinstance(target, ast.Name):
                yield from self._bind(typer, module, target.id, node.value,
                                      node)

    def _bind(self, typer: _FunctionTyper, module: ModuleInfo,
              target: str, value: ast.AST,
              anchor: ast.AST) -> Iterator[Finding]:
        value_unit = typer.unit_of(value)
        target_unit = _suffix_unit(target, typer.config)
        if target_unit is not None and value_unit is not None \
                and target_unit != value_unit:
            detail = (f"mixes dimensions ({target_unit[0]} vs "
                      f"{value_unit[0]})" if target_unit[0] != value_unit[0]
                      else f"assigns a _{value_unit[1]} value to a "
                           f"_{target_unit[1]} name")
            yield self.module_finding(
                module, anchor,
                f"`{target}` {detail}; convert explicitly first",
                symbol=f"assign:{target}:_{value_unit[1]}",
            )
        if value_unit is not None and target_unit is None:
            typer.env[target] = value_unit
        elif target_unit is None:
            typer.env.pop(target, None)

    def _check_call(self, typer: _FunctionTyper, module: ModuleInfo,
                    call: ast.Call) -> Iterator[Finding]:
        program = typer.program
        callee = program.resolve_call(module, call)
        if callee is not None:
            params = list(callee.params)
            if callee.is_method and params and params[0] in ("self", "cls"):
                params = params[1:]
            for index, arg in enumerate(call.args):
                if index >= len(params):
                    break
                yield from self._check_flow(typer, module, call, arg,
                                            params[index], callee)
            for kw in call.keywords:
                if kw.arg is not None and kw.arg in callee.all_params:
                    yield from self._check_flow(typer, module, call,
                                                kw.value, kw.arg, callee)
        else:
            # Unresolvable callee: the keyword name itself still states
            # the expected unit (`engine.after(delay_s=wait_ms)`).
            for kw in call.keywords:
                if kw.arg is None:
                    continue
                yield from self._check_flow(typer, module, call, kw.value,
                                            kw.arg, None)

    def _check_flow(self, typer: _FunctionTyper, module: ModuleInfo,
                    call: ast.Call, arg: ast.AST, param: str,
                    callee: Optional[FunctionInfo]) -> Iterator[Finding]:
        param_unit = _suffix_unit(param, typer.config)
        if param_unit is None:
            return
        arg_unit = typer.unit_of(arg)
        if arg_unit is None or arg_unit == param_unit:
            return
        where = f" of `{callee.qualname}`" if callee is not None else ""
        if param_unit[0] != arg_unit[0]:
            detail = f"mixes dimensions ({arg_unit[0]} into {param_unit[0]})"
        else:
            detail = f"flows _{arg_unit[1]} into _{param_unit[1]}"
        yield self.module_finding(
            module, arg,
            f"argument {detail} for parameter `{param}`{where}; convert "
            f"explicitly at the call site",
            symbol=f"flow:{callee.qualname if callee else 'kw'}:{param}:_{arg_unit[1]}",
        )
