"""RL010 star imports defeat whole-program analysis.

``from x import *`` is the one import form the program model cannot
see through: the set of names it binds depends on runtime ``__all__``,
so every cross-module rule (RL006-RL009) silently loses track of
anything that arrives that way.  Rather than guessing (wrong either
way) or crashing, the model records the star import and skips the
names — and this rule surfaces the blind spot itself, so a clean
report still means "the cross-module rules saw everything".
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules.base import FileContext, Rule, register

__all__ = ["NoStarImports"]


@register
class NoStarImports(Rule):
    """``from x import *`` hides names from cross-module analysis.

    Bad::

        from repro.sim.engine import *      # what did this bind?

    Good::

        from repro.sim.engine import Engine, Event

    Names bound by a star import are unresolvable to the program
    model, so determinism/cache-key/unit rules cannot follow them
    across files; the import is a warning, not a crash, but code under
    it is analyzed with one eye closed.
    """

    code = "RL010"
    name = "no-star-imports"
    summary = ("star imports bind an unknowable name set and blind the "
               "cross-module rules")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            if not any(item.name == "*" for item in node.names):
                continue
            origin = ("." * node.level) + (node.module or "")
            yield self.finding(
                ctx, node,
                f"`from {origin} import *` binds an unknowable name set; "
                f"cross-module analysis cannot resolve through it — import "
                f"names explicitly",
                symbol=f"star:{origin}",
            )
