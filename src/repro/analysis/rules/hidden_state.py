"""RL006 hidden-state determinism.

``repro.core.parallel`` promises that ``--jobs N`` is bit-identical to
``--jobs 1``.  That proof rests on worker processes being pure
functions of their picklable inputs — and *any* process-local mutable
state in a module a worker imports silently breaks it: under ``fork``
the state is inherited mid-mutation, under ``spawn`` it is rebuilt
fresh, and the two runs diverge without an error anywhere.

This rule walks the import graph from the declared worker entrypoint
modules (``worker_entrypoint_modules`` config plus every module
declaring a ``WORKER_ENTRYPOINTS`` constant) and flags, in every
reachable module:

- **global-rebound module state** — a module-level name reassigned via
  ``global`` inside a function (the classic lazily-initialized
  singleton);
- **mutated module-level containers** — a module-level dict/list/set
  that some function mutates (``.append``/``.update``/item
  assignment/augmented assignment).  Tables built at import time and
  never touched afterwards are fine: import re-runs identically in
  every process;
- **memo caches** — ``functools.lru_cache`` / ``functools.cache``
  decorated functions (a memo dict by another name);
- **class-level mutable attributes** — ``x = []`` in a class body is
  one object shared by every instance in the process.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.graph import reachable_modules
from repro.analysis.model import ModuleInfo, ProgramModel
from repro.analysis.rules.base import ProgramRule, dotted_name, register

__all__ = ["HiddenStateDeterminism"]

#: Constructors/displays whose value is process-local mutable state.
_MUTABLE_CALLS = frozenset({
    "dict", "list", "set", "bytearray",
    "collections.defaultdict", "collections.OrderedDict",
    "collections.Counter", "collections.deque",
})

_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "remove", "discard", "clear", "pop", "popitem", "appendleft",
})

_MEMO_DECORATORS = frozenset({
    "functools.lru_cache", "functools.cache",
})


def _is_mutable_value(node: ast.AST, module: ModuleInfo,
                      model: ProgramModel) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted is None:
            return False
        resolved = model.resolve(module, dotted) or dotted
        return resolved in _MUTABLE_CALLS or dotted in _MUTABLE_CALLS
    return False


@register
class HiddenStateDeterminism(ProgramRule):
    """Process-local mutable state reachable from pool-worker code.

    Bad::

        _catalog_cache = {}              # module global, and ...

        def lookup(name):
            if name not in _catalog_cache:
                _catalog_cache[name] = _build(name)   # ... mutated here
            return _catalog_cache[name]

    Good::

        def lookup(name, cache):         # state is threaded, not ambient
            if name not in cache:
                cache[name] = _build(name)
            return cache[name]

    Each worker process gets its own copy of module state; whether that
    copy is a fork-time snapshot or a spawn-time rebuild depends on the
    platform, so results silently depend on ``--jobs`` and the start
    method.  Thread state explicitly (parameters, initializer-built
    objects passed onward) or, for deliberate per-worker state rebuilt
    deterministically by a pool initializer, suppress with a justified
    pragma.
    """

    code = "RL006"
    name = "hidden-state-determinism"
    summary = ("mutable module/class state reachable from parallel worker "
               "entrypoints makes --jobs N diverge from --jobs 1")

    def check_program(self, program: ProgramModel) -> Iterator[Finding]:
        config = program.config
        roots = set(config.worker_entrypoint_modules)
        roots.update(program.declared_constant("WORKER_ENTRYPOINTS"))
        scope = reachable_modules(program, roots)
        if not scope:
            return
        for name in sorted(scope):
            module = program.modules[name]
            yield from self._check_module(program, module)

    # ------------------------------------------------------------------
    def _check_module(self, program: ProgramModel,
                      module: ModuleInfo) -> Iterator[Finding]:
        top_assigns: Dict[str, ast.AST] = {}
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        top_assigns.setdefault(target.id, stmt)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                top_assigns.setdefault(stmt.target.id, stmt)

        rebound, mutated = self._function_scope_writes(module)

        for name_ in sorted(rebound):
            anchor = top_assigns.get(name_, rebound[name_])
            yield self.module_finding(
                module, anchor,
                f"module global `{name_}` is rebound via `global` inside a "
                f"function: per-process hidden state diverges under fork vs "
                f"spawn; thread it explicitly or justify with a pragma",
                symbol=f"global-rebound:{name_}",
            )
        for name_ in sorted(mutated):
            stmt = top_assigns.get(name_)
            if stmt is None or name_ in rebound:
                continue
            value = stmt.value if hasattr(stmt, "value") else None
            if value is None or not _is_mutable_value(value, module, program):
                continue
            yield self.module_finding(
                module, stmt,
                f"module-level container `{name_}` is mutated from function "
                f"scope: workers accumulate process-local state; thread the "
                f"container through parameters instead",
                symbol=f"mutated-global:{name_}",
            )

        yield from self._memo_decorators(program, module)
        yield from self._class_mutables(program, module)

    def _function_scope_writes(
            self, module: ModuleInfo
    ) -> Tuple[Dict[str, ast.AST], Set[str]]:
        """Names rebound via ``global`` and names mutated inside functions.

        Mutation only counts from function scope: import-time
        construction (top-level loops filling a table) re-runs
        identically in every process and is deterministic.
        """
        rebound: Dict[str, ast.AST] = {}
        mutated: Set[str] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            declared: Set[str] = set()
            assigned: Set[str] = set()
            touched: Set[str] = set()
            params = {a.arg for a in (node.args.posonlyargs + node.args.args
                                      + node.args.kwonlyargs)}
            for sub in ast.walk(node):
                if isinstance(sub, ast.Global):
                    declared.update(sub.names)
                elif isinstance(sub, ast.Assign):
                    assigned.update(t.id for t in sub.targets
                                    if isinstance(t, ast.Name))
                    for target in sub.targets:
                        if isinstance(target, ast.Subscript) and isinstance(
                                target.value, ast.Name):
                            touched.add(target.value.id)
                elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                    if isinstance(sub.target, ast.Name):
                        assigned.add(sub.target.id)
                    elif isinstance(sub.target, ast.Subscript) and isinstance(
                            sub.target.value, ast.Name):
                        touched.add(sub.target.value.id)
                elif isinstance(sub, ast.Call) and isinstance(
                        sub.func, ast.Attribute):
                    if sub.func.attr in _MUTATOR_METHODS and isinstance(
                            sub.func.value, ast.Name):
                        touched.add(sub.func.value.id)
            for name_ in declared & assigned:
                rebound.setdefault(name_, node)
            # A name assigned locally (and not declared global) shadows the
            # module global; mutating the local is fine.
            mutated.update(touched - ((assigned | params) - declared))
        return rebound, mutated

    def _memo_decorators(self, program: ProgramModel,
                         module: ModuleInfo) -> Iterator[Finding]:
        functions: List = list(module.functions.values())
        for klass in module.classes.values():
            functions.extend(klass.methods.values())
        for fn in functions:
            for raw in fn.decorators:
                resolved = program.resolve(module, raw) or raw
                if resolved in _MEMO_DECORATORS:
                    yield self.module_finding(
                        module, fn.node,
                        f"`{fn.name}` is memoized with `{resolved}`: the "
                        f"memo dict is per-process hidden state; use the "
                        f"threaded StudyCache or precompute instead",
                        symbol=f"memo:{fn.qualname}",
                    )

    def _class_mutables(self, program: ProgramModel,
                        module: ModuleInfo) -> Iterator[Finding]:
        for klass in module.classes.values():
            for stmt in klass.node.body:
                if not isinstance(stmt, ast.Assign):
                    continue
                if not _is_mutable_value(stmt.value, module, program):
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        yield self.module_finding(
                            module, stmt,
                            f"class attribute `{klass.name}.{target.id}` is "
                            f"a mutable container shared by every instance "
                            f"in the process; move it into __init__ or make "
                            f"it immutable",
                            symbol=f"class-mutable:{klass.qualname}.{target.id}",
                        )
