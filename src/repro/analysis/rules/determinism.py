"""RL001 no-wall-clock and RL002 no-global-random.

Both rules protect the same property: a run is a pure function of its
seed.  RL001 bans reading the host clock (simulated time comes from
:class:`repro.sim.engine.Simulator` or a threaded clock); RL002 bans
drawing from process-global RNG state (draws come from seeded
``numpy.random.Generator`` streams threaded from
:mod:`repro.sim.random`).

Resolution is alias-aware: ``import time as t; t.sleep(...)`` and
``from time import perf_counter`` are both caught.  References count,
not just calls — ``clock=time.monotonic`` smuggles the wall clock in as
a default argument just as effectively as calling it.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.findings import Finding
from repro.analysis.rules.base import (
    FileContext,
    Rule,
    dotted_name,
    register,
    resolve_imports,
)

__all__ = ["NoWallClock", "NoGlobalRandom"]

#: Dotted names that read or depend on the host clock.
WALL_CLOCK_NAMES = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.thread_time", "time.thread_time_ns",
    "time.sleep",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: ``numpy.random`` attributes that are *not* global-state draws: the
#: Generator API itself, and bit generators used to build seeded streams.
NP_RANDOM_ALLOWED = frozenset({
    "Generator", "BitGenerator", "SeedSequence", "default_rng",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: ``random`` module attributes that are not draws on the global instance.
STDLIB_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})


def _banned_references(ctx: FileContext, banned_test) -> Iterator[ast.AST]:
    """Yield (node, dotted) for every Name/Attribute resolving to a banned name."""
    aliases = resolve_imports(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Attribute, ast.Name)):
            continue
        # Only the outermost attribute of a chain: skip `time` inside
        # `time.sleep` so each reference is reported once.
        if isinstance(node, ast.Name) and not isinstance(node.ctx, ast.Load):
            continue
        dotted = dotted_name(node)
        if dotted is None:
            continue
        head, _, rest = dotted.partition(".")
        origin = aliases.get(head)
        if origin is None:
            continue
        resolved = f"{origin}.{rest}" if rest else origin
        hit = banned_test(resolved)
        if hit:
            yield node, resolved, hit


class _ReferenceRule(Rule):
    """Shared driver: walk references, filter nested chains, emit findings."""

    def _scan(self, ctx: FileContext, banned_test, describe) -> Iterator[Finding]:
        reported: Set[int] = set()
        hits = []
        for node, resolved, hit in _banned_references(ctx, banned_test):
            hits.append((node, resolved, hit))
        # Suppress a Name hit when it is the base of an Attribute hit on
        # the same chain (`time` inside `time.sleep`): prefer the most
        # specific report.  Attribute nodes contain their base node.
        attr_bases = set()
        for node, _, _ in hits:
            child = node
            while isinstance(child, ast.Attribute):
                child = child.value
                attr_bases.add(id(child))
        for node, resolved, hit in hits:
            if id(node) in attr_bases:
                continue
            key = (node.lineno, node.col_offset)
            if key in reported:
                continue
            reported.add(key)
            yield self.finding(ctx, node, describe(resolved, hit), symbol=resolved)


@register
class NoWallClock(_ReferenceRule):
    """Simulation code must read the engine clock, never the wall clock.

    Bad::

        started = time.time()
        ...
        latency_s = time.time() - started    # measures the host, not the model

    Good::

        started_s = engine.now
        ...
        latency_s = engine.now - started_s   # simulated time, reproducible

    A wall-clock read makes the result depend on machine load and wall
    time; benchmark harnesses and offline tools (allowlisted paths)
    legitimately measure real elapsed time and are exempt.
    """

    code = "RL001"
    name = "no-wall-clock"
    summary = ("wall-clock access outside benchmark/tool paths; simulated "
               "time must come from the engine clock")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_paths(ctx.config.wallclock_allow_paths):
            return
        def banned(resolved: str):
            return resolved if resolved in WALL_CLOCK_NAMES else None
        def describe(resolved: str, _hit) -> str:
            return (f"wall-clock access `{resolved}`: thread the simulation "
                    f"clock (repro.sim) instead, or move this code under an "
                    f"allowlisted path")
        yield from self._scan(ctx, banned, describe)


@register
class NoGlobalRandom(_ReferenceRule):
    """Randomness must flow from an explicitly seeded, threaded generator.

    Bad::

        jitter = random.random()             # process-global RNG state
        rng = np.random.default_rng()        # seeded from OS entropy

    Good::

        def sample(rng: np.random.Generator):
            jitter = rng.random()            # caller controls the seed

    Draws on process-global or OS-seeded state cannot be replayed from
    a run manifest; ``repro.sim.random`` owns generator construction
    and everything else takes a ``Generator`` parameter.
    """

    code = "RL002"
    name = "no-global-random"
    summary = ("draw on process-global RNG state; thread a seeded generator "
               "from repro.sim.random instead")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_paths(ctx.config.random_allow_paths):
            return

        def banned(resolved: str):
            head, _, rest = resolved.partition(".")
            if head == "random":
                if not rest or "." in rest:
                    return None  # bare module ref / method on an instance path
                if rest not in STDLIB_RANDOM_ALLOWED:
                    return "stdlib"
            if resolved.startswith("numpy.random."):
                attr = resolved[len("numpy.random."):]
                if "." not in attr and attr not in NP_RANDOM_ALLOWED:
                    return "numpy"
            return None

        def describe(resolved: str, _hit) -> str:
            return (f"global RNG draw `{resolved}`: use a seeded "
                    f"numpy.random.Generator threaded from repro.sim.random")

        yield from self._scan(ctx, banned, describe)

        # Unseeded default_rng() is the same bug through the front door:
        # numpy seeds it from the OS entropy pool.
        aliases = resolve_imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or node.args or node.keywords:
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            head, _, rest = dotted.partition(".")
            origin = aliases.get(head)
            if origin is None:
                continue
            resolved = f"{origin}.{rest}" if rest else origin
            if resolved == "numpy.random.default_rng":
                yield self.finding(
                    ctx, node,
                    "unseeded default_rng(): pass an explicit seed "
                    "(e.g. from repro.sim.random.derive_seed)",
                    symbol="numpy.random.default_rng()",
                )
