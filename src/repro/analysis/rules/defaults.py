"""RL005 no mutable default arguments.

The classic Python footgun, but in a discrete-event simulator it is a
*determinism* bug, not just a correctness one: a list default that
accumulates across calls makes run N's output depend on runs 1..N-1
executed in the same process, which breaks run-to-run comparison even
with identical seeds.

Flagged defaults: list/dict/set displays and comprehensions, and calls
to the mutable builtin constructors (``list``/``dict``/``set``/
``bytearray``) and their common collections cousins.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding
from repro.analysis.rules.base import FileContext, Rule, dotted_name, register

__all__ = ["NoMutableDefaults"]

_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.deque", "collections.Counter",
    "collections.OrderedDict", "defaultdict", "deque", "Counter",
    "OrderedDict",
})


def _mutable_kind(node: ast.AST) -> Optional[str]:
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in _MUTABLE_CALLS:
            return name
    return None


@register
class NoMutableDefaults(Rule):
    """Default argument values are evaluated once and shared forever.

    Bad::

        def collect(sample, into=[]):     # one list for every call
            into.append(sample)
            return into

    Good::

        def collect(sample, into=None):
            if into is None:
                into = []                 # fresh per call
            into.append(sample)
            return into

    A mutable default is hidden cross-call state: results depend on
    call history, which is exactly what a reproduction cannot afford.
    """

    code = "RL005"
    name = "no-mutable-default-args"
    summary = "mutable default argument values are shared across calls"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            args = node.args
            positional = args.posonlyargs + args.args
            pos_defaults = list(zip(positional[len(positional) - len(args.defaults):],
                                    args.defaults))
            kw_defaults = [(a, d) for a, d in zip(args.kwonlyargs, args.kw_defaults)
                           if d is not None]
            fn = getattr(node, "name", "<lambda>")
            for arg, default in pos_defaults + kw_defaults:
                kind = _mutable_kind(default)
                if kind is None:
                    continue
                yield self.finding(
                    ctx, default,
                    f"mutable default `{arg.arg}={kind}(...)` in `{fn}` is "
                    f"shared across calls; default to None (or use "
                    f"dataclasses.field(default_factory=...))",
                    symbol=f"default:{fn}:{arg.arg}",
                )
