"""RL003 unit-suffix discipline.

Two sub-checks, both driven by the identifier-suffix convention the
whole repository rides on (``_us``/``_ms``/``_s`` for durations,
``_bytes``/``_kb``/... for sizes):

- **naming**: a parameter or assignment target whose *final* name
  segment is a unit-bearing stem (``latency``, ``delay``, ``rtt``, ...)
  must carry a unit suffix.  Names containing a dimensionless marker
  (``corr``, ``ratio``, ``count``, ...) are exempt — a latency
  *correlation* is a pure number.

- **mixing**: additive arithmetic (``+``/``-``, augmented or not) and
  ordering comparisons where both operands carry unit suffixes must
  agree on the unit.  ``queue_wait_us + service_time_ms`` is the
  Kingman-math bug this rule exists for.  Multiplication and division
  are exempt: that is how units legitimately convert.

Both vocabularies come from the config, so a repository can grow its
own stems (``size`` is deliberately opt-in; see config.py).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules.base import FileContext, Rule, register

__all__ = ["UnitSuffixDiscipline"]


def _suffix_unit(name: str, config) -> Optional[Tuple[str, str]]:
    """Return (dimension, unit) if ``name`` ends in a known unit suffix."""
    segments = name.lower().split("_")
    if len(segments) < 2:
        return None
    tail = segments[-1]
    if tail in config.time_suffixes:
        return ("time", tail)
    if tail in config.size_suffixes:
        return ("size", tail)
    return None


def _operand_unit(node: ast.AST, config) -> Optional[Tuple[str, str, str]]:
    """(dimension, unit, name) for a Name/Attribute operand, else None."""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    unit = _suffix_unit(name, config)
    if unit is None:
        return None
    return unit + (name,)


@register
class UnitSuffixDiscipline(Rule):
    """Quantities carry their unit in the name; arithmetic must agree.

    Bad::

        timeout = 30                      # of what? seconds? ms?
        total = deadline_ms + budget_s    # mixed units compile fine

    Good::

        timeout_s = 30
        total_ms = deadline_ms + budget_ms

    Names ending in a quantity stem (``latency``, ``deadline``, ...)
    must end in a unit suffix, and additive/comparison operands must
    carry the same suffix.  RL008 extends the same convention across
    assignments and calls.
    """

    code = "RL003"
    name = "unit-suffix-discipline"
    summary = ("quantities must carry unit suffixes and arithmetic must "
               "not mix units")

    # -- naming --------------------------------------------------------
    def _needs_suffix(self, name: str, config) -> bool:
        low = name.lower()
        segments = low.split("_")
        if not segments or segments[-1] not in config.unit_stems:
            return False
        if any(seg in config.dimensionless_markers for seg in segments):
            return False
        return _suffix_unit(low, config) is None

    def _naming_targets(self, tree: ast.Module):
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                    yield arg.arg, arg
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        yield target.id, target
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    yield node.target.id, node.target

    # -- mixing --------------------------------------------------------
    def _mixing_sites(self, tree: ast.Module):
        """Yield (left, right, op_text, anchor) for additive/ordering ops."""
        for node in ast.walk(tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                yield node.left, node.right, "+" if isinstance(node.op, ast.Add) else "-", node
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, (ast.Add, ast.Sub)):
                yield node.target, node.value, "+=" if isinstance(node.op, ast.Add) else "-=", node
            elif isinstance(node, ast.Compare) and len(node.ops) == 1:
                if isinstance(node.ops[0], (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                                            ast.Eq, ast.NotEq)):
                    yield node.left, node.comparators[0], "comparison", node

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        config = ctx.config
        for name, node in self._naming_targets(ctx.tree):
            if self._needs_suffix(name, config):
                stem = name.lower().split("_")[-1]
                units = "/".join(f"_{u}" for u in config.time_suffixes)
                yield self.finding(
                    ctx, node,
                    f"`{name}` holds a {stem} but carries no unit suffix "
                    f"({units} or a size suffix)",
                    symbol=f"name:{name}",
                )
        for left, right, op, anchor in self._mixing_sites(ctx.tree):
            lhs = _operand_unit(left, config)
            rhs = _operand_unit(right, config)
            if lhs is None or rhs is None:
                continue
            ldim, lunit, lname = lhs
            rdim, runit, rname = rhs
            if (ldim, lunit) == (rdim, runit):
                continue
            if ldim != rdim:
                detail = f"mixes dimensions ({ldim} vs {rdim})"
            else:
                detail = f"mixes units (_{lunit} vs _{runit})"
            yield self.finding(
                ctx, anchor,
                f"{op} between `{lname}` and `{rname}` {detail}; "
                f"convert explicitly first",
                symbol=f"mix:{lname}:{op}:{rname}",
            )
