"""RL009 probe purity.

Probes (:mod:`repro.sim.instrument`) are the observation plane: the
engine invokes their hooks at every event, job, and RPC transition, and
the contract is that **attaching a probe never changes what the
simulation computes** — telemetry must be free.  A hook that schedules
an event, cancels a timer, or mutates the object it was handed breaks
that contract in the worst possible way: results now differ between
instrumented and uninstrumented runs, which is exactly the class of
bug the determinism suite exists to rule out.

The rule finds every class that (transitively, across modules)
subclasses a configured probe base class, takes the hook-method names
from the base class itself, and inside each overriding hook flags:

- calls whose final attribute is a known state-mutating method
  (``config.probe_mutating_calls``: ``at``, ``cancel``, ``submit``,
  ...) on anything that is not probe-owned (``self.…`` state is the
  probe's to mutate);
- attribute or subscript **stores** into hook arguments or other
  non-probe-owned objects;
- ``global`` / ``nonlocal`` declarations (ambient state by decree).
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence, Set

from repro.analysis.findings import Finding
from repro.analysis.graph import subclasses_of
from repro.analysis.model import ClassInfo, ModuleInfo, ProgramModel
from repro.analysis.rules.base import ProgramRule, register

__all__ = ["ProbePurity"]

#: Hook-name prefixes used when no configured base class is part of the
#: analyzed program (e.g. fixture tests that define their own base).
_HOOK_PREFIXES = ("event_", "job_", "rpc_")


@register
class ProbePurity(ProgramRule):
    """Probe hooks observe the simulation; they must not steer it.

    Bad::

        class RetryNudge(Probe):
            def rpc_completed(self, rpc, outcome):
                if outcome.dropped:
                    self.engine.at(0.0, retry)   # schedules from a hook!

    Good::

        class DropCounter(Probe):
            def rpc_completed(self, rpc, outcome):
                if outcome.dropped:
                    self.drops += 1              # probe-owned state only

    A probe may mutate its own attributes freely — that is what
    accumulating counters and reservoirs are.  What it must not do is
    call scheduling/queue/RPC mutators on engine objects or write into
    the arguments the engine handed it: either one makes instrumented
    runs diverge from bare runs.
    """

    code = "RL009"
    name = "probe-purity"
    summary = ("Probe subclass hooks must not mutate engine, queue, or RPC "
               "state; instrumented runs must equal bare runs")

    def check_program(self, program: ProgramModel) -> Iterator[Finding]:
        bases = tuple(program.config.probe_base_classes)
        hook_names = self._hook_names(program, bases)
        for klass in subclasses_of(program, bases):
            module = program.modules.get(klass.module)
            if module is None:
                continue
            for method in klass.methods.values():
                if hook_names and method.name not in hook_names:
                    continue
                if not hook_names and not method.name.startswith(
                        _HOOK_PREFIXES):
                    continue
                yield from self._check_hook(program, module, klass, method)

    @staticmethod
    def _hook_names(program: ProgramModel,
                    bases: Sequence[str]) -> Set[str]:
        names: Set[str] = set()
        for qualname in bases:
            base = program.classes.get(qualname)
            if base is not None:
                names.update(m for m in base.methods
                             if not m.startswith("_"))
        return names

    # ------------------------------------------------------------------
    def _check_hook(self, program: ProgramModel, module: ModuleInfo,
                    klass: ClassInfo, method) -> Iterator[Finding]:
        mutators = set(program.config.probe_mutating_calls)
        hook = f"{klass.name}.{method.name}"
        for node in ast.walk(method.node):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                kind = "global" if isinstance(node, ast.Global) else "nonlocal"
                yield self.module_finding(
                    module, node,
                    f"probe hook `{hook}` declares `{kind}`: hooks must not "
                    f"write ambient state",
                    symbol=f"impure:{klass.qualname}.{method.name}:{kind}",
                )
            elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute):
                if node.func.attr not in mutators:
                    continue
                # `self.reset()` is the probe's own method; `self.engine
                # .at(...)` reaches *through* the probe into the engine.
                if isinstance(node.func.value, ast.Name) \
                        and node.func.value.id == "self":
                    continue
                target = self._render(node.func.value)
                yield self.module_finding(
                    module, node,
                    f"probe hook `{hook}` calls `{target}.{node.func.attr}"
                    f"(...)`, a state-mutating operation: probes observe "
                    f"the simulation, they must not steer it",
                    symbol=f"impure:{klass.qualname}.{method.name}:"
                           f"{node.func.attr}",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if not isinstance(target, (ast.Attribute, ast.Subscript)):
                        continue
                    root = self._store_root(target)
                    if root is None or self._probe_owned(root):
                        continue
                    yield self.module_finding(
                        module, target,
                        f"probe hook `{hook}` writes into "
                        f"`{self._render(target)}`: hooks must not mutate "
                        f"the objects the engine hands them",
                        symbol=f"impure:{klass.qualname}.{method.name}:store",
                    )

    @staticmethod
    def _probe_owned(node: ast.AST) -> bool:
        """True when the expression is rooted at ``self`` — probe state."""
        cur = node
        while isinstance(cur, (ast.Attribute, ast.Subscript)):
            cur = cur.value
        return isinstance(cur, ast.Name) and cur.id == "self"

    @staticmethod
    def _store_root(target: ast.AST):
        """The base expression whose attribute/item is being stored into."""
        cur = target
        if isinstance(cur, (ast.Attribute, ast.Subscript)):
            return cur.value
        return None

    @staticmethod
    def _render(node: ast.AST) -> str:
        try:
            return ast.unparse(node)
        except Exception:  # pragma: no cover - unparse is total on exprs
            return "<expr>"
