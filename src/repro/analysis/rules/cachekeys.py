"""RL007 cache-key completeness.

The content-addressed study cache (:mod:`repro.core.cache`) is only
sound if the key digest covers **every** input the cached computation
reads.  A config field that reaches the result but not the key is a
stale-cache bug: change the field, re-run, and the cache silently
serves the old result — the worst failure mode a reproduction can
have, because nothing crashes and the numbers are merely wrong.

This rule finds every function that calls a key function
(``cache_key_functions`` config, plus functions a module names in a
``CACHE_KEY_FUNCTIONS`` constant), treats the key call's arguments as
the *covered* inputs, and then checks each of the enclosing function's
parameters against them:

- a parameter passed (whole) into the key is fully covered, all of its
  attributes included;
- a parameter with only some attributes in the key (``cfg.n`` in a
  ``params={...}`` dict) is *partially* covered — reads of its other
  fields are findings, and wholesale uses are chased **through the
  call graph** (bounded depth) to discover which fields callees
  actually read, across module boundaries;
- a parameter read by the body but absent from the key entirely is a
  finding, unless listed in ``cache_key_ignored_params``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.model import (
    FunctionInfo,
    ModuleInfo,
    ProgramModel,
    iter_refs,
)
from repro.analysis.rules.base import ProgramRule, register

__all__ = ["CacheKeyCompleteness"]

#: How deep wholesale parameter uses are chased through callees.
_MAX_DEPTH = 3


def _chain_covered(chain: Tuple[str, ...],
                   covered_chains: Set[Tuple[str, ...]]) -> bool:
    """True if some covered chain is a prefix of ``chain`` (or equal)."""
    return any(chain[:len(c)] == c for c in covered_chains)


@register
class CacheKeyCompleteness(ProgramRule):
    """An input read by a cached study must be part of its cache key.

    Bad::

        def run_cached(cfg, seed, cache):
            key = study_key("toy", seed, {"n": cfg.n})   # key covers cfg.n
            return cache.get_or_compute(
                key, lambda: simulate(cfg.n, cfg.scale))  # ... but reads cfg.scale

    Good::

        def run_cached(cfg, seed, cache):
            key = study_key("toy", seed, cfg)            # whole config keyed
            return cache.get_or_compute(
                key, lambda: simulate(cfg.n, cfg.scale))

    With the bad version, editing ``cfg.scale`` and re-running serves
    the stale cached result — no error, just wrong numbers.  Inputs
    that provably cannot change the output (e.g. a ``jobs`` worker
    count with deterministic sharding) may be suppressed with a
    justified pragma.
    """

    code = "RL007"
    name = "cache-key-completeness"
    summary = ("inputs read by a cached study body must be covered by its "
               "cache-key digest")

    def check_program(self, program: ProgramModel) -> Iterator[Finding]:
        key_functions = set(program.config.cache_key_functions)
        for mod_name, names in program.declared_constant(
                "CACHE_KEY_FUNCTIONS").items():
            if isinstance(names, str):
                names = (names,)
            key_functions.update(
                n if "." in n else f"{mod_name}.{n}" for n in names)
        for fn in sorted(program.functions.values(),
                         key=lambda f: (f.path, f.node.lineno)):
            module = program.modules.get(fn.module)
            if module is None:
                continue
            yield from self._check_function(program, module, fn,
                                            key_functions)

    # ------------------------------------------------------------------
    def _check_function(self, program: ProgramModel, module: ModuleInfo,
                        fn: FunctionInfo,
                        key_functions: Set[str]) -> Iterator[Finding]:
        key_calls = [
            node for node in ast.walk(fn.node)
            if isinstance(node, ast.Call)
            and self._resolves_to_key(program, module, node, key_functions)
        ]
        if not key_calls:
            return
        params = [p for p in fn.all_params
                  if p not in program.config.cache_key_ignored_params]
        if not params:
            return

        covered_full, covered_attrs = self._coverage(key_calls, set(params))
        key_node_ids = {id(sub) for call in key_calls
                        for sub in ast.walk(call)}

        reads = self._param_reads(fn.node, set(params), key_node_ids)
        reported: Set[str] = set()
        for root, chain, node in reads:
            if root in covered_full:
                continue
            attrs = covered_attrs.get(root, set())
            if chain:
                if _chain_covered(chain, attrs):
                    continue
                label = f"{root}.{'.'.join(chain)}"
                if label in reported:
                    continue
                reported.add(label)
                yield self.module_finding(
                    module, node,
                    f"`{label}` is read by the cached study "
                    f"`{fn.name}` but absent from its cache key: editing it "
                    f"re-serves the stale cached result",
                    symbol=f"unkeyed:{fn.qualname}:{label}",
                )
            elif attrs:
                # Partially covered param used wholesale: chase callees to
                # find which fields actually flow into the computation.
                unkeyed, opaque = self._chase(program, module, fn, root,
                                              node, attrs)
                if root in reported:
                    continue
                reported.add(root)
                if unkeyed:
                    detail = ", ".join(sorted(unkeyed))
                    yield self.module_finding(
                        module, node,
                        f"`{root}` flows wholesale into the cached study "
                        f"`{fn.name}` which reads {detail}, but the key "
                        f"covers only "
                        f"{', '.join(sorted('.'.join((root,) + a) for a in attrs))}",
                        symbol=f"unkeyed:{fn.qualname}:{root}:wholesale",
                    )
                elif opaque:
                    yield self.module_finding(
                        module, node,
                        f"`{root}` flows wholesale into `{opaque}` which "
                        f"this analysis cannot see through, but the key "
                        f"covers only "
                        f"{', '.join(sorted('.'.join((root,) + a) for a in attrs))}; "
                        f"key the whole object or justify with a pragma",
                        symbol=f"unkeyed:{fn.qualname}:{root}:opaque",
                    )
            else:
                if root in reported:
                    continue
                reported.add(root)
                yield self.module_finding(
                    module, node,
                    f"parameter `{root}` is read by the cached study "
                    f"`{fn.name}` but absent from its cache key: two runs "
                    f"differing only in `{root}` share one cache entry",
                    symbol=f"unkeyed:{fn.qualname}:{root}",
                )

    @staticmethod
    def _resolves_to_key(program: ProgramModel, module: ModuleInfo,
                         call: ast.Call, key_functions: Set[str]) -> bool:
        from repro.analysis.rules.base import dotted_name
        dotted = dotted_name(call.func)
        if dotted is None:
            return False
        resolved = program.resolve(module, dotted)
        return resolved in key_functions or dotted in key_functions

    # -- coverage ------------------------------------------------------
    @staticmethod
    def _coverage(key_calls: List[ast.Call], params: Set[str]
                  ) -> Tuple[Set[str], Dict[str, Set[Tuple[str, ...]]]]:
        """(fully covered params, param -> covered attribute chains)."""
        covered_full: Set[str] = set()
        covered_attrs: Dict[str, Set[Tuple[str, ...]]] = {}
        exprs: List[ast.AST] = []
        for call in key_calls:
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                if isinstance(arg, ast.Dict):
                    exprs.extend(v for v in arg.values if v is not None)
                else:
                    exprs.append(arg)
        for expr in exprs:
            for root, chain, _node in iter_refs(expr):
                if root not in params:
                    continue
                if chain:
                    covered_attrs.setdefault(root, set()).add(chain)
                else:
                    covered_full.add(root)
        return covered_full, covered_attrs

    # -- reads ---------------------------------------------------------
    @staticmethod
    def _param_reads(fn_node: ast.AST, params: Set[str],
                     exclude_ids: Set[int]
                     ) -> List[Tuple[str, Tuple[str, ...], ast.AST]]:
        reads = []
        for root, chain, node in iter_refs(fn_node):
            if id(node) in exclude_ids or root not in params:
                continue
            ctx = getattr(node, "ctx", None)
            if ctx is not None and not isinstance(ctx, ast.Load):
                continue
            reads.append((root, chain, node))
        return reads

    # -- interprocedural chase ----------------------------------------
    def _chase(self, program: ProgramModel, module: ModuleInfo,
               fn: FunctionInfo, param: str, use_node: ast.AST,
               covered: Set[Tuple[str, ...]],
               depth: int = 0,
               visited: Optional[Set[Tuple[str, str]]] = None
               ) -> Tuple[Set[str], Optional[str]]:
        """Chase wholesale uses of ``param`` through resolvable callees.

        Returns ``(unkeyed attribute labels, opaque use description)``:
        the attribute chains (rendered ``param.field``) that some
        callee reads but the key does not cover, and — when the chase
        hits a use it cannot see through (unresolvable callee, return,
        subscript, depth limit) — a description of that use.
        """
        if visited is None:
            visited = set()
        key = (fn.qualname, param)
        if key in visited or depth > _MAX_DEPTH:
            return set(), f"`{fn.qualname}` (depth limit)" if depth > _MAX_DEPTH else None
        visited.add(key)

        unkeyed: Set[str] = set()
        opaque: Optional[str] = None
        parents = {id(child): parent for parent in ast.walk(fn.node)
                   for child in ast.iter_child_nodes(parent)}
        for root, chain, node in iter_refs(fn.node):
            if root != param:
                continue
            ctx = getattr(node, "ctx", None)
            if ctx is not None and not isinstance(ctx, ast.Load):
                continue
            if chain:
                if not _chain_covered(chain, covered):
                    unkeyed.add(f"{param}.{'.'.join(chain)}")
                continue
            # Wholesale use: fine if it is an argument to a resolvable
            # callee whose corresponding parameter we can recurse into.
            parent = parents.get(id(node))
            callee, callee_param = self._callee_binding(
                program, program.modules.get(fn.module, module), parent, node)
            if callee is None or callee_param is None:
                opaque = opaque or self._describe_use(parent, fn)
                continue
            sub_unkeyed, sub_opaque = self._chase(
                program, program.modules.get(callee.module, module),
                callee, callee_param, node, covered, depth + 1, visited)
            unkeyed.update(
                u.replace(f"{callee_param}.", f"{param}.", 1)
                if u.startswith(f"{callee_param}.") else u
                for u in sub_unkeyed)
            opaque = opaque or sub_opaque
        return unkeyed, opaque

    @staticmethod
    def _callee_binding(program: ProgramModel, module: ModuleInfo,
                        parent: Optional[ast.AST], arg_node: ast.AST
                        ) -> Tuple[Optional[FunctionInfo], Optional[str]]:
        """Resolve (callee, parameter name) when ``arg_node`` is a call arg."""
        call = parent
        keyword = None
        if isinstance(parent, ast.keyword):
            keyword = parent.arg
            return CacheKeyCompleteness._bind_keyword(
                program, module, parent, keyword)
        if not isinstance(call, ast.Call):
            return None, None
        callee = program.resolve_call(module, call)
        if callee is None:
            return None, None
        if arg_node in call.args:
            index = call.args.index(arg_node)
            params = list(callee.params)
            if callee.is_method and params and params[0] in ("self", "cls"):
                params = params[1:]
            if index < len(params):
                return callee, params[index]
        return None, None

    @staticmethod
    def _bind_keyword(program: ProgramModel, module: ModuleInfo,
                      kw_node: ast.keyword, keyword: Optional[str]
                      ) -> Tuple[Optional[FunctionInfo], Optional[str]]:
        # The keyword's parent call is not linked from the node; re-walk.
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and kw_node in node.keywords:
                callee = program.resolve_call(module, node)
                if callee is not None and keyword in callee.all_params:
                    return callee, keyword
                return None, None
        return None, None

    @staticmethod
    def _describe_use(parent: Optional[ast.AST],
                      fn: FunctionInfo) -> str:
        if isinstance(parent, ast.Call):
            from repro.analysis.rules.base import dotted_name
            name = dotted_name(parent.func)
            if name:
                return f"`{name}(...)`"
        return f"an expression in `{fn.qualname}`"
