"""Rule base class, per-file context, and the rule registry.

A rule is a class with a ``code`` (``RL###``), a one-line ``summary``,
and a ``check(ctx)`` generator yielding :class:`Finding`\\ s.  Rules are
registered at import time via :func:`register`; the runner instantiates
every enabled rule once per process and feeds it one
:class:`FileContext` per file.

Rules never read the filesystem: the context carries the parsed AST,
the raw source, the repo-relative path, and the resolved dotted module
name (``None`` when the file is outside the configured root package).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Type

from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding

__all__ = ["FileContext", "Rule", "ProgramRule", "register", "all_rules",
           "get_rule"]


@dataclass
class FileContext:
    """Everything a rule may look at for one file."""

    path: str                    # repo-relative posix path
    source: str
    tree: ast.Module
    config: LintConfig
    module: Optional[str] = None  # dotted name, e.g. "repro.rpc.channel"

    def in_paths(self, prefixes) -> bool:
        """True if this file sits under any of the given path prefixes."""
        return any(
            self.path == p.rstrip("/") or self.path.startswith(p)
            for p in prefixes
        )


class Rule:
    """Base class; subclasses set ``code``/``name``/``summary``."""

    code: str = "RL000"
    name: str = "unnamed"
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str,
                symbol: str = "") -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            code=self.code,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            symbol=symbol,
        )


class ProgramRule(Rule):
    """A rule that sees the whole program at once.

    File rules run once per file with a :class:`FileContext`; program
    rules run once per lint invocation with the built
    :class:`~repro.analysis.model.ProgramModel` (symbol table, import
    graph, class hierarchy) and may relate code across files.  Their
    findings are still anchored to a (path, line) and still pass
    through that file's pragmas and the baseline like any other.
    """

    program = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())          # program rules have no per-file pass

    def check_program(self, program) -> Iterator[Finding]:
        """Yield findings over a :class:`ProgramModel`."""
        raise NotImplementedError

    def module_finding(self, module, node: ast.AST, message: str,
                       symbol: str = "") -> Finding:
        """Build a finding anchored at ``node`` in ``module``'s file."""
        return Finding(
            code=self.code,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            symbol=symbol,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the registry (codes must be unique)."""
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code!r}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Registered rule classes, sorted by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Type[Rule]:
    return _REGISTRY[code]


def resolve_imports(tree: ast.Module) -> Dict[str, str]:
    """Map local alias -> dotted origin for every import in ``tree``.

    ``import time as t`` yields ``{"t": "time"}``;
    ``from datetime import datetime`` yields ``{"datetime": "datetime.datetime"}``.
    Relative imports are skipped (they cannot reach the banned modules).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                origin = item.name if item.asname else item.name.split(".")[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


# Canonically defined on the program model (which must not import the
# rules package, to keep the import graph acyclic); re-exported here
# because every file rule reaches for it.
from repro.analysis.model import dotted_name  # noqa: E402,F401
