"""RL004 layer purity: imports must follow the declared package DAG.

The config declares layers lowest-first (``sim`` at the bottom,
``studies``/``cli`` at the top).  A module may import from its own
layer or any layer below it; an import that reaches *upward* couples a
substrate to its consumers and eventually turns the DAG into a cycle.
Packages listed as *standalone* (the linter itself) sit outside the
stack entirely: they import nothing from the root package but
themselves, and nothing imports them.

Only the file's dotted module path and its import statements matter, so
the rule works identically on the real tree and on test fixtures laid
out as ``<tmp>/repro/<pkg>/mod.py``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding
from repro.analysis.rules.base import FileContext, Rule, register

__all__ = ["LayerPurity"]


def _top_package(module: str, root: str) -> Optional[str]:
    """``repro.rpc.channel`` -> ``rpc``; ``repro.studies`` -> ``studies``."""
    parts = module.split(".")
    if not parts or parts[0] != root:
        return None
    if len(parts) == 1:
        return None  # the root __init__ itself is unconstrained
    return parts[1]


@register
class LayerPurity(Rule):
    """Imports must follow the declared package DAG, never upward.

    Bad::

        # in repro/sim/engine.py (bottom layer)
        from repro.studies.figures import render   # substrate -> consumer

    Good::

        # in repro/studies/figures.py (top layer)
        from repro.sim.engine import Engine        # consumer -> substrate

    An upward import couples a low layer to its consumers and turns
    the DAG into a cycle; standalone packages (the linter itself) sit
    outside the stack and import nothing from it.
    """

    code = "RL004"
    name = "layer-purity"
    summary = "no upward imports in the declared package layer DAG"

    def _imported_modules(self, tree: ast.Module):
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    yield item.name, node
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                yield node.module, node

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        config = ctx.config
        if ctx.module is None:
            return
        root = config.root_package
        own_pkg = _top_package(ctx.module, root)
        if own_pkg is None:
            return
        own_layer = config.layer_of(own_pkg)
        own_standalone = own_pkg in config.standalone_packages
        if own_layer is None and not own_standalone:
            return  # unknown package: not part of the declared stack

        for target, node in self._imported_modules(ctx.tree):
            target_pkg = _top_package(target, root)
            if target_pkg is None or target_pkg == own_pkg:
                continue
            symbol = f"{own_pkg}->{target_pkg}"
            if own_standalone:
                yield self.finding(
                    ctx, node,
                    f"standalone package `{root}.{own_pkg}` must not import "
                    f"`{root}.{target_pkg}`: the linter stays decoupled from "
                    f"the code it checks",
                    symbol=symbol,
                )
                continue
            if target_pkg in config.standalone_packages:
                yield self.finding(
                    ctx, node,
                    f"`{root}.{target_pkg}` is standalone tooling; layered "
                    f"code must not depend on it",
                    symbol=symbol,
                )
                continue
            target_layer = config.layer_of(target_pkg)
            if target_layer is None:
                continue
            if own_layer is not None and target_layer > own_layer:
                chain = " -> ".join(
                    "/".join(group) for group in config.layers
                )
                yield self.finding(
                    ctx, node,
                    f"upward import: `{root}.{own_pkg}` (layer {own_layer}) "
                    f"imports `{root}.{target_pkg}` (layer {target_layer}); "
                    f"the DAG is {chain}",
                    symbol=symbol,
                )
