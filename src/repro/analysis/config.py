"""Configuration for ``repro-lint``: defaults plus ``[tool.repro-lint]``.

The built-in defaults encode this repository's canonical invariants (the
layer DAG, the blessed RNG module, the unit-suffix vocabulary), so the
tool is useful with no configuration at all.  A ``[tool.repro-lint]``
table in ``pyproject.toml`` overrides any field; parsing uses
:mod:`tomllib` where available (Python >= 3.11) and silently falls back
to the defaults on older interpreters rather than growing a dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Optional, Tuple

__all__ = ["LintConfig", "load_config", "find_pyproject"]

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.9/3.10
    tomllib = None


#: The declared package DAG, lowest layer first.  A module may import
#: from its own layer or below, never from above.
DEFAULT_LAYERS: Tuple[Tuple[str, ...], ...] = (
    ("sim",),
    ("fleet", "rpc", "net"),
    ("workloads", "obs"),
    ("core",),
    ("studies", "cli", "serve"),
)


@dataclass(frozen=True)
class LintConfig:
    """Every knob the rules and runner read.  Frozen: derive with ``replace``."""

    # -- runner -------------------------------------------------------
    baseline: Optional[str] = "tools/repro_lint_baseline.json"
    select: Tuple[str, ...] = ()          # empty = all registered rules
    ignore: Tuple[str, ...] = ()
    root: str = "."                       # repo root; paths reported relative to it
    #: Path prefixes (repo-relative, posix) excluded from linting
    #: entirely — not parsed, not part of the program model.
    exclude_paths: Tuple[str, ...] = ()

    # -- RL001 no-wall-clock ------------------------------------------
    #: Path prefixes (repo-relative, posix) where wall-clock use is fine:
    #: benchmark harnesses and offline tooling measure real elapsed time;
    #: serve mode (repro.serve) observes a live server whose workload
    #: *is* wall time; and the clock module defines the one sanctioned
    #: WallClock source itself.
    wallclock_allow_paths: Tuple[str, ...] = (
        "tools/", "benchmarks/", "examples/", "tests/",
        "src/repro/serve/", "src/repro/sim/clock.py",
    )

    # -- RL002 no-global-random ---------------------------------------
    #: The one module allowed to construct generators however it likes —
    #: everything else threads RNGs from here (or seeds explicitly).
    random_allow_paths: Tuple[str, ...] = (
        "src/repro/sim/random.py", "tools/", "tests/", "benchmarks/",
    )

    # -- RL003 unit-suffix discipline ---------------------------------
    time_suffixes: Tuple[str, ...] = ("ns", "us", "ms", "s")
    size_suffixes: Tuple[str, ...] = ("bytes", "kb", "mb", "gb", "kib", "mib")
    #: Identifiers whose *final* segment is one of these stems must carry
    #: a unit suffix.  ``size`` is not enforced by default because bare
    #: ``*_size`` legitimately names element counts (buffers, reservoirs);
    #: opt in via ``[tool.repro-lint] unit_stems`` when ready.
    unit_stems: Tuple[str, ...] = (
        "latency", "delay", "timeout", "deadline", "duration",
        "elapsed", "rtt", "jitter", "interval",
    )
    #: A name containing any of these segments is dimensionless (a ratio,
    #: correlation, count, ...) and exempt from the naming check.
    dimensionless_markers: Tuple[str, ...] = (
        "corr", "correlation", "ratio", "frac", "fraction", "count",
        "rank", "norm", "share", "scale", "mult", "factor", "quantile",
        "pct", "percentile", "prob", "weight", "index", "idx",
    )

    # -- RL004 layer purity -------------------------------------------
    root_package: str = "repro"
    layers: Tuple[Tuple[str, ...], ...] = DEFAULT_LAYERS
    #: Packages outside the layer stack entirely: they may import only
    #: themselves (plus stdlib/third-party), and no layered package may
    #: import them.  The linter itself lives here.
    standalone_packages: Tuple[str, ...] = ("analysis",)

    # -- RL006 hidden worker state ------------------------------------
    #: Modules whose code runs inside pool workers.  Everything
    #: import-reachable from them must be free of hidden process-local
    #: state, or ``--jobs N`` diverges from ``--jobs 1`` under
    #: fork vs spawn.  Modules declaring a ``WORKER_ENTRYPOINTS``
    #: constant are added automatically.
    worker_entrypoint_modules: Tuple[str, ...] = ("repro.core.parallel",)

    # -- RL007 cache-key completeness ---------------------------------
    #: Functions whose call marks the enclosing function as a cached
    #: study body; their arguments define the cache key.  Modules
    #: declaring ``CACHE_KEY_FUNCTIONS`` add their own automatically.
    cache_key_functions: Tuple[str, ...] = ("repro.core.cache.study_key",)
    #: Parameters of a cached study that legitimately stay out of the
    #: key (the cache handle itself, instrumentation).
    cache_key_ignored_params: Tuple[str, ...] = ("self", "cache", "probe")

    # -- RL009 probe purity -------------------------------------------
    #: Base classes whose subclasses are observation-only: their hook
    #: methods must not mutate engine/queue/RPC state.
    probe_base_classes: Tuple[str, ...] = ("repro.sim.instrument.Probe",)
    #: Method names that mutate simulation state when called from a
    #: probe hook (scheduling, cancellation, queue and RPC operations).
    probe_mutating_calls: Tuple[str, ...] = (
        "at", "after", "cancel", "schedule", "submit", "enqueue",
        "dequeue", "send", "send_request", "complete", "reset",
        "run", "run_until", "step", "advance", "compact",
    )

    # ------------------------------------------------------------------
    def layer_of(self, package: str) -> Optional[int]:
        """Layer index of a top-level subpackage, or None if unknown."""
        for i, group in enumerate(self.layers):
            if package in group:
                return i
        return None

    def rule_enabled(self, code: str) -> bool:
        if self.select and code not in self.select:
            return False
        return code not in self.ignore


def find_pyproject(start: Path) -> Optional[Path]:
    """Walk up from ``start`` to the first directory holding pyproject.toml."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in [current, *current.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def _coerce(name: str, value):
    """TOML arrays arrive as lists; the config stores tuples."""
    if name == "layers":
        return tuple(tuple(group) for group in value)
    if isinstance(value, list):
        return tuple(value)
    return value


def load_config(pyproject: Optional[Path] = None,
                search_from: Optional[Path] = None) -> LintConfig:
    """Build a config from defaults plus an optional ``[tool.repro-lint]``.

    ``pyproject`` names the file explicitly; otherwise it is discovered
    by walking up from ``search_from`` (default: the current directory).
    The config's ``root`` is set to the pyproject's directory so findings
    and allowlist paths are repo-relative regardless of invocation cwd.
    """
    config = LintConfig()
    if pyproject is None:
        pyproject = find_pyproject(search_from or Path.cwd())
    if pyproject is None or tomllib is None:
        return config
    try:
        with open(pyproject, "rb") as fh:
            data = tomllib.load(fh)
    except (OSError, ValueError):
        return config
    table = data.get("tool", {}).get("repro-lint", {})
    config = replace(config, root=str(pyproject.parent))
    known = {f.name for f in fields(LintConfig)}
    overrides = {
        key.replace("-", "_"): _coerce(key.replace("-", "_"), value)
        for key, value in table.items()
        if key.replace("-", "_") in known
    }
    return replace(config, **overrides)
