"""``python -m repro.analysis`` — same entry point as the console script."""

from repro.analysis.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
