"""Fig. 1: RPS per CPU cycle over 700 days.

The paper's Fig. 1 divides daily fleet RPC throughput by daily CPU cycles
consumed, normalized to day one, and finds ~30 % annual growth (64 % over
the 700-day window), driven by (a) hardware/stack optimization reducing
cycles per RPC and (b) finer-grained (microservice-style) decomposition
reducing work per RPC.

We model those two mechanisms explicitly and record daily counters through
Monarch, then run the same normalize-and-fit analysis the paper does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.obs.monarch import Monarch
from repro.workloads import calibration as cal

__all__ = ["GrowthModel", "GrowthResult", "run_growth_study", "fit_annual_growth"]

DAY_S = 86400.0
YEAR_DAYS = 365.25


@dataclass
class GrowthModel:
    """Generates daily fleet RPS and CPU-cycle counters.

    ``rps_annual_growth`` is organic traffic growth; ``cycles_per_rpc_annual
    _decline`` combines stack optimization and service decomposition. The
    ratio's annual growth is approximately
    ``(1 + rps_g) / (1 - decline) - 1`` relative to CPU growth — with the
    defaults the RPS/CPU ratio grows ~30 %/yr as in the paper.
    """

    base_rps: float = 1e9
    base_cycles_per_rpc: float = 1.0
    rps_annual_growth: float = 0.45
    cycles_per_rpc_annual_decline: float = 0.231
    weekly_amplitude: float = 0.05
    noise_sigma: float = 0.01
    seed: int = 42

    def series(self, days: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Returns (day_index, rps, cpu_cycles) arrays."""
        rng = np.random.default_rng(self.seed)
        t = np.arange(days, dtype=float)
        years = t / YEAR_DAYS
        rps = self.base_rps * np.power(1.0 + self.rps_annual_growth, years)
        cpr = self.base_cycles_per_rpc * np.power(
            1.0 - self.cycles_per_rpc_annual_decline, years
        )
        weekly = 1.0 + self.weekly_amplitude * np.sin(2 * np.pi * t / 7.0)
        noise_r = np.exp(rng.normal(0.0, self.noise_sigma, days))
        noise_c = np.exp(rng.normal(0.0, self.noise_sigma, days))
        rps_obs = rps * weekly * noise_r
        cpu_obs = rps * weekly * cpr * noise_c
        return t, rps_obs, cpu_obs


@dataclass
class GrowthResult:
    """Computed statistics for this analysis; ``render()`` prints the paper-vs-measured table."""
    days: np.ndarray
    normalized_ratio: np.ndarray   # RPS/CPU normalized to day one (Fig. 1 y-axis)
    annual_growth: float           # fitted
    total_growth: float            # ratio[-1] relative to ratio[0], minus 1

    def paper_targets(self) -> Tuple[float, float]:
        """The paper's (annual, total) growth anchors."""
        return (cal.RPS_PER_CPU_ANNUAL_GROWTH, cal.RPS_PER_CPU_TOTAL_GROWTH)


def fit_annual_growth(days: np.ndarray, ratio: np.ndarray) -> float:
    """Log-linear least-squares fit of the ratio's annual growth rate."""
    if len(days) < 2:
        raise ValueError("need at least two points to fit growth")
    slope, _ = np.polyfit(np.asarray(days, dtype=float), np.log(ratio), 1)
    return float(math.exp(slope * YEAR_DAYS) - 1.0)


def run_growth_study(days: int = cal.STUDY_DAYS,
                     model: Optional[GrowthModel] = None,
                     monarch: Optional[Monarch] = None) -> GrowthResult:
    """Generate the counters, store them in Monarch, and run the analysis.

    The analysis half reads *only* from Monarch — the same separation the
    paper's authors had.
    """
    model = model or GrowthModel()
    monarch = monarch if monarch is not None else Monarch()
    t, rps, cpu = model.series(days)
    for day, r, c in zip(t, rps, cpu):
        monarch.write("fleet/rps", None, day * DAY_S, r)
        monarch.write("fleet/cpu_cycles", None, day * DAY_S, c)

    # Analysis: read back, window to days, ratio, normalize, fit.
    rt, rv = monarch.read("fleet/rps")
    ct, cv = monarch.read("fleet/cpu_cycles")
    if len(rt) == 0 or not np.array_equal(rt, ct):
        raise RuntimeError("misaligned fleet counters in Monarch")
    ratio = rv / cv
    normalized = ratio / ratio[0]
    day_idx = rt / DAY_S
    return GrowthResult(
        days=day_idx,
        normalized_ratio=normalized,
        annual_growth=fit_annual_growth(day_idx, normalized),
        total_growth=float(normalized[-1] - 1.0),
    )
