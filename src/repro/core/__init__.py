"""The paper's contribution: the characterization analyses.

Every module here computes one (or one family of) figure/table from the
observability substrate's output, never from simulator internals:

========  ====================================================
Figure    Module
========  ====================================================
Fig. 1    :mod:`repro.core.growth`
Fig. 2    :mod:`repro.core.latency`
Fig. 3    :mod:`repro.core.popularity`
Figs 4-5  :mod:`repro.core.calltree`
Figs 6-7  :mod:`repro.core.sizes`
Fig. 8    :mod:`repro.core.services`
Figs 10-13 :mod:`repro.core.tax`
Figs 14,16 :mod:`repro.core.breakdown`
Fig. 15   :mod:`repro.core.whatif`
Figs 17-18 :mod:`repro.core.exogenous`
Fig. 19   :mod:`repro.core.crosscluster`
Figs 20-21 :mod:`repro.core.cycles`
Fig. 22   :mod:`repro.core.loadbalance`
Fig. 23   :mod:`repro.core.errors`
§2.4      :mod:`repro.core.related` (cross-study comparison)
extras    :mod:`repro.core.critical_path`, :mod:`repro.core.export`,
          :mod:`repro.core.heatmap`
========  ====================================================

:mod:`repro.core.fleetsample` is the shared Tier-A engine: it samples a
calibrated catalog into per-method populations that the per-figure modules
then summarize. :mod:`repro.core.stats` holds the distribution machinery
(per-method percentile grids — the paper's heatmaps — and CDFs), and
:mod:`repro.core.report` renders results as aligned text tables.
"""

from repro.core.fleetsample import FleetSample, run_fleet_study
from repro.core.stats import MethodPercentiles, cdf_points, percentile_grid

__all__ = [
    "FleetSample",
    "MethodPercentiles",
    "cdf_points",
    "percentile_grid",
    "run_fleet_study",
]
