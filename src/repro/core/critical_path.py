"""Critical-path analysis over nested RPC traces.

The paper measures *leaf* RPC anatomy in depth and tree *shape* separately;
what connects them — and what systems like RPC Chains and CRISP (§6) act
on — is the **critical path**: the chain of spans that actually determines
a root RPC's completion time. With partition/aggregate fanout, a parent
waits for its slowest child, so the critical path threads through tail
children, and every extra level adds another round of stack + wire tax.

This module synthesizes full multi-level traces from the catalog (tree
shape from the fanout model, per-span component latencies from the method
specs), then:

- extracts the critical path of each trace,
- attributes its time to application vs tax (queue/wire/stack) per level,
- reports how the tax share of the critical path grows with tree depth —
  the quantitative version of the paper's observation that chained RPC
  systems gain more on deeper trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.calltree import build_generator
from repro.core.report import fmt_seconds, format_table
from repro.rpc.calltree import CallNode, CallTree, FlatForest, FlatTree
from repro.rpc.stack import APP_COMPONENT, COMPONENTS
from repro.workloads.catalog import Catalog, LAYER_LEAF, sample_method_calls

__all__ = ["TraceSpan", "CriticalPath", "CriticalPathResult",
           "CriticalPathAccumulator", "synthesize_trace", "critical_path",
           "critical_path_flat", "critical_path_forest",
           "run_critical_path_study"]


@dataclass
class TraceSpan:
    """One RPC in a synthesized multi-level trace.

    ``local_app_s`` is the handler's own compute (excluding child waits);
    ``tax_s`` is the span's total non-application latency (stack + wire +
    queues). ``total_s`` composes bottom-up: a parent's completion time is
    its tax, plus its own compute, plus the slowest child (children run in
    parallel — the partition/aggregate pattern).
    """

    method_id: int
    depth: int
    local_app_s: float
    tax_s: float
    children: List["TraceSpan"] = field(default_factory=list)
    _total: Optional[float] = None

    def total_s(self) -> float:
        """Total seconds (application + tax)."""
        if self._total is None:
            child_wait = max((c.total_s() for c in self.children), default=0.0)
            self._total = self.tax_s + self.local_app_s + child_wait
        return self._total


@dataclass
class CriticalPath:
    """The chain of spans that sets a root's completion time."""

    spans: List[TraceSpan]
    app_s: float
    tax_s: float

    @property
    def depth(self) -> int:
        """Number of spans on the path."""
        return len(self.spans)

    @property
    def total_s(self) -> float:
        """Total seconds (application + tax)."""
        return self.app_s + self.tax_s

    @property
    def tax_fraction(self) -> float:
        """Tax as a fraction of the total."""
        return self.tax_s / self.total_s if self.total_s > 0 else 0.0


def synthesize_trace(catalog: Catalog, tree: CallTree,
                     rng: np.random.Generator) -> TraceSpan:
    """Assign per-span latencies to a call tree's nodes.

    Each node draws one sample of its method's components; the application
    component is its *local* compute (nested waits are composed explicitly
    by :meth:`TraceSpan.total_s`, mirroring how the paper notes that child
    time is folded into the parent's application time in Dapper).
    """
    def build(node: CallNode) -> TraceSpan:
        """Recursive constructor helper."""
        spec = catalog.methods[node.method_id]
        sample = sample_method_calls(spec, rng, 1, config=catalog.config)
        row = sample.matrix.row(0)
        span = TraceSpan(
            method_id=node.method_id,
            depth=node.depth,
            local_app_s=row.server_application,
            tax_s=row.tax(),
            children=[build(c) for c in node.children],
        )
        return span

    return build(tree.root)


def critical_path(root: TraceSpan) -> CriticalPath:
    """Walk the slowest-child chain from the root down."""
    spans: List[TraceSpan] = []
    app = tax = 0.0
    node: Optional[TraceSpan] = root
    while node is not None:
        spans.append(node)
        app += node.local_app_s
        tax += node.tax_s
        node = max(node.children, key=lambda c: c.total_s(), default=None)
    return CriticalPath(spans=spans, app_s=app, tax_s=tax)


@dataclass
class CriticalPathResult:
    """Aggregates across many synthesized traces."""

    n_traces: int
    mean_depth: float
    mean_tax_fraction: float
    tax_fraction_by_depth: Dict[int, float]   # path depth -> mean tax share
    tax_seconds_by_depth: Dict[int, float]    # path depth -> mean tax seconds
    path_depths: np.ndarray                   # per-path depth
    path_tax_s: np.ndarray                    # per-path total tax seconds
    mean_total_s: float

    def rows(self):
        """Rows for the rendered text table."""
        out = [
            ("traces analyzed", str(self.n_traces), ""),
            ("mean critical-path depth", f"{self.mean_depth:.1f}", ""),
            ("mean root latency", fmt_seconds(self.mean_total_s), ""),
            ("mean tax share of critical path",
             f"{self.mean_tax_fraction:.1%}", "grows with depth"),
        ]
        for depth in sorted(self.tax_seconds_by_depth):
            out.append((
                f"  @ path depth {depth}",
                f"{fmt_seconds(self.tax_seconds_by_depth[depth])} tax "
                f"({self.tax_fraction_by_depth.get(depth, 0.0):.0%})",
                "",
            ))
        return out

    def render(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(
            ("statistic", "measured", "note"), self.rows(),
            title="Critical-path analysis (CRISP/RPC-Chain motivation)",
        )

    def tax_grows_with_depth(self) -> bool:
        """Deeper paths stack more *absolute* per-hop tax — the RPC-Chain
        case. (The tax *share* need not grow: deep paths often thread
        through slow, application-dominated methods.)

        Compared on medians split at the median depth: per-bucket means
        are dominated by rare congested-WAN outliers.
        """
        if len(self.path_depths) < 10:
            return False
        med_depth = np.median(self.path_depths)
        shallow = self.path_tax_s[self.path_depths <= med_depth]
        deep = self.path_tax_s[self.path_depths > med_depth]
        if len(shallow) == 0 or len(deep) == 0:
            return False
        return float(np.median(deep)) > float(np.median(shallow))


def critical_path_flat(tree: FlatTree, app_s: np.ndarray,
                       tax_s: np.ndarray) -> Tuple[int, float, float]:
    """``(depth, app_s, tax_s)`` of a flat tree's critical path.

    Completion times compose bottom-up one BFS level at a time (a parent
    waits for its slowest child), then the path walks down from the root
    through each slowest child — O(levels) bulk operations plus an
    O(path-depth) descent, no per-node Python objects.
    """
    n = tree.size
    total = np.zeros(n)
    child_wait = np.zeros(n)
    levels = tree.level_slices()
    for sl in reversed(levels):
        total[sl] = tax_s[sl] + app_s[sl] + child_wait[sl]
        if sl.start > 0:  # the root has no parent to notify
            np.maximum.at(child_wait, tree.parents[sl], total[sl])

    idx = 0
    depth = 1
    path_app = float(app_s[0])
    path_tax = float(tax_s[0])
    while True:
        children = tree.children_slice(idx)
        if children.start >= children.stop:
            break
        idx = children.start + int(np.argmax(total[children]))
        path_app += float(app_s[idx])
        path_tax += float(tax_s[idx])
        depth += 1
    return depth, path_app, path_tax


def critical_path_forest(forest: FlatForest, app_s: np.ndarray,
                         tax_s: np.ndarray
                         ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-tree ``(depths, app_s, tax_s)`` critical paths for a shard.

    The forest counterpart of :func:`critical_path_flat`: completion
    times compose bottom-up across the forest's global BFS levels, and
    then *every tree's* path walks down one level per iteration — the
    per-level numpy dispatch amortizes over the whole shard instead of
    being paid per tree. For each tree the result is bitwise what
    :func:`critical_path_flat` computes on the extracted
    :meth:`~repro.rpc.calltree.FlatForest.tree` (same composition order,
    same first-max tie-break), which the equivalence tests assert.
    """
    n = forest.size
    levels = forest.level_slices()
    total = np.zeros(n)
    child_wait = np.zeros(n)
    for sl in reversed(levels):
        total[sl] = tax_s[sl] + app_s[sl] + child_wait[sl]
        if sl.start > 0:
            np.maximum.at(child_wait, forest.parents[sl], total[sl])

    # Best (slowest, earliest on ties) child of every node: a child lies
    # on its parent's critical path iff its total equals the parent's
    # child_wait — the same element np.argmax would pick, found without
    # per-node blocks.
    best = np.full(n, -1, dtype=np.int64)
    for sl in levels[1:]:
        parents_l = np.asarray(forest.parents[sl], dtype=np.int64)
        on_path = total[sl] == child_wait[parents_l]
        winners = np.flatnonzero(on_path)
        uniq, first = np.unique(parents_l[winners], return_index=True)
        best[uniq] = winners[first] + sl.start

    n_trees = forest.n_trees
    depths = np.ones(n_trees, dtype=np.int64)
    apps = np.asarray(app_s[:n_trees], dtype=np.float64).copy()
    taxes = np.asarray(tax_s[:n_trees], dtype=np.float64).copy()
    # Roots are the first n_trees nodes, in tree order.
    cur = np.arange(n_trees, dtype=np.int64)
    alive = best[cur] >= 0
    while np.any(alive):
        cur[alive] = best[cur[alive]]
        step = cur[alive]
        apps[alive] += app_s[step]
        taxes[alive] += tax_s[step]
        depths[alive] += 1
        alive[alive] = best[step] >= 0
    return depths, apps, taxes


class CriticalPathAccumulator:
    """Shard-keyed fold state for the streaming critical-path study.

    Each shard contributes its per-path ``(depths, apps, taxes)``
    arrays, keyed by shard index; :meth:`result` assembles them in shard
    order and aggregates exactly like the in-memory study. Because the
    per-shard arrays are pure functions of ``(seed, shard_index)`` and
    assembly order is fixed, the result is bitwise independent of how
    shards were scheduled, transported, or spilled.
    """

    def __init__(self) -> None:
        self._parts: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    @property
    def n_traces(self) -> int:
        """Paths folded so far."""
        return sum(p[0].size for p in self._parts.values())

    def fold(self, shard_index: int, depths: np.ndarray, apps: np.ndarray,
             taxes: np.ndarray) -> None:
        """Fold one shard's per-path arrays."""
        if shard_index in self._parts:
            raise ValueError(f"shard {shard_index} already folded")
        self._parts[shard_index] = (np.asarray(depths, dtype=np.int64),
                                    np.asarray(apps, dtype=np.float64),
                                    np.asarray(taxes, dtype=np.float64))

    def merge(self, other: "CriticalPathAccumulator") -> None:
        """Adopt another accumulator's shards (indices must not collide)."""
        for shard_index, (d, a, t) in other._parts.items():
            self.fold(shard_index, d, a, t)

    def result(self) -> "CriticalPathResult":
        """Aggregate all folded shards, in shard order."""
        if not self._parts:
            raise ValueError("no shards folded")
        order = sorted(self._parts)
        depths = np.concatenate([self._parts[i][0] for i in order])
        apps = np.concatenate([self._parts[i][1] for i in order])
        taxes = np.concatenate([self._parts[i][2] for i in order])
        return _aggregate_paths(depths, apps, taxes)


def _aggregate_paths(depths: np.ndarray, apps: np.ndarray,
                     taxes: np.ndarray) -> CriticalPathResult:
    """Shared tail of the in-memory and streaming studies."""
    totals = apps + taxes
    fractions = np.where(totals > 0, taxes / np.maximum(totals, 1e-300), 0.0)
    frac_by_depth: Dict[int, List[float]] = {}
    tax_by_depth: Dict[int, List[float]] = {}
    for d, f, t in zip(depths, fractions, taxes):
        frac_by_depth.setdefault(int(d), []).append(float(f))
        tax_by_depth.setdefault(int(d), []).append(float(t))
    return CriticalPathResult(
        n_traces=int(depths.size),
        mean_depth=float(depths.mean()),
        mean_tax_fraction=float(fractions.mean()),
        path_depths=depths,
        path_tax_s=taxes,
        tax_fraction_by_depth={
            d: float(np.mean(v)) for d, v in sorted(frac_by_depth.items())
            if len(v) >= 3
        },
        tax_seconds_by_depth={
            d: float(np.mean(v)) for d, v in sorted(tax_by_depth.items())
            if len(v) >= 3
        },
        mean_total_s=float(totals.mean()),
    )


def _sample_components(catalog: Catalog, method_ids: np.ndarray,
                       rng: np.random.Generator
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-node ``(app_s, tax_s)`` drawn in one batch per distinct method.

    The scalar path sampled every node with ``n=1`` — thirty-odd numpy
    dispatches per node. Grouping the pooled nodes of *all* traces by
    method turns that into one vectorized draw per method actually
    present.
    """
    app_s = np.empty(method_ids.size)
    tax_s = np.empty(method_ids.size)
    for mid in np.unique(method_ids):
        mask = method_ids == mid
        sample = sample_method_calls(catalog.methods[int(mid)], rng,
                                     int(mask.sum()), config=catalog.config)
        app_s[mask] = sample.matrix.application()
        tax_s[mask] = sample.matrix.tax()
    return app_s, tax_s


def run_critical_path_study(catalog: Catalog, n_traces: int = 120,
                            rng: Optional[np.random.Generator] = None,
                            max_nodes: int = 2000) -> CriticalPathResult:
    """Generate trees, synthesize latencies, and aggregate path stats."""
    rng = rng or np.random.default_rng(0)
    generator = build_generator(catalog, max_nodes=max_nodes)
    roots = [m for m in catalog.methods if m.layer < LAYER_LEAF]
    if not roots:
        raise ValueError("catalog has no non-leaf root methods")
    weights = np.array([m.popularity for m in roots])
    weights = weights / weights.sum()
    ids = np.array([m.method_id for m in roots])

    trees = [generator.generate_flat(int(root_id), rng)
             for root_id in rng.choice(ids, size=n_traces, replace=True,
                                       p=weights)]
    pooled = np.concatenate([t.method_ids for t in trees])
    app_all, tax_all = _sample_components(catalog, pooled, rng)

    depths = np.empty(n_traces, dtype=np.int64)
    apps = np.empty(n_traces)
    taxes = np.empty(n_traces)
    offset = 0
    for i, tree in enumerate(trees):
        sl = slice(offset, offset + tree.size)
        depths[i], apps[i], taxes[i] = critical_path_flat(
            tree, app_all[sl], tax_all[sl])
        offset += tree.size

    return _aggregate_paths(depths, apps, taxes)
