"""Export the data behind every figure as CSV.

A measurement paper's most-requested artifact is the numbers under the
plots. This module writes one CSV per figure from a Tier-A fleet study —
per-method percentile ladders for the heatmap figures, share tables for
the pies, and component fractions for the tax figures — so any plotting
tool can regenerate the visuals without touching the simulator.

Files are plain ``csv`` (stdlib), one header row, deterministic ordering
(methods sorted by median completion time, as in the paper's heatmaps).
"""

from __future__ import annotations

import csv
import os
from typing import Dict, List

from repro.core.fleetsample import FleetSample

__all__ = ["export_fleet_figures", "FIGURE_FILES"]

FIGURE_FILES = (
    "fig02_latency_heatmap.csv",
    "fig03_popularity.csv",
    "fig06_request_sizes.csv",
    "fig07_size_ratio.csv",
    "fig08_service_shares.csv",
    "fig10_fleet_tax.csv",
    "fig11_tax_ratio.csv",
    "fig12_netstack.csv",
    "fig13_queueing.csv",
    "fig21_cpu_cycles.csv",
    "fig23_errors.csv",
)


def _write(path: str, header: List[str], rows: List[List]) -> None:
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(header)
        writer.writerows(rows)


def _percentile_rows(fleet: FleetSample, series: str) -> tuple:
    methods = fleet.by_median_latency()
    pcts = methods[0].percentiles
    header = ["method", "service", "popularity"] + [f"p{p}" for p in pcts]
    rows = [
        [m.full_method, m.service, f"{m.popularity:.8g}"]
        + [f"{v:.8g}" for v in getattr(m, series)]
        for m in methods
    ]
    return header, rows


def export_fleet_figures(fleet: FleetSample, outdir: str) -> List[str]:
    """Write every figure's CSV into ``outdir``; returns the paths."""
    os.makedirs(outdir, exist_ok=True)
    written: List[str] = []

    def emit(name: str, header: List[str], rows: List[List]) -> None:
        """Write one table into the report."""
        path = os.path.join(outdir, name)
        _write(path, header, rows)
        written.append(path)

    # Per-method percentile ladders (the heatmap figures).
    for name, series in (
        ("fig02_latency_heatmap.csv", "rct"),
        ("fig06_request_sizes.csv", "request_bytes"),
        ("fig07_size_ratio.csv", "size_ratio"),
        ("fig11_tax_ratio.csv", "tax_ratio"),
        ("fig12_netstack.csv", "netstack"),
        ("fig13_queueing.csv", "queueing"),
        ("fig21_cpu_cycles.csv", "cycles"),
    ):
        header, rows = _percentile_rows(fleet, series)
        emit(name, header, rows)

    # Fig. 3: popularity in latency order.
    methods = fleet.by_median_latency()
    emit("fig03_popularity.csv",
         ["method", "service", "median_rct_s", "popularity"],
         [[m.full_method, m.service, f"{m.pct('rct', 50):.8g}",
           f"{m.popularity:.8g}"] for m in methods])

    # Fig. 8: service shares.
    shares = fleet.service_shares()
    emit("fig08_service_shares.csv",
         ["service", "calls", "bytes", "cycles"],
         [[svc, f"{v['calls']:.8g}", f"{v['bytes']:.8g}",
           f"{v['cycles']:.8g}"]
          for svc, v in sorted(shares.items(),
                               key=lambda kv: -kv[1]["calls"])])

    # Fig. 10: fleet tax fractions (average and P95 tail).
    avg = fleet.tax_component_fractions()
    tail = fleet.tail_tax_component_fractions()
    emit("fig10_fleet_tax.csv",
         ["view", "tax_fraction", "network_wire", "proc_stack", "queueing"],
         [
             ["average", f"{fleet.tax_fraction():.8g}",
              f"{avg['network_wire']:.8g}", f"{avg['proc_stack']:.8g}",
              f"{avg['queueing']:.8g}"],
             ["p95_tail", f"{fleet.tail_tax_fraction():.8g}",
              f"{tail['network_wire']:.8g}", f"{tail['proc_stack']:.8g}",
              f"{tail['queueing']:.8g}"],
         ])

    # Fig. 23: error mix.
    total_count = sum(fleet.error_counts.values()) or 1.0
    total_cycles = sum(fleet.error_wasted_cycles.values()) or 1.0
    emit("fig23_errors.csv",
         ["status", "count_share", "cycle_share"],
         [[st.name, f"{c / total_count:.8g}",
           f"{fleet.error_wasted_cycles.get(st, 0.0) / total_cycles:.8g}"]
          for st, c in sorted(fleet.error_counts.items(),
                              key=lambda kv: -kv[1])])

    return written
