"""Observer-side characterization: the paper's analysis jobs over stored spans.

The paper's figures came from offline jobs over *stored* fleet telemetry
(Dapper traces, GWP profiles), not from hooks inside the serving stack.
This module is that vantage point for our repro: every function here
computes a characterization figure **solely from the span warehouse**
(:mod:`repro.obs.spanstore` via :mod:`repro.obs.query`) — no access to
the live collector, the DES, or any engine-side state — and
:func:`validate_against_engine` cross-checks the results against
engine-side ground truth.

Fidelity contract (asserted by tests and the CI ``span-query-smoke`` job):

* **Fig. 9/14 component breakdown** — bit-identical. The warehouse
  preserves record order (shard order is append order), so the observer
  component matrix has exactly the engine's rows in the engine's order.
* **Fig. 17 exogenous joins** — bit-identical: reconstructed spans carry
  the same float64 annotations, so :func:`~repro.core.exogenous
  .exogenous_curves` sees identical inputs.
* **Fig. 8c/20 cycle tax** — per-RPC samples are exactly equal (a span's
  ``cpu_cycles`` *is* the engine's ``costs.total()``); fleet totals are
  recomputed by vectorized per-shard sums whose float additions happen
  in a different order than the engine's per-call scalar adds, so totals
  agree to ~1e-9 relative, not bitwise.
* Under **head sampling** (``dapper_sampling < 1``) the warehouse only
  holds sampled traces while the engine's GWP profiled every call, so
  cycle totals diverge by the sampling noise; the breakdown/exogenous
  checks still hold bit-identically *over the sampled corpus*. Validate
  with an unsampled corpus when you need the strict contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.breakdown import BreakdownCdf, breakdown_cdf
from repro.core.cycles import CycleTaxResult, analyze_cycle_tax
from repro.core.exogenous import EXOGENOUS_VARIABLES, ExogenousCurve, \
    exogenous_curves
from repro.core.report import format_table
from repro.obs.dapper import DapperCollector
from repro.obs.gwp import TAX_CATEGORIES, GwpProfiler
from repro.obs.query import SpanFilter, method_matrix, spans_matching, \
    tree_shape_stats
from repro.rpc.stack import StackCostModel

__all__ = [
    "observer_breakdown_cdf",
    "observer_exogenous_curves",
    "observer_cycle_tax",
    "replay_gwp",
    "ValidationCheck",
    "ValidationReport",
    "validate_against_engine",
]


# ----------------------------------------------------------------------
# Observer-side figures
# ----------------------------------------------------------------------
def observer_breakdown_cdf(source, service: str, method: str,
                           intra_cluster_only: bool = True) -> BreakdownCdf:
    """Fig. 14 completion-time breakdown CDF, from the warehouse only.

    Mirrors :func:`repro.core.breakdown.breakdown_cdf_for_service`
    (ok-only spans, optional same-cluster filter) and is bit-identical
    to it over the same corpus.
    """
    matrix = method_matrix(source, service, method, ok_only=True,
                           intra_cluster_only=intra_cluster_only)
    return breakdown_cdf(matrix, service=service)


def observer_exogenous_curves(source, service: str, method: str,
                              variables: Sequence[str] = EXOGENOUS_VARIABLES,
                              n_buckets: int = 8
                              ) -> Dict[str, ExogenousCurve]:
    """Fig. 17 exogenous-variable curves, from the warehouse only.

    Reconstructs the method's ok spans (record order, annotations
    intact) and runs the engine-side batch extraction on them.
    """
    spans = spans_matching(source, SpanFilter(service=service, method=method))
    return exogenous_curves(spans, variables, service=service,
                            n_buckets=n_buckets)


def replay_gwp(source, stack: Optional[StackCostModel] = None,
               non_rpc_cycles: float = 0.0) -> GwpProfiler:
    """Rebuild a :class:`GwpProfiler` from stored spans (Fig. 8c/20/21).

    The warehouse stores each span's total CPU cost (``cpu_cycles``,
    which the engine set to ``costs.total()``) plus the message sizes.
    The four tax categories are deterministic linear functions of sizes
    under the :class:`StackCostModel`, so the replay recomputes them
    with :meth:`~repro.rpc.stack.StackCostModel.cycles_vec` and backs
    application cycles out as ``cpu_cycles - tax``. Every stored span is
    attributed — the engine profiles errors and hedged losers too.

    ``non_rpc_cycles`` reinstates the background-tenant cycles the
    engine's profiler saw via ``add_non_rpc`` (spans cannot carry them).
    """
    stack = stack or StackCostModel()
    gwp = GwpProfiler(sample_rate=1.0)
    if non_rpc_cycles:
        gwp.add_non_rpc(non_rpc_cycles)
    tables = source.tables
    for columns in source.iter_columns():
        n = columns.n_spans
        if n == 0:
            continue
        cycles = np.asarray(columns.cpu_cycles, dtype=float)
        tax = stack.cycles_vec(columns.request_bytes, columns.response_bytes,
                               np.zeros(n))
        tax_sum = np.zeros(n)
        for cat in TAX_CATEGORIES:
            gwp.totals[cat] += float(tax[cat].sum())
            tax_sum += tax[cat]
        gwp.totals["application"] += float((cycles - tax_sum).sum())
        gwp.rpcs_profiled += n

        service_ids = np.asarray(columns.service_ids, dtype=np.int64)
        method_ids = np.asarray(columns.method_ids, dtype=np.int64)
        packed = (service_ids << 32) | method_ids
        for packed_key in np.unique(packed):
            rows = packed == packed_key
            key = (tables.services.names[int(packed_key) >> 32],
                   tables.methods.names[int(packed_key) & 0xFFFFFFFF])
            group_cycles = cycles[rows]
            gwp.method_totals[key] = (gwp.method_totals.get(key, 0.0)
                                      + float(group_cycles.sum()))
            gwp.method_samples.setdefault(key, []).extend(
                group_cycles.tolist())
            gwp.service_totals[key[0]] = (
                gwp.service_totals.get(key[0], 0.0)
                + float(group_cycles.sum()))
    return gwp


def observer_cycle_tax(source, stack: Optional[StackCostModel] = None,
                       non_rpc_cycles: float = 0.0) -> CycleTaxResult:
    """Fig. 20 cycle-tax result, from the warehouse only."""
    return analyze_cycle_tax(replay_gwp(source, stack=stack,
                                        non_rpc_cycles=non_rpc_cycles))


# ----------------------------------------------------------------------
# Cross-validation against engine-side ground truth
# ----------------------------------------------------------------------
#: Relative tolerance for float totals whose summation *order* differs
#: between engine (per-call scalar adds) and observer (per-shard
#: vectorized sums). The values themselves are identical.
SUMMATION_ORDER_RTOL = 1e-9


@dataclass
class ValidationCheck:
    """One observer-vs-engine comparison and its outcome."""

    name: str
    passed: bool
    detail: str = ""


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_against_engine`."""

    checks: List[ValidationCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return all(c.passed for c in self.checks)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form for manifests/CI artifacts."""
        return {
            "ok": self.ok,
            "checks": [
                {"name": c.name, "passed": c.passed, "detail": c.detail}
                for c in self.checks
            ],
        }

    def render(self) -> str:
        """Render the report as an aligned text table."""
        return format_table(
            ("check", "result", "detail"),
            [(c.name, "ok" if c.passed else "FAIL", c.detail)
             for c in self.checks],
            title="observer-side vs engine-side cross-validation",
        )


def _rel_err(a: float, b: float) -> float:
    scale = max(abs(a), abs(b))
    return abs(a - b) / scale if scale else 0.0


def validate_against_engine(source, dapper: DapperCollector,
                            gwp: Optional[GwpProfiler] = None,
                            stack: Optional[StackCostModel] = None,
                            service: Optional[str] = None,
                            method: Optional[str] = None,
                            non_rpc_cycles: float = 0.0
                            ) -> ValidationReport:
    """Cross-validate warehouse-derived figures against engine state.

    ``dapper`` must be the collector whose spans fed the warehouse.
    When ``service``/``method`` are omitted, the collector's most
    sampled method is validated. Pass the engine's ``gwp`` (and the
    study's ``stack``/``non_rpc_cycles``) to also check the Fig. 20
    replay — meaningful only for unsampled corpora, where the span set
    equals the profiled set.
    """
    report = ValidationReport()

    n_engine = len(dapper.spans)
    n_observer = sum(c.n_spans for c in source.iter_columns())
    report.checks.append(ValidationCheck(
        name="span count", passed=n_observer == n_engine,
        detail=f"observer {n_observer} vs engine {n_engine}"))

    if service is None or method is None:
        counts: Dict[Tuple[str, str], int] = {}
        for s in dapper.spans:
            counts[(s.service, s.method)] = counts.get(
                (s.service, s.method), 0) + 1
        if not counts:
            report.checks.append(ValidationCheck(
                name="method selection", passed=False, detail="no spans"))
            return report
        service, method = max(counts, key=lambda k: (counts[k], k))

    # Fig. 9 rows: exact, including order.
    engine_matrix = dapper.matrix_for_method(f"{service}/{method}")
    obs_matrix = method_matrix(source, service, method, ok_only=True,
                               intra_cluster_only=False)
    report.checks.append(ValidationCheck(
        name=f"fig9 matrix {service}/{method}",
        passed=engine_matrix.values.shape == obs_matrix.values.shape
        and bool(np.array_equal(engine_matrix.values, obs_matrix.values)),
        detail=f"{obs_matrix.values.shape[0]} rows, bit-identical"))

    # Fig. 14 CDF: derived from the matrix, still exact.
    try:
        from repro.core.breakdown import breakdown_cdf_for_service
        engine_cdf = breakdown_cdf_for_service(dapper, service, method)
        obs_cdf = observer_breakdown_cdf(source, service, method)
        report.checks.append(ValidationCheck(
            name=f"fig14 cdf {service}/{method}",
            passed=bool(np.array_equal(engine_cdf.component_values,
                                       obs_cdf.component_values)),
            detail=f"{obs_cdf.n_spans} spans, bit-identical"))
    except ValueError as exc:
        report.checks.append(ValidationCheck(
            name=f"fig14 cdf {service}/{method}", passed=False,
            detail=str(exc)))

    # Fig. 17 joins: exact when enough annotated spans exist.
    engine_spans = dapper.spans_for_method(service, method)
    annotated = [s for s in engine_spans
                 if EXOGENOUS_VARIABLES[0] in s.annotations]
    if len(annotated) >= 80:
        engine_curves = exogenous_curves(engine_spans, service=service)
        obs_curves = observer_exogenous_curves(source, service, method)
        exact = all(
            np.array_equal(engine_curves[v].bucket_centers,
                           obs_curves[v].bucket_centers)
            and np.array_equal(engine_curves[v].component_values,
                               obs_curves[v].component_values)
            and np.array_equal(engine_curves[v].counts, obs_curves[v].counts)
            for v in engine_curves
        )
        report.checks.append(ValidationCheck(
            name=f"fig17 curves {service}/{method}", passed=exact,
            detail=f"{len(engine_curves)} variables, bit-identical"))

    # Trace reassembly: same trees.
    engine_traces = dapper.traces()
    from repro.obs.query import traces as warehouse_traces
    obs_traces = warehouse_traces(source)
    same_trees = (
        set(obs_traces) == set(engine_traces)
        and all(len(obs_traces[t]) == len(engine_traces[t])
                for t in engine_traces)
    )
    report.checks.append(ValidationCheck(
        name="trace reassembly", passed=same_trees,
        detail=f"{len(obs_traces)} traces"))

    # Fig. 20 replay (unsampled corpora only — see docstring).
    if gwp is not None:
        replay = replay_gwp(source, stack=stack,
                            non_rpc_cycles=non_rpc_cycles)
        errs = {cat: _rel_err(replay.totals[cat], gwp.totals[cat])
                for cat in list(TAX_CATEGORIES) + ["application", "non_rpc"]}
        worst = max(errs.values())
        report.checks.append(ValidationCheck(
            name="fig20 cycle totals",
            passed=worst <= SUMMATION_ORDER_RTOL,
            detail=f"max rel err {worst:.2e} (tol {SUMMATION_ORDER_RTOL:.0e})"))
        key = (service, method)
        engine_samples = np.asarray(gwp.method_samples.get(key, []))
        replay_samples = np.asarray(replay.method_samples.get(key, []))
        report.checks.append(ValidationCheck(
            name=f"fig21 samples {service}/{method}",
            passed=bool(np.array_equal(engine_samples, replay_samples)),
            detail=f"{len(replay_samples)} samples, bit-identical"))
        report.checks.append(ValidationCheck(
            name="gwp rpcs profiled",
            passed=replay.rpcs_profiled == gwp.rpcs_profiled,
            detail=f"observer {replay.rpcs_profiled} "
                   f"vs engine {gwp.rpcs_profiled}"))

    # Tree shape is warehouse-only (the engine has no such query); just
    # assert internal consistency: every span accounted for, no orphans
    # in a whole-trace-sampled corpus.
    shape = tree_shape_stats(source)
    report.checks.append(ValidationCheck(
        name="tree shape accounting",
        passed=shape.n_spans == n_observer and shape.n_orphans == 0,
        detail=f"{shape.n_traces} traces, {shape.n_spans} spans, "
               f"{shape.n_orphans} orphans"))
    return report
