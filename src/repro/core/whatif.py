"""Fig. 15: the what-if tail analysis.

For each service, take its (P95-)tail RPCs and, one component at a time,
replace that component's value with the component's *median* over all of
the service's RPCs. The reported number is the percentage of tail RPCs
whose adjusted total falls below the original P95 threshold — i.e., how
many tail RPCs that component alone is responsible for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.report import format_table
from repro.obs.dapper import DapperCollector
from repro.rpc.stack import COMPONENTS, ComponentMatrix

__all__ = ["WhatIfResult", "what_if_components", "what_if_for_service"]


@dataclass
class WhatIfResult:
    """Per-component percentage of tail RPCs rescued (one service)."""

    service: str
    percent_rescued: Dict[str, float]   # component -> % of tail RPCs
    tail_percentile: float
    n_tail: int

    def dominant(self) -> str:
        """The component whose median-replacement rescues the most."""
        return max(self.percent_rescued, key=self.percent_rescued.get)

    def rows(self):
        """Rows for the rendered text table."""
        return [(c, f"{self.percent_rescued[c]:.2f}") for c in COMPONENTS]

    def render(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(
            ("component", "% of tail rescued"), self.rows(),
            title=f"Fig. 15 — {self.service}: what-if (P{self.tail_percentile:.0f} tail)",
        )


def what_if_components(matrix: ComponentMatrix, service: str = "",
                       tail_percentile: float = 95.0) -> WhatIfResult:
    """Fig. 15's counterfactual on a component matrix."""
    if len(matrix) < 20:
        raise ValueError(f"need >= 20 spans, got {len(matrix)}")
    totals = matrix.total()
    threshold = np.percentile(totals, tail_percentile)
    tail_mask = totals > threshold
    n_tail = int(tail_mask.sum())
    if n_tail == 0:
        raise ValueError("no tail RPCs above the threshold")
    medians = np.median(matrix.values, axis=0)
    tail_rows = matrix.values[tail_mask]
    rescued: Dict[str, float] = {}
    for j, comp in enumerate(COMPONENTS):
        adjusted = tail_rows.copy()
        # Replace with the median only where it is an improvement; a tail
        # RPC whose component is already below the median keeps its value.
        adjusted[:, j] = np.minimum(adjusted[:, j], medians[j])
        rescued[comp] = float(
            100.0 * (adjusted.sum(axis=1) <= threshold).mean()
        )
    return WhatIfResult(service=service, percent_rescued=rescued,
                        tail_percentile=tail_percentile, n_tail=n_tail)


def what_if_for_service(dapper: DapperCollector, service: str, method: str,
                        tail_percentile: float = 95.0) -> WhatIfResult:
    """Fig. 15's counterfactual for one service's spans."""
    matrix = dapper.matrix_for_method(f"{service}/{method}")
    return what_if_components(matrix, service=service,
                              tail_percentile=tail_percentile)
