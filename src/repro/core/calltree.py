"""Figs. 4-5: nested call-tree shape (descendants and ancestors).

The call-tree generator is wired from the catalog: each method's fanout
distribution drives the number of direct children, and children are drawn
from strictly deeper layers (with popularity weighting within a layer),
which is how the partition/aggregate hierarchy produces trees that are
wide rather than deep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.report import format_table
from repro.core.stats import percentiles_from_counts
from repro.rpc.calltree import (CallTreeGenerator, TreeShapeAccumulator,
                                TreeShapeStats, collect_shape_samples)
from repro.sim.distributions import AliasSampler, Mixture
from repro.workloads import calibration as cal
from repro.workloads.catalog import Catalog, LAYER_LEAF

__all__ = ["TreeShapeResult", "build_generator", "analyze_tree_shape",
           "analyze_tree_shape_counts", "run_tree_study"]


class _FanoutBatcher:
    """Frontier-wide fanout sampling for catalogs of two-part mixtures.

    The catalog gives every method a two-component fanout mixture whose
    *components* repeat fleet-wide (all leaves share one replication
    mode; all inner methods share one small mode and one partition mode)
    while only the mixture *weight* varies per method. Sampling a
    frontier therefore needs one uniform draw per node to pick the
    component plus one bulk ``sample`` per **distinct component** — a
    handful of numpy calls however many methods the frontier spans.

    Methods whose fanout is not such a mixture fall back to one grouped
    draw per distinct method, so arbitrary catalogs stay correct.
    """

    def __init__(self, catalog: Catalog):
        n = len(catalog.methods)
        self._p_second = np.zeros(n)             # weight of component 1
        self._comp_key = np.full((n, 2), -1, dtype=np.int64)
        self._components: list = []
        self._mixable = np.zeros(n, dtype=bool)
        self._fanout_of = {m.method_id: m.fanout for m in catalog.methods}
        by_repr: Dict[str, int] = {}

        def intern(dist) -> int:
            """Component table index, deduplicated by parameter identity."""
            key = repr(dist)
            if key not in by_repr:
                by_repr[key] = len(self._components)
                self._components.append(dist)
            return by_repr[key]

        for m in catalog.methods:
            f = m.fanout
            if isinstance(f, Mixture) and len(f.components) == 2:
                self._mixable[m.method_id] = True
                self._p_second[m.method_id] = float(f.weights[1])
                self._comp_key[m.method_id, 0] = intern(f.components[0])
                self._comp_key[m.method_id, 1] = intern(f.components[1])

    def __call__(self, methods: np.ndarray,
                 rng: np.random.Generator) -> np.ndarray:
        out = np.zeros(methods.size, dtype=np.int64)
        mixable = self._mixable[methods]
        if np.any(mixable):
            mids = methods[mixable]
            pick = (rng.random(mids.size) < self._p_second[mids]).astype(np.int64)
            keys = self._comp_key[mids, pick]
            draws = np.empty(mids.size)
            for key in np.unique(keys):
                mask = keys == key
                draws[mask] = self._components[key].sample(rng, int(mask.sum()))
            out[mixable] = draws.astype(np.int64)
        if not np.all(mixable):
            rest = methods[~mixable]
            draws = np.empty(rest.size, dtype=np.int64)
            for mid in np.unique(rest):
                mask = rest == mid
                k = self._fanout_of[int(mid)].sample(rng, int(mask.sum()))
                draws[mask] = np.asarray(k).astype(np.int64)
            out[~mixable] = draws
        return out


def build_generator(catalog: Catalog, max_nodes: int = 20000,
                    max_depth: int = 14,
                    vectorized: bool = True) -> CallTreeGenerator:
    """Wire a :class:`CallTreeGenerator` from catalog structure.

    Routing is layered: a method's children come predominantly from the
    *next* layer down (front-end → mid-tier → back-end → storage), with a
    minority skipping a layer. If children were drawn popularity-weighted
    from *all* deeper layers, the hot storage leaves would absorb every
    edge and trees would die at depth two; tempering the weights
    (popularity^0.35) and preferring the adjacent layer restores the
    multi-tier shape the paper's services actually have. Storage methods
    themselves occasionally fan out within their layer (replication,
    re-lookups), which is what gives even "leaf" methods a descendant
    tail.

    Within-layer selection uses one precomputed :class:`AliasSampler` per
    layer, so each child draw is O(1) and an entire frontier's children
    are drawn with a handful of bulk RNG calls. ``vectorized=False``
    drops the batch router and keeps the scalar one-``rng.choice``-per-
    child reference path; both follow identical distributions (the alias
    table is exact), which the equivalence tests assert.
    """
    specs = catalog.methods
    by_layer: Dict[int, np.ndarray] = {}
    weights: Dict[int, np.ndarray] = {}
    samplers: Dict[int, AliasSampler] = {}
    max_layer = max(m.layer for m in specs)
    for layer in range(max_layer + 1):
        ids = np.array([m.method_id for m in specs if m.layer == layer])
        if ids.size == 0:
            continue
        w = np.array([specs[i].popularity for i in ids]) ** 0.35
        by_layer[layer] = ids
        weights[layer] = w / w.sum()
        samplers[layer] = AliasSampler(w)

    available = sorted(by_layer)
    layer_of = np.array([m.layer for m in specs], dtype=np.int64)
    # Per-layer routing tables: the first and second strictly deeper
    # populated layers (falling back to the layer itself), used by both
    # the scalar and the vectorized router.
    first_deeper = np.empty(max_layer + 1, dtype=np.int64)
    second_deeper = np.empty(max_layer + 1, dtype=np.int64)
    n_deeper = np.zeros(max_layer + 1, dtype=np.int64)
    for layer in range(max_layer + 1):
        deeper = [l for l in available if l > layer]
        n_deeper[layer] = len(deeper)
        first_deeper[layer] = deeper[0] if deeper else layer
        second_deeper[layer] = deeper[min(1, len(deeper) - 1)] if deeper else layer

    def fanout_for(method_id: int):
        """Fanout distribution of one method (generator callback)."""
        return specs[method_id].fanout

    def children_of(method_id: int, rng: np.random.Generator, k: int):
        """Child method ids for one invocation (scalar reference path)."""
        layer = specs[method_id].layer
        deeper = [l for l in available if l > layer]
        out = np.empty(k, dtype=int)
        for i in range(k):
            u = rng.random()
            if not deeper or (layer == max_layer):
                target = layer  # storage replication stays in-layer
            elif u < 0.72 or len(deeper) == 1:
                target = deeper[0]
            elif u < 0.92:
                target = deeper[min(1, len(deeper) - 1)]
            else:
                target = layer  # sibling-tier call (adds depth)
            ids = by_layer[target]
            out[i] = ids[rng.choice(len(ids), p=weights[target])]
        return out

    def children_batch(parent_methods: np.ndarray,
                       rng: np.random.Generator) -> np.ndarray:
        """All child method ids for a frontier in bulk (generator callback)."""
        k = parent_methods.size
        pl = layer_of[parent_methods]
        u = rng.random(k)
        # Same routing split as the scalar path: mostly the adjacent
        # deeper layer, a minority skipping one layer, a sliver in-layer.
        target = np.where(u < 0.72, first_deeper[pl],
                          np.where(u < 0.92, second_deeper[pl], pl))
        # One deeper layer: every edge goes there (the scalar `or` branch).
        target = np.where(n_deeper[pl] == 1, first_deeper[pl], target)
        target = np.where((n_deeper[pl] == 0) | (pl == max_layer), pl, target)
        out = np.empty(k, dtype=np.int64)
        for layer in available:
            mask = target == layer
            cnt = int(mask.sum())
            if cnt:
                out[mask] = by_layer[layer][samplers[layer].sample(rng, cnt)]
        return out

    return CallTreeGenerator(
        fanout_for, children_of,
        max_nodes=max_nodes, max_depth=max_depth,
        children_batch=children_batch if vectorized else None,
        fanout_batch=_FanoutBatcher(catalog) if vectorized else None,
    )


@dataclass
class TreeShapeResult:
    """Computed statistics for this analysis; ``render()`` prints the paper-vs-measured table."""
    descendants_median_q50: float   # median across methods of median descendants
    descendants_p90_q10: float      # 10th pct across methods of P90 descendants
    descendants_p99_q10: float      # 10th pct across methods of P99 descendants
    ancestors_p99_q50: float        # median across methods of P99 ancestors
    max_depth_seen: int
    n_methods: int
    n_trees: int
    #: Per-method sample data. The in-memory analyzers store raw sample
    #: arrays here; the streaming analyzer
    #: (:func:`analyze_tree_shape_counts`) stores compact ``(2, k)``
    #: arrays of ``[values, counts]`` rows instead, since materializing
    #: hundreds of millions of samples would defeat the bounded-RSS
    #: pipeline. The headline statistics above are exact either way.
    per_method_descendants: Dict[int, np.ndarray]
    per_method_ancestors: Dict[int, np.ndarray]

    def rows(self):
        """Rows for the rendered text table."""
        return [
            ("median descendants @ median method",
             f"{self.descendants_median_q50:.0f}",
             f"<= {cal.MEDIAN_DESCENDANTS_HALF_OF_METHODS}"),
            ("P90 descendants @ 10th-pct method",
             f"{self.descendants_p90_q10:.0f}",
             f"> {cal.P90_DESCENDANTS_90PCT_OF_METHODS}"),
            ("P99 descendants @ 10th-pct method",
             f"{self.descendants_p99_q10:.0f}",
             f"> {cal.P99_DESCENDANTS_90PCT_OF_METHODS}"),
            ("P99 ancestors @ median method",
             f"{self.ancestors_p99_q50:.1f}",
             f"< {cal.P99_ANCESTORS_HALF_OF_METHODS}"),
            ("max tree depth seen", str(self.max_depth_seen), "~9-19 (Meta comparison)"),
        ]

    def render(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(("statistic", "measured", "paper"), self.rows(),
                            title="Figs. 4-5 — call-tree shape")


def analyze_tree_shape(stats: TreeShapeStats, min_samples: int = 5,
                       n_trees: int = 0) -> TreeShapeResult:
    """Compute this figure's statistics from the study output."""
    filtered = stats.filter_min_samples(min_samples)
    if not filtered.descendants:
        raise ValueError("no methods with enough tree samples")
    med_desc, p90_desc, p99_desc, p99_anc = [], [], [], []
    max_depth = 0
    for mid, vals in filtered.descendants.items():
        arr = np.asarray(vals)
        p50, p90, p99 = np.percentile(arr, (50, 90, 99))
        med_desc.append(p50)
        p90_desc.append(p90)
        p99_desc.append(p99)
        anc = np.asarray(filtered.ancestors[mid])
        p99_anc.append(np.percentile(anc, 99))
        max_depth = max(max_depth, int(anc.max()))
    return TreeShapeResult(
        descendants_median_q50=float(np.median(med_desc)),
        descendants_p90_q10=float(np.quantile(p90_desc, 0.10)),
        descendants_p99_q10=float(np.quantile(p99_desc, 0.10)),
        ancestors_p99_q50=float(np.median(p99_anc)),
        max_depth_seen=max_depth,
        n_methods=len(filtered.descendants),
        n_trees=n_trees,
        per_method_descendants={k: np.asarray(v)
                                for k, v in filtered.descendants.items()},
        per_method_ancestors={k: np.asarray(v)
                              for k, v in filtered.ancestors.items()},
    )


def analyze_tree_shape_counts(acc: TreeShapeAccumulator,
                              min_samples: int = 5,
                              n_trees: int = 0) -> TreeShapeResult:
    """Compute the figure's statistics from folded count histograms.

    The streaming counterpart of :func:`analyze_tree_shape`: the input
    is a :class:`~repro.rpc.calltree.TreeShapeAccumulator` folded over
    any number of forest shards, and every reported statistic is *exact*
    — :func:`~repro.core.stats.percentiles_from_counts` reproduces
    ``np.percentile`` of the expanded samples bit for bit, so a streamed
    study and an in-memory fold of the same shards agree bitwise.
    """
    d_mids, d_vals, d_counts = acc.descendant_items()
    a_mids, a_vals, a_counts = acc.ancestor_items()
    if d_mids.size == 0:
        raise ValueError("no methods with enough tree samples")
    uniq, d_starts = np.unique(d_mids, return_index=True)
    a_uniq, a_starts = np.unique(a_mids, return_index=True)
    # Every node contributes one descendant and one ancestor sample, so
    # the two histograms always cover the same method set.
    assert np.array_equal(uniq, a_uniq)
    d_bounds = np.append(d_starts, d_mids.size)
    a_bounds = np.append(a_starts, a_mids.size)
    med_desc, p90_desc, p99_desc, p99_anc = [], [], [], []
    max_depth = 0
    kept_desc: Dict[int, np.ndarray] = {}
    kept_anc: Dict[int, np.ndarray] = {}
    for i, mid in enumerate(uniq):
        dsl = slice(int(d_bounds[i]), int(d_bounds[i + 1]))
        if int(d_counts[dsl].sum()) < min_samples:
            continue
        p50, p90, p99 = percentiles_from_counts(
            d_vals[dsl], d_counts[dsl], (50, 90, 99))
        med_desc.append(p50)
        p90_desc.append(p90)
        p99_desc.append(p99)
        asl = slice(int(a_bounds[i]), int(a_bounds[i + 1]))
        p99_anc.append(percentiles_from_counts(
            a_vals[asl], a_counts[asl], (99,))[0])
        max_depth = max(max_depth, int(a_vals[asl].max()))
        kept_desc[int(mid)] = np.vstack([d_vals[dsl], d_counts[dsl]])
        kept_anc[int(mid)] = np.vstack([a_vals[asl], a_counts[asl]])
    if not kept_desc:
        raise ValueError("no methods with enough tree samples")
    return TreeShapeResult(
        descendants_median_q50=float(np.median(med_desc)),
        descendants_p90_q10=float(np.quantile(p90_desc, 0.10)),
        descendants_p99_q10=float(np.quantile(p99_desc, 0.10)),
        ancestors_p99_q50=float(np.median(p99_anc)),
        max_depth_seen=max_depth,
        n_methods=len(kept_desc),
        n_trees=n_trees or acc.n_trees,
        per_method_descendants=kept_desc,
        per_method_ancestors=kept_anc,
    )


def run_tree_study(catalog: Catalog, n_trees: int = 400,
                   rng: Optional[np.random.Generator] = None,
                   max_nodes: int = 20000) -> TreeShapeResult:
    """Sample root methods by popularity (roots come from the non-leaf
    layers) and analyze the resulting forest."""
    rng = rng or np.random.default_rng(0)
    gen = build_generator(catalog, max_nodes=max_nodes)
    roots = [m for m in catalog.methods if m.layer < LAYER_LEAF]
    if not roots:
        raise ValueError("catalog has no non-leaf methods to use as roots")
    w = np.array([m.popularity for m in roots])
    w = w / w.sum()
    ids = np.array([m.method_id for m in roots])
    chosen = rng.choice(ids, size=n_trees, replace=True, p=w)
    stats = collect_shape_samples(gen, chosen, rng)
    return analyze_tree_shape(stats, n_trees=n_trees)
