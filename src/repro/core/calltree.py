"""Figs. 4-5: nested call-tree shape (descendants and ancestors).

The call-tree generator is wired from the catalog: each method's fanout
distribution drives the number of direct children, and children are drawn
from strictly deeper layers (with popularity weighting within a layer),
which is how the partition/aggregate hierarchy produces trees that are
wide rather than deep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.report import format_table
from repro.rpc.calltree import CallTreeGenerator, TreeShapeStats, collect_shape_samples
from repro.workloads import calibration as cal
from repro.workloads.catalog import Catalog, LAYER_LEAF

__all__ = ["TreeShapeResult", "build_generator", "analyze_tree_shape",
           "run_tree_study"]


def build_generator(catalog: Catalog, max_nodes: int = 20000,
                    max_depth: int = 14) -> CallTreeGenerator:
    """Wire a :class:`CallTreeGenerator` from catalog structure.

    Routing is layered: a method's children come predominantly from the
    *next* layer down (front-end → mid-tier → back-end → storage), with a
    minority skipping a layer. If children were drawn popularity-weighted
    from *all* deeper layers, the hot storage leaves would absorb every
    edge and trees would die at depth two; tempering the weights
    (popularity^0.35) and preferring the adjacent layer restores the
    multi-tier shape the paper's services actually have. Storage methods
    themselves occasionally fan out within their layer (replication,
    re-lookups), which is what gives even "leaf" methods a descendant
    tail.
    """
    specs = catalog.methods
    by_layer: Dict[int, np.ndarray] = {}
    weights: Dict[int, np.ndarray] = {}
    max_layer = max(m.layer for m in specs)
    for layer in range(max_layer + 1):
        ids = np.array([m.method_id for m in specs if m.layer == layer])
        if ids.size == 0:
            continue
        w = np.array([specs[i].popularity for i in ids]) ** 0.35
        by_layer[layer] = ids
        weights[layer] = w / w.sum()

    available = sorted(by_layer)

    def fanout_for(method_id: int):
        """Fanout distribution of one method (generator callback)."""
        return specs[method_id].fanout

    def children_of(method_id: int, rng: np.random.Generator, k: int):
        """Child method ids for one invocation (generator callback)."""
        layer = specs[method_id].layer
        deeper = [l for l in available if l > layer]
        out = np.empty(k, dtype=int)
        for i in range(k):
            u = rng.random()
            if not deeper or (layer == max_layer):
                target = layer  # storage replication stays in-layer
            elif u < 0.72 or len(deeper) == 1:
                target = deeper[0]
            elif u < 0.92:
                target = deeper[min(1, len(deeper) - 1)]
            else:
                target = layer  # sibling-tier call (adds depth)
            ids = by_layer[target]
            out[i] = ids[rng.choice(len(ids), p=weights[target])]
        return out

    return CallTreeGenerator(fanout_for, children_of,
                             max_nodes=max_nodes, max_depth=max_depth)


@dataclass
class TreeShapeResult:
    """Computed statistics for this analysis; ``render()`` prints the paper-vs-measured table."""
    descendants_median_q50: float   # median across methods of median descendants
    descendants_p90_q10: float      # 10th pct across methods of P90 descendants
    descendants_p99_q10: float      # 10th pct across methods of P99 descendants
    ancestors_p99_q50: float        # median across methods of P99 ancestors
    max_depth_seen: int
    n_methods: int
    n_trees: int
    per_method_descendants: Dict[int, np.ndarray]
    per_method_ancestors: Dict[int, np.ndarray]

    def rows(self):
        """Rows for the rendered text table."""
        return [
            ("median descendants @ median method",
             f"{self.descendants_median_q50:.0f}",
             f"<= {cal.MEDIAN_DESCENDANTS_HALF_OF_METHODS}"),
            ("P90 descendants @ 10th-pct method",
             f"{self.descendants_p90_q10:.0f}",
             f"> {cal.P90_DESCENDANTS_90PCT_OF_METHODS}"),
            ("P99 descendants @ 10th-pct method",
             f"{self.descendants_p99_q10:.0f}",
             f"> {cal.P99_DESCENDANTS_90PCT_OF_METHODS}"),
            ("P99 ancestors @ median method",
             f"{self.ancestors_p99_q50:.1f}",
             f"< {cal.P99_ANCESTORS_HALF_OF_METHODS}"),
            ("max tree depth seen", str(self.max_depth_seen), "~9-19 (Meta comparison)"),
        ]

    def render(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(("statistic", "measured", "paper"), self.rows(),
                            title="Figs. 4-5 — call-tree shape")


def analyze_tree_shape(stats: TreeShapeStats, min_samples: int = 5,
                       n_trees: int = 0) -> TreeShapeResult:
    """Compute this figure's statistics from the study output."""
    filtered = stats.filter_min_samples(min_samples)
    if not filtered.descendants:
        raise ValueError("no methods with enough tree samples")
    med_desc, p90_desc, p99_desc, p99_anc = [], [], [], []
    max_depth = 0
    for mid, vals in filtered.descendants.items():
        arr = np.asarray(vals)
        med_desc.append(np.median(arr))
        p90_desc.append(np.percentile(arr, 90))
        p99_desc.append(np.percentile(arr, 99))
        anc = np.asarray(filtered.ancestors[mid])
        p99_anc.append(np.percentile(anc, 99))
        max_depth = max(max_depth, int(anc.max()))
    return TreeShapeResult(
        descendants_median_q50=float(np.median(med_desc)),
        descendants_p90_q10=float(np.quantile(p90_desc, 0.10)),
        descendants_p99_q10=float(np.quantile(p99_desc, 0.10)),
        ancestors_p99_q50=float(np.median(p99_anc)),
        max_depth_seen=max_depth,
        n_methods=len(filtered.descendants),
        n_trees=n_trees,
        per_method_descendants={k: np.asarray(v)
                                for k, v in filtered.descendants.items()},
        per_method_ancestors={k: np.asarray(v)
                              for k, v in filtered.ancestors.items()},
    )


def run_tree_study(catalog: Catalog, n_trees: int = 400,
                   rng: Optional[np.random.Generator] = None,
                   max_nodes: int = 20000) -> TreeShapeResult:
    """Sample root methods by popularity (roots come from the non-leaf
    layers) and analyze the resulting forest."""
    rng = rng or np.random.default_rng(0)
    gen = build_generator(catalog, max_nodes=max_nodes)
    roots = [m for m in catalog.methods if m.layer < LAYER_LEAF]
    if not roots:
        raise ValueError("catalog has no non-leaf methods to use as roots")
    w = np.array([m.popularity for m in roots])
    w = w / w.sum()
    ids = np.array([m.method_id for m in roots])
    chosen = rng.choice(ids, size=n_trees, replace=True, p=w)
    stats = collect_shape_samples(gen, chosen, rng)
    return analyze_tree_shape(stats, n_trees=n_trees)
