"""Fig. 23: RPC error mix by frequency and wasted CPU cycles.

Cancellations (mostly hedging) dominate both counts and — outsizedly —
cycles; "entity not found" is second. The analysis reduces either a
:class:`~repro.core.fleetsample.FleetSample`'s tallies or raw DES spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.fleetsample import FleetSample
from repro.core.report import fmt_percent, format_table
from repro.obs.dapper import Span
from repro.rpc.errors import StatusCode
from repro.workloads import calibration as cal

__all__ = ["ErrorMixResult", "analyze_errors", "analyze_span_errors"]


@dataclass
class ErrorMixResult:
    """Computed statistics for this analysis; ``render()`` prints the paper-vs-measured table."""
    count_shares: Dict[StatusCode, float]
    cycle_shares: Dict[StatusCode, float]
    error_rate: float   # errors / all RPCs (NaN if unknown)

    def rows(self):
        """Rows for the rendered text table."""
        paper = {
            StatusCode.CANCELLED: (cal.CANCELLED_ERROR_SHARE,
                                   cal.CANCELLED_CYCLE_SHARE),
            StatusCode.NOT_FOUND: (cal.NOT_FOUND_ERROR_SHARE,
                                   cal.NOT_FOUND_CYCLE_SHARE),
        }
        out = []
        for st, share in sorted(self.count_shares.items(),
                                key=lambda kv: -kv[1]):
            pn, pc = paper.get(st, ("-", "-"))
            out.append((
                st.name,
                fmt_percent(share),
                fmt_percent(self.cycle_shares.get(st, 0.0)),
                pn if isinstance(pn, str) else fmt_percent(pn),
                pc if isinstance(pc, str) else fmt_percent(pc),
            ))
        return out

    def render(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(
            ("error", "count share", "cycle share", "paper count", "paper cycles"),
            self.rows(),
            title=f"Fig. 23 — error mix (error rate {fmt_percent(self.error_rate)}, "
                  f"paper {fmt_percent(cal.ERROR_RATE)})",
        )


def _normalize(d: Dict[StatusCode, float]) -> Dict[StatusCode, float]:
    total = sum(d.values())
    if total <= 0:
        return {}
    return {k: v / total for k, v in d.items()}


def analyze_errors(fleet: FleetSample) -> ErrorMixResult:
    """Compute this figure's statistics from the study output."""
    error_weight = sum(fleet.error_counts.values())
    return ErrorMixResult(
        count_shares=_normalize(dict(fleet.error_counts)),
        cycle_shares=_normalize(dict(fleet.error_wasted_cycles)),
        error_rate=float(error_weight),  # popularity-weighted ~ fraction of calls
    )


def analyze_span_errors(spans: Sequence[Span]) -> ErrorMixResult:
    """Error mix from raw DES spans (includes hedging cancellations)."""
    counts: Dict[StatusCode, float] = {}
    cycles: Dict[StatusCode, float] = {}
    n_err = 0
    for s in spans:
        if s.ok:
            continue
        n_err += 1
        counts[s.status] = counts.get(s.status, 0.0) + 1.0
        cycles[s.status] = cycles.get(s.status, 0.0) + s.cpu_cycles
    return ErrorMixResult(
        count_shares=_normalize(counts),
        cycle_shares=_normalize(cycles),
        error_rate=n_err / len(spans) if spans else float("nan"),
    )
