"""Fig. 22: CPU usage distribution across clusters vs across machines.

The paper's finding: usage across *clusters* is widely spread (the
cluster-level balancer optimizes network latency, not CPU balance), while
usage across *machines within a cluster* is much tighter — except for
services with data-dependent load (Spanner, F1, ML Inference).

The analysis reads Monarch's ``server/rpc_util`` series — the service
task's own usage relative to its allocation, the paper's used/limit ratio
— and reduces to two CDFs per service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.report import format_table
from repro.obs.monarch import Monarch

__all__ = ["LoadBalanceResult", "analyze_load_balance"]


@dataclass
class LoadBalanceResult:
    """Computed statistics for this analysis; ``render()`` prints the paper-vs-measured table."""
    service: str
    cluster_usage: np.ndarray    # per-cluster mean CPU usage (sorted)
    machine_spread: np.ndarray   # per-cluster (max-min) machine usage
    cluster_spread: float        # P90-P10 spread of cluster usage
    mean_machine_spread: float

    def cross_cluster_wider(self) -> bool:
        """The paper's qualitative claim: cluster-level imbalance exceeds
        machine-level imbalance."""
        return self.cluster_spread > self.mean_machine_spread

    def rows(self):
        """Rows for the rendered text table."""
        return [
            ("clusters", f"{len(self.cluster_usage)}", ""),
            ("cluster usage P10..P90",
             f"{np.quantile(self.cluster_usage, 0.1):.2f}.."
             f"{np.quantile(self.cluster_usage, 0.9):.2f}", "widely spread"),
            ("cluster-level spread (P90-P10)", f"{self.cluster_spread:.2f}",
             "large"),
            ("mean within-cluster machine spread",
             f"{self.mean_machine_spread:.2f}", "smaller"),
        ]

    def render(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(
            ("statistic", "measured", "paper"), self.rows(),
            title=f"Fig. 22 — {self.service}: CPU usage balance",
        )


def analyze_load_balance(monarch: Monarch, service: str) -> LoadBalanceResult:
    """Reduce `server/rpc_util` samples to the two Fig. 22 CDF views."""
    series = monarch.read_matching("server/rpc_util", {"service": service})
    if not series:
        raise ValueError(f"no rpc_util series for service {service!r}")
    by_cluster: Dict[str, List[float]] = {}
    for labelset, (_times, values) in series.items():
        labels = dict(labelset)
        # Samples are cumulative time-averaged utilization; the last
        # point is the whole-run mean for that machine.
        by_cluster.setdefault(labels["cluster"], []).append(float(values[-1]))
    cluster_means = []
    spreads = []
    for cluster, machine_means in sorted(by_cluster.items()):
        cluster_means.append(float(np.mean(machine_means)))
        if len(machine_means) > 1:
            spreads.append(float(np.max(machine_means) - np.min(machine_means)))
    usage = np.sort(np.array(cluster_means))
    return LoadBalanceResult(
        service=service,
        cluster_usage=usage,
        machine_spread=np.array(spreads),
        cluster_spread=float(
            np.quantile(usage, 0.9) - np.quantile(usage, 0.1)
        ) if len(usage) > 1 else 0.0,
        mean_machine_spread=float(np.mean(spreads)) if spreads else 0.0,
    )
