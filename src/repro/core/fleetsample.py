"""The shared Tier-A fleet-study engine.

``run_fleet_study`` samples every method of a calibrated catalog through
the vectorized stack model and reduces the draws into:

- per-method percentile summaries (completion time, queueing, wire+stack,
  tax ratio, sizes, CPU cost) — the raw material of every heatmap figure;
- popularity-weighted fleet aggregates (the call-mix view behind Fig. 10's
  "average tax is 2.0 %" and Fig. 8's service shares);
- a GWP profile (cycle-tax categories, per-service and per-method cycles);
- error accounting (status mix and wasted cycles, Fig. 23).

Per-method sample counts are fixed (not popularity-proportional): each
method's own percentiles need equal support, and fleet aggregates reweight
by popularity when combining means — an unbiased estimator either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.gwp import GwpProfiler
from repro.rpc.errors import StatusCode
from repro.rpc.stack import StackCostModel
from repro.workloads.catalog import Catalog, MethodSample, sample_method_calls

__all__ = ["MethodSummary", "FleetSample", "run_fleet_study",
           "NON_RPC_CYCLE_MULTIPLIER"]

# Fleet cycles outside RPC serving (batch/analytics tenants), as a multiple
# of RPC application cycles. Chosen so the fleet RPC cycle tax lands at the
# paper's 7.1 % given the stack cost model; documented in DESIGN.md as a
# modeled substitution (GWP sees the whole fleet, we must synthesize the
# non-RPC remainder).
NON_RPC_CYCLE_MULTIPLIER = 0.8

_PCTS = (1, 5, 10, 25, 50, 75, 90, 95, 99)


@dataclass
class MethodSummary:
    """Percentile summaries of one method's sampled population."""

    full_method: str
    service: str
    popularity: float
    median_app_s: float
    n_samples: int
    rct: np.ndarray          # percentiles of completion time
    queueing: np.ndarray
    netstack: np.ndarray     # wire + proc stack combined (Fig. 12)
    tax_ratio: np.ndarray
    request_bytes: np.ndarray
    response_bytes: np.ndarray
    size_ratio: np.ndarray   # response/request per call (Fig. 7)
    cycles: np.ndarray       # total per-call cycles (app + tax)
    mean_rct: float
    mean_tax: float
    mean_queue: float
    mean_wire: float
    mean_proc: float
    mean_request_bytes: float
    mean_response_bytes: float
    mean_cycles: float       # application + tax
    mean_app_cycles: float   # handler only (Fig. 8c attribution)

    @property
    def percentiles(self) -> Tuple[int, ...]:
        """The percentile ladder used by the summaries."""
        return _PCTS

    def pct(self, series: str, p: int) -> float:
        """One percentile value from a named series."""
        return float(getattr(self, series)[_PCTS.index(p)])


@dataclass
class FleetSample:
    """Everything a fleet-wide figure needs, in one object."""

    methods: List[MethodSummary]
    gwp: GwpProfiler
    # Popularity-weighted fleet means (per-call expectations over the mix).
    fleet_mean_rct: float
    fleet_mean_tax: float
    fleet_mean_queue: float
    fleet_mean_wire: float
    fleet_mean_proc: float
    # P95-tail aggregates (Fig. 10c/d): popularity-weighted means over
    # each method's calls at or above its own P95 completion time.
    tail_mean_rct: float
    tail_mean_tax: float
    tail_mean_queue: float
    tail_mean_wire: float
    tail_mean_proc: float
    # Error accounting (popularity-weighted tallies).
    error_counts: Dict[StatusCode, float]
    error_wasted_cycles: Dict[StatusCode, float]
    total_calls_sampled: int

    # ------------------------------------------------------------------
    def by_median_latency(self) -> List[MethodSummary]:
        """Method summaries sorted by median completion time."""
        return sorted(self.methods, key=lambda m: m.pct("rct", 50))

    def samples_by_method(self, series: str) -> Dict[str, np.ndarray]:
        """Per-method percentile vectors (NOT raw samples) keyed by name."""
        return {m.full_method: getattr(m, series) for m in self.methods}

    def popularity(self) -> np.ndarray:
        """Per-method popularity weights, aligned with ``methods``."""
        return np.array([m.popularity for m in self.methods])

    # -- fleet tax fractions (Fig. 10) ---------------------------------
    def tax_fraction(self) -> float:
        """Tax as a fraction of the total."""
        return self.fleet_mean_tax / self.fleet_mean_rct

    def tax_component_fractions(self) -> Dict[str, float]:
        """Wire/stack/queue tax as fractions of mean RCT."""
        t = self.fleet_mean_rct
        return {
            "network_wire": self.fleet_mean_wire / t,
            "proc_stack": self.fleet_mean_proc / t,
            "queueing": self.fleet_mean_queue / t,
        }

    def tail_tax_fraction(self) -> float:
        """Tax share of completion time among P95-tail RPCs (Fig. 10c)."""
        return self.tail_mean_tax / self.tail_mean_rct

    def tail_tax_component_fractions(self) -> Dict[str, float]:
        """Fig. 10d: the tail tax, split by component, as fractions of
        tail completion time. The paper finds the tail skews to network."""
        t = self.tail_mean_rct
        return {
            "network_wire": self.tail_mean_wire / t,
            "proc_stack": self.tail_mean_proc / t,
            "queueing": self.tail_mean_queue / t,
        }

    # -- service shares (Fig. 8) ----------------------------------------
    def service_shares(self, cycles_of_fleet: bool = True
                       ) -> Dict[str, Dict[str, float]]:
        """Per-service shares of invocations, bytes, and cycles.

        With ``cycles_of_fleet`` (the paper's Fig. 8c convention), cycle
        shares are fractions of *all* fleet cycles, including the non-RPC
        remainder GWP sees; otherwise they are fractions of RPC cycles.
        """
        calls: Dict[str, float] = {}
        bytes_: Dict[str, float] = {}
        cycles: Dict[str, float] = {}
        for m in self.methods:
            calls[m.service] = calls.get(m.service, 0.0) + m.popularity
            bytes_[m.service] = bytes_.get(m.service, 0.0) + m.popularity * (
                m.mean_request_bytes + m.mean_response_bytes
            )
            # Fig. 8c attributes *application* cycles to services: the
            # stack tax (compression, networking, ...) is shared
            # infrastructure and is accounted separately in Fig. 20.
            cycles[m.service] = cycles.get(m.service, 0.0) + (
                m.popularity * m.mean_app_cycles
            )
        tb = sum(bytes_.values()) or 1.0
        tcy = (self.gwp.fleet_cycles() if cycles_of_fleet
               else sum(cycles.values())) or 1.0
        tca = sum(calls.values()) or 1.0
        return {
            svc: {
                "calls": calls[svc] / tca,
                "bytes": bytes_[svc] / tb,
                "cycles": cycles[svc] / tcy,
            }
            for svc in calls
        }


def run_fleet_study(catalog: Catalog,
                    rng: Optional[np.random.Generator] = None,
                    samples_per_method: int = 300,
                    stack: Optional[StackCostModel] = None,
                    gwp_non_rpc_multiplier: float = NON_RPC_CYCLE_MULTIPLIER,
                    ) -> FleetSample:
    """Sample the whole catalog and reduce to a :class:`FleetSample`."""
    if samples_per_method < 10:
        raise ValueError(f"need >= 10 samples per method, got {samples_per_method}")
    rng = rng or np.random.default_rng(0)
    stack = stack or catalog.stack
    gwp = GwpProfiler()

    summaries: List[MethodSummary] = []
    fleet = {"rct": 0.0, "tax": 0.0, "queue": 0.0, "wire": 0.0, "proc": 0.0}
    tail = {"rct": 0.0, "tax": 0.0, "queue": 0.0, "wire": 0.0, "proc": 0.0}
    err_counts: Dict[StatusCode, float] = {}
    err_cycles: Dict[StatusCode, float] = {}
    total_app_cycles_weighted = 0.0
    total = 0

    for spec in catalog:
        s: MethodSample = sample_method_calls(
            spec, rng, samples_per_method, stack=stack, config=catalog.config
        )
        total += len(s)
        mat = s.matrix
        rct = mat.total()
        queue = mat.queueing()
        netstack = mat.wire() + mat.proc_stack()
        taxr = mat.tax_ratio()

        cyc = gwp_cycles = stack.cycles_vec(
            s.request_bytes, s.response_bytes, s.cycles
        )
        total_cycles = sum(cyc.values())
        gwp.add_rpc_batch(spec.service, spec.method, gwp_cycles,
                          weight=spec.popularity)

        pop = spec.popularity
        fleet["rct"] += pop * float(rct.mean())
        fleet["tax"] += pop * float(mat.tax().mean())
        fleet["queue"] += pop * float(queue.mean())
        fleet["wire"] += pop * float(mat.wire().mean())
        fleet["proc"] += pop * float(mat.proc_stack().mean())
        total_app_cycles_weighted += pop * float(np.mean(s.cycles))

        tail_mask = rct >= np.percentile(rct, 95)
        tail["rct"] += pop * float(rct[tail_mask].mean())
        tail["tax"] += pop * float(mat.tax()[tail_mask].mean())
        tail["queue"] += pop * float(queue[tail_mask].mean())
        tail["wire"] += pop * float(mat.wire()[tail_mask].mean())
        tail["proc"] += pop * float(mat.proc_stack()[tail_mask].mean())

        # Error accounting: statuses sampled per call; wasted cycles are
        # the error call's cycles scaled by the class's burn factor. Both
        # tallies are popularity-weighted so they reflect the call mix.
        errored = np.array([st.is_error for st in s.statuses])
        if errored.any():
            per_call_weight = pop / len(s)
            for st, c in zip(s.statuses[errored], total_cycles[errored]):
                err_counts[st] = err_counts.get(st, 0.0) + per_call_weight
                err_cycles[st] = err_cycles.get(st, 0.0) + per_call_weight * (
                    float(c) * spec.error_model.wasted_cycle_factor(st)
                )

        summaries.append(MethodSummary(
            full_method=spec.full_method,
            service=spec.service,
            popularity=pop,
            median_app_s=spec.median_app_s,
            n_samples=len(s),
            rct=np.percentile(rct, _PCTS),
            queueing=np.percentile(queue, _PCTS),
            netstack=np.percentile(netstack, _PCTS),
            tax_ratio=np.percentile(taxr, _PCTS),
            request_bytes=np.percentile(s.request_bytes, _PCTS),
            response_bytes=np.percentile(s.response_bytes, _PCTS),
            size_ratio=np.percentile(s.response_bytes / s.request_bytes, _PCTS),
            cycles=np.percentile(total_cycles, _PCTS),
            mean_rct=float(rct.mean()),
            mean_tax=float(mat.tax().mean()),
            mean_queue=float(queue.mean()),
            mean_wire=float(mat.wire().mean()),
            mean_proc=float(mat.proc_stack().mean()),
            mean_request_bytes=float(s.request_bytes.mean()),
            mean_response_bytes=float(s.response_bytes.mean()),
            mean_cycles=float(np.mean(total_cycles)),
            mean_app_cycles=float(np.mean(s.cycles)),
        ))

    # Synthesize the non-RPC remainder of the fleet so GWP's denominators
    # mean "all fleet cycles" as in the paper. Scale is relative to the
    # popularity-weighted RPC application cycles actually attributed.
    rpc_app_cycles = gwp.totals["application"]
    gwp.add_non_rpc(gwp_non_rpc_multiplier * rpc_app_cycles)

    return FleetSample(
        methods=summaries,
        gwp=gwp,
        fleet_mean_rct=fleet["rct"],
        fleet_mean_tax=fleet["tax"],
        fleet_mean_queue=fleet["queue"],
        fleet_mean_wire=fleet["wire"],
        fleet_mean_proc=fleet["proc"],
        tail_mean_rct=tail["rct"],
        tail_mean_tax=tail["tax"],
        tail_mean_queue=tail["queue"],
        tail_mean_wire=tail["wire"],
        tail_mean_proc=tail["proc"],
        error_counts=err_counts,
        error_wasted_cycles=err_cycles,
        total_calls_sampled=total,
    )
