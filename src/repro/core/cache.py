"""Content-addressed cache for study results.

Re-running an identical study (same catalog config, same seed, same study
parameters) is pure recomputation: every input is deterministic, so the
output is too. This cache keys a study result by the sha256 digest of a
canonical JSON encoding of *all* of those inputs — the same
:func:`repro.obs.manifest.config_digest` used by run manifests — so a
repeated CLI or bench invocation becomes a pickle load instead of minutes
of tree generation.

Keying and invalidation:

- The key covers a schema version, the study name, the seed, the catalog
  config (as a plain dict), and any study-specific parameters. Changing
  *any* of them — even one calibration anchor — changes the digest, so
  stale hits are impossible without deleting fields from the config.
- Bumping :data:`CACHE_SCHEMA` invalidates everything at once; do this
  whenever a result dataclass changes shape.
- Corrupt or unreadable entries behave as misses (and are removed), so a
  killed writer can never poison later runs; writes are atomic
  (``os.replace`` of a same-directory temp file).

The module deliberately uses no wall-clock time and no randomness: cache
behaviour must be a pure function of the study inputs.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.obs.manifest import config_digest

__all__ = ["CACHE_SCHEMA", "DEFAULT_CACHE_DIR", "StudyCache", "study_key"]

#: Bump to invalidate every existing entry (e.g. result dataclass changed).
#: 2: tree studies cache folded accumulator state instead of results.
CACHE_SCHEMA = 2

#: Conventional cache location for CLI runs (relative to the working dir).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Metadata for the cache-key analysis (RL007): calls to these functions
#: mark the enclosing function as a cached study body, and their
#: arguments define what the key covers.
CACHE_KEY_FUNCTIONS = ("study_key",)


def _jsonable(value: Any) -> Any:
    """Coerce config values into the JSON-safe shape ``config_digest`` needs."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def study_key(study: str, seed: int, config: Any,
              params: Optional[Dict[str, Any]] = None) -> str:
    """Content-addressed key for one study invocation.

    ``config`` may be a dataclass (e.g. ``CatalogConfig``) or a plain
    mapping; ``params`` carries study-specific knobs such as ``n_trees``.
    The readable ``study`` prefix keeps the cache directory greppable.
    """
    digest = config_digest({
        "cache_schema": CACHE_SCHEMA,
        "study": study,
        "seed": int(seed),
        "config": _jsonable(config),
        "params": _jsonable(params or {}),
    })
    return f"{study}-{digest.split(':', 1)[1][:20]}"


class StudyCache:
    """Pickle store of study results under a root directory.

    >>> import tempfile
    >>> cache = StudyCache(tempfile.mkdtemp())
    >>> key = study_key("demo", seed=1, config={"n": 2})
    >>> cache.load(key) is None
    True
    >>> cache.store(key, {"answer": 42})
    >>> cache.load(key)
    {'answer': 42}
    """

    def __init__(self, root: os.PathLike | str = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path(self, key: str) -> Path:
        """Entry path for ``key`` (exists only after :meth:`store`)."""
        return self.root / f"{key}.pkl"

    def load(self, key: str) -> Optional[Any]:
        """The cached value, or ``None`` on miss / corrupt entry."""
        path = self.path(key)
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            # A truncated write or a stale class layout: treat as a miss
            # and clear the entry so it cannot fail again.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return value

    def store(self, key: str, value: Any) -> Path:
        """Atomically persist ``value`` under ``key``."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with tmp.open("wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return path

    def get_or_compute(self, key: str, compute) -> Tuple[Any, bool]:
        """``(value, was_hit)`` — computing and storing on a miss."""
        value = self.load(key)
        if value is not None:
            return value, True
        value = compute()
        self.store(key, value)
        return value, False
