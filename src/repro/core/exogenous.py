"""Figs. 17-18: exogenous variables vs. RPC latency.

Fig. 17 buckets P95-tail RPCs by the value of an exogenous variable at the
serving machine (our servers annotate spans with the exogenous snapshot,
which is the join Dapper+Monarch would provide) and plots the average
component profile per bucket.

Fig. 18 overlays a 24-hour time series of tail latency with each exogenous
variable for one service in a fast and a slow cluster, and reports the
correlation between them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.report import fmt_seconds, format_table
from repro.obs.dapper import DapperCollector, Span
from repro.rpc.stack import ComponentMatrix

__all__ = ["ExogenousCurve", "DiurnalSeries", "EXOGENOUS_VARIABLES",
           "exogenous_curve", "exogenous_curves", "diurnal_series",
           "correlation"]

# Table 2's variables, as annotated on spans by the DES servers.
EXOGENOUS_VARIABLES = (
    "exo_cpu_util",
    "exo_memory_bw_gbps",
    "exo_long_wakeup_rate",
    "exo_cycles_per_inst",
)


@dataclass
class ExogenousCurve:
    """Fig. 17: per-bucket mean component profile of near-P95 RPCs."""

    service: str
    variable: str
    bucket_centers: np.ndarray
    component_values: np.ndarray   # (n_buckets, 9)
    counts: np.ndarray
    correlation: float             # corr(bucket value, total latency)

    def totals(self) -> np.ndarray:
        """Per-row total latencies (seconds)."""
        return self.component_values.sum(axis=1)

    def rows(self):
        """Rows for the rendered text table."""
        return [
            (f"{c:.4g}", fmt_seconds(t), int(n))
            for c, t, n in zip(self.bucket_centers, self.totals(), self.counts)
        ]

    def render(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(
            (self.variable, "near-P95 latency", "samples"), self.rows(),
            title=(f"Fig. 17 — {self.service}: latency vs {self.variable} "
                   f"(corr {self.correlation:+.2f})"),
        )


def exogenous_curve(spans: Sequence[Span], variable: str, service: str = "",
                    n_buckets: int = 8, tail_percentile: float = 95.0,
                    tail_tolerance: float = 0.35) -> ExogenousCurve:
    """Bucket spans by an exogenous variable; average near-P95 components.

    Mirrors §3.3.4: samples are bucketed by the exogenous value, and within
    each bucket the RPCs with total latency near that bucket's P95 are
    averaged per component. To analyze several variables over the *same*
    spans, prefer :func:`exogenous_curves`, which extracts the latency and
    component arrays once instead of once per variable.
    """
    if variable not in EXOGENOUS_VARIABLES:
        raise KeyError(f"unknown exogenous variable {variable!r}")
    spans = [s for s in spans if variable in s.annotations]
    if len(spans) < n_buckets * 10:
        raise ValueError(f"need >= {n_buckets * 10} annotated spans, got {len(spans)}")
    values = np.array([s.annotations[variable] for s in spans])
    totals = np.array([s.completion_time for s in spans])
    comps = np.vstack([s.breakdown.as_array() for s in spans])
    return _curve_from_arrays(values, totals, comps, variable=variable,
                              service=service, n_buckets=n_buckets,
                              tail_percentile=tail_percentile,
                              tail_tolerance=tail_tolerance)


def exogenous_curves(spans: Sequence[Span],
                     variables: Sequence[str] = EXOGENOUS_VARIABLES,
                     service: str = "", n_buckets: int = 8,
                     tail_percentile: float = 95.0,
                     tail_tolerance: float = 0.35
                     ) -> Dict[str, ExogenousCurve]:
    """All of :func:`exogenous_curve` for several variables in one pass.

    Extracting ``completion_time`` and the component breakdown from a span
    walks Python attribute chains per span; over a DES study's ~100k spans
    that extraction dominates Fig. 17's analysis wall time, and it does not
    depend on the variable. This batch form hoists it out of the
    per-variable loop, then buckets per variable exactly as the scalar
    function does — each returned curve is bit-identical to calling
    :func:`exogenous_curve` with the same arguments.
    """
    for variable in variables:
        if variable not in EXOGENOUS_VARIABLES:
            raise KeyError(f"unknown exogenous variable {variable!r}")
    spans = list(spans)
    totals = np.array([s.completion_time for s in spans])
    comps = np.vstack([s.breakdown.as_array() for s in spans]) \
        if spans else np.empty((0, 0))
    curves: Dict[str, ExogenousCurve] = {}
    for variable in variables:
        have = np.fromiter((variable in s.annotations for s in spans),
                           dtype=bool, count=len(spans))
        if int(have.sum()) < n_buckets * 10:
            raise ValueError(f"need >= {n_buckets * 10} annotated spans, "
                             f"got {int(have.sum())}")
        values = np.array([s.annotations[variable]
                           for s, h in zip(spans, have) if h])
        curves[variable] = _curve_from_arrays(
            values, totals[have], comps[have], variable=variable,
            service=service, n_buckets=n_buckets,
            tail_percentile=tail_percentile, tail_tolerance=tail_tolerance)
    return curves


def _curve_from_arrays(values: np.ndarray, totals: np.ndarray,
                       comps: np.ndarray, variable: str, service: str,
                       n_buckets: int, tail_percentile: float,
                       tail_tolerance: float) -> ExogenousCurve:
    """The bucketing core shared by the scalar and batch entry points."""
    edges = np.quantile(values, np.linspace(0, 1, n_buckets + 1))
    edges[-1] += 1e-12
    centers, rows, counts = [], [], []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (values >= lo) & (values < hi)
        if mask.sum() < 5:
            continue
        t = totals[mask]
        p95 = np.percentile(t, tail_percentile)
        near = mask.copy()
        near[mask] = np.abs(t - p95) <= tail_tolerance * p95
        if near.sum() < 2:
            # Fall back to the top slice of the bucket.
            idx = np.where(mask)[0][np.argsort(t)[-3:]]
            near = np.zeros_like(mask)
            near[idx] = True
        centers.append(0.5 * (lo + hi))
        rows.append(comps[near].mean(axis=0))
        counts.append(int(near.sum()))
    centers = np.array(centers)
    rows = np.vstack(rows)
    tot = rows.sum(axis=1)
    corr = correlation(centers, tot)
    return ExogenousCurve(service=service, variable=variable,
                          bucket_centers=centers, component_values=rows,
                          counts=np.array(counts), correlation=corr)


def correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation; 0.0 when either side is degenerate."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) < 2 or np.std(x) == 0 or np.std(y) == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


@dataclass
class DiurnalSeries:
    """Fig. 18: windowed tail latency vs exogenous variables over a day."""

    service: str
    cluster: str
    window_starts: np.ndarray
    tail_latency_s: np.ndarray              # P95 per window
    variables: Dict[str, np.ndarray]      # variable -> per-window mean
    correlations: Dict[str, float]

    def rows(self):
        """Rows for the rendered text table."""
        return [(v, f"{c:+.2f}") for v, c in self.correlations.items()]

    def render(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(
            ("exogenous variable", "corr with P95 latency"), self.rows(),
            title=f"Fig. 18 — {self.service} @ {self.cluster}: 24h correlation",
        )


def diurnal_series(spans: Sequence[Span], cluster: str, service: str = "",
                   window_s: float = 1800.0,
                   variables: Sequence[str] = EXOGENOUS_VARIABLES
                   ) -> DiurnalSeries:
    """P95 latency and exogenous means per 30-minute window (paper cadence)."""
    spans = [s for s in spans if s.server_cluster == cluster]
    if not spans:
        raise ValueError(f"no spans for cluster {cluster!r}")
    t0 = min(s.start_time for s in spans)
    windows: Dict[int, List[Span]] = {}
    for s in spans:
        windows.setdefault(int((s.start_time - t0) // window_s), []).append(s)
    keys = sorted(k for k, v in windows.items() if len(v) >= 10)
    if len(keys) < 4:
        raise ValueError("need at least 4 populated windows")
    starts = np.array([t0 + k * window_s for k in keys])
    tail = np.array([
        np.percentile([s.completion_time for s in windows[k]], 95)
        for k in keys
    ])
    var_series: Dict[str, np.ndarray] = {}
    correlations: Dict[str, float] = {}
    for var in variables:
        series = np.array([
            np.mean([s.annotations.get(var, np.nan) for s in windows[k]])
            for k in keys
        ])
        var_series[var] = series
        correlations[var] = correlation(series, tail)
    return DiurnalSeries(service=service, cluster=cluster,
                         window_starts=starts, tail_latency_s=tail,
                         variables=var_series, correlations=correlations)
