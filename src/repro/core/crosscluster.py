"""Fig. 19: cross-cluster (WAN) latency breakdown.

Clients in many clusters call servers in one home cluster; the median
latency breakdown per client cluster, sorted by geographic distance, shows
the network-wire component growing from negligible (same datacenter) to
dominant (different continents) — and, per §3.3.5, median cross-cluster
latency should closely track the deterministic wire propagation (i.e., the
typical WAN RPC is *not* congested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.report import fmt_seconds, format_table
from repro.fleet.topology import Cluster
from repro.net.latency import NetworkModel, PathClass
from repro.obs.dapper import DapperCollector
from repro.rpc.stack import ComponentMatrix

__all__ = ["CrossClusterResult", "analyze_cross_cluster"]


@dataclass
class CrossClusterResult:
    """Computed statistics for this analysis; ``render()`` prints the paper-vs-measured table."""
    service: str
    client_clusters: List[str]       # sorted by median total latency
    path_classes: List[PathClass]
    median_components: np.ndarray    # (n_clusters, 9)
    wire_propagation_rtt_s: np.ndarray  # deterministic RTTs from the model
    wire_fraction: np.ndarray        # wire share of the median total

    def totals(self) -> np.ndarray:
        """Per-row total latencies (seconds)."""
        return self.median_components.sum(axis=1)

    def median_wire_vs_propagation(self) -> np.ndarray:
        """Measured median wire / deterministic propagation RTT; ≈1 means
        wire latency, not congestion, dominates (§3.3.5)."""
        from repro.rpc.stack import WIRE_COMPONENTS, COMPONENTS
        idx = [COMPONENTS.index(c) for c in WIRE_COMPONENTS]
        wire = self.median_components[:, idx].sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.wire_propagation_rtt_s > 0,
                            wire / self.wire_propagation_rtt_s, np.nan)

    def rows(self):
        """Rows for the rendered text table."""
        return [
            (c, pc.value, fmt_seconds(t), f"{wf:.2f}")
            for c, pc, t, wf in zip(self.client_clusters, self.path_classes,
                                    self.totals(), self.wire_fraction)
        ]

    def render(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(
            ("client cluster", "path class", "median total", "wire share"),
            self.rows(),
            title=f"Fig. 19 — {self.service}: cross-cluster latency breakdown",
        )


def analyze_cross_cluster(dapper: DapperCollector, service: str, method: str,
                          network: NetworkModel,
                          clusters_by_name: Dict[str, Cluster],
                          server_cluster: str,
                          min_spans: int = 30) -> CrossClusterResult:
    """Compute this figure's statistics from the study output."""
    spans = [
        s for s in dapper.spans_for_method(service, method)
        if s.server_cluster == server_cluster
    ]
    by_client: Dict[str, list] = {}
    for s in spans:
        by_client.setdefault(s.client_cluster, []).append(s)

    home = clusters_by_name[server_cluster]
    rows = []
    for client_name, client_spans in by_client.items():
        if len(client_spans) < min_spans:
            continue
        matrix = ComponentMatrix.from_breakdowns(
            [s.breakdown for s in client_spans]
        )
        totals = matrix.total()
        med = np.percentile(totals, 50)
        near = np.argsort(np.abs(totals - med))[:max(5, len(totals) // 10)]
        profile = matrix.values[near].mean(axis=0)
        client = clusters_by_name[client_name]
        rows.append((
            client_name,
            network.classify(client, home),
            profile,
            network.rtt_s(client, home),
        ))
    if not rows:
        raise ValueError("no client clusters with enough spans")
    rows.sort(key=lambda r: r[2].sum())
    comps = np.vstack([r[2] for r in rows])
    from repro.rpc.stack import COMPONENTS, WIRE_COMPONENTS
    idx = [COMPONENTS.index(c) for c in WIRE_COMPONENTS]
    totals = comps.sum(axis=1)
    wire = comps[:, idx].sum(axis=1)
    return CrossClusterResult(
        service=service,
        client_clusters=[r[0] for r in rows],
        path_classes=[r[1] for r in rows],
        median_components=comps,
        wire_propagation_rtt_s=np.array([r[3] for r in rows]),
        wire_fraction=wire / totals,
    )
