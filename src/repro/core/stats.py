"""Distribution machinery shared by the analyses.

The paper's signature visualization is the *per-method percentile heatmap*:
methods on the x-axis sorted by their median, and for each method a column
of percentiles (P1..P99). :func:`percentile_grid` computes that structure;
:class:`MethodPercentiles` wraps it with the quantile-of-quantiles queries
the paper's prose anchors use ("90 % of methods have P1 ≤ 657 µs" is
``grid.quantile_of('p1', 0.90)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["percentile_grid", "MethodPercentiles", "cdf_points",
           "weighted_mean", "percentiles_from_counts",
           "DEFAULT_PERCENTILES"]

DEFAULT_PERCENTILES = (1, 10, 25, 50, 75, 90, 99)


def cdf_points(values: Sequence[float],
               n_points: int = 100) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as (x, F(x)) arrays suitable for plotting/printing."""
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        return np.array([]), np.array([])
    qs = np.linspace(0, 100, n_points)
    return np.percentile(arr, qs), qs / 100.0


def percentiles_from_counts(values: Sequence[float], counts: Sequence[int],
                            qs: Sequence[float]) -> np.ndarray:
    """Exact percentiles of a multiset given as (value, count) pairs.

    Returns bitwise the same floats as
    ``np.percentile(np.repeat(values, counts), qs)`` (linear
    interpolation) without materializing the expansion, which is what
    lets the streaming study reducers report percentiles over hundreds
    of millions of samples from a histogram a few kilobytes wide.
    Percentiles depend only on order statistics, so the count
    representation loses nothing; the two order statistics bracketing
    each requested quantile are looked up with a ``searchsorted`` into
    the cumulative counts, and the interpolation replicates numpy's
    ``_lerp`` branch structure so round-off matches bit for bit.
    """
    values = np.asarray(values, dtype=np.float64)
    counts = np.asarray(counts, dtype=np.int64)
    if values.shape != counts.shape or values.ndim != 1:
        raise ValueError("values and counts must be 1-D and equal length")
    if values.size == 0 or counts.sum() <= 0:
        raise ValueError("empty multiset has no percentiles")
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    order = np.argsort(values, kind="stable")
    values = values[order]
    csum = np.cumsum(counts[order])
    n = int(csum[-1])
    h = (np.asarray(qs, dtype=np.float64) / 100.0) * (n - 1)
    lo = np.clip(np.floor(h).astype(np.int64), 0, n - 1)
    t = h - lo
    hi = np.minimum(lo + 1, n - 1)
    # sorted_multiset[k] == values[searchsorted(csum, k, side="right")]
    a = values[np.searchsorted(csum, lo, side="right")]
    b = values[np.searchsorted(csum, hi, side="right")]
    diff = b - a
    out = a + diff * t
    # numpy's _lerp computes from the right endpoint when t >= 0.5 to
    # keep the result monotone in t; mirror it exactly.
    mask = t >= 0.5
    out[mask] = b[mask] - diff[mask] * (1.0 - t[mask])
    return out


def weighted_mean(values: np.ndarray, weights: np.ndarray) -> float:
    """Mean of ``values`` weighted by ``weights``."""
    w = np.asarray(weights, dtype=float)
    v = np.asarray(values, dtype=float)
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must sum > 0")
    return float((v * w).sum() / total)


@dataclass
class MethodPercentiles:
    """Per-method percentile columns, sorted by median.

    ``grid[i, j]`` is percentile ``percentiles[j]`` of method ``i`` (methods
    ordered by ascending median). ``names`` preserves method identity.
    """

    names: List[str]
    percentiles: Tuple[int, ...]
    grid: np.ndarray  # shape (n_methods, n_percentiles)

    def __post_init__(self) -> None:
        if self.grid.shape != (len(self.names), len(self.percentiles)):
            raise ValueError(
                f"grid shape {self.grid.shape} does not match "
                f"{len(self.names)} methods x {len(self.percentiles)} percentiles"
            )

    # ------------------------------------------------------------------
    def column(self, percentile: int) -> np.ndarray:
        """All methods' values at one percentile (e.g. every method's P99)."""
        try:
            j = self.percentiles.index(percentile)
        except ValueError as exc:
            raise KeyError(f"percentile {percentile} not in grid") from exc
        return self.grid[:, j]

    def quantile_of(self, percentile: int, method_quantile: float) -> float:
        """Quantile across methods of a per-method percentile.

        ``quantile_of(99, 0.5)`` = the median method's P99 — the exact form
        of the paper's anchor sentences.
        """
        return float(np.quantile(self.column(percentile), method_quantile))

    def fraction_of_methods(self, percentile: int, *, at_least: float = None,
                            at_most: float = None) -> float:
        """Fraction of methods whose P{percentile} clears a threshold."""
        col = self.column(percentile)
        if (at_least is None) == (at_most is None):
            raise ValueError("pass exactly one of at_least/at_most")
        if at_least is not None:
            return float((col >= at_least).mean())
        return float((col <= at_most).mean())

    def __len__(self) -> int:
        return len(self.names)


def percentile_grid(samples_by_method: Mapping[str, np.ndarray],
                    percentiles: Sequence[int] = DEFAULT_PERCENTILES,
                    min_samples: int = 1) -> MethodPercentiles:
    """Build a :class:`MethodPercentiles` from per-method sample arrays.

    Methods with fewer than ``min_samples`` observations are dropped
    (the paper's ≥100-samples rule is applied by passing 100 here when the
    sampling volume supports it). Methods are sorted by median.
    """
    rows = []
    for name, samples in samples_by_method.items():
        arr = np.asarray(samples, dtype=float)
        if arr.size < min_samples:
            continue
        rows.append((name, np.percentile(arr, percentiles)))
    if not rows:
        return MethodPercentiles([], tuple(percentiles),
                                 np.zeros((0, len(percentiles))))
    median_j = list(percentiles).index(50) if 50 in percentiles else 0
    rows.sort(key=lambda r: r[1][median_j])
    names = [r[0] for r in rows]
    grid = np.vstack([r[1] for r in rows])
    return MethodPercentiles(names, tuple(percentiles), grid)
