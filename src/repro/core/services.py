"""Fig. 8: top services by invocations, bytes transferred, and CPU cycles.

The paper's three pie charts become three ranked share tables. The key
findings to reproduce: the top-8 services carry ~60 % of invocations;
Network Disk dominates calls *and* bytes while burning disproportionately
few cycles; compute services (F1, ML Inference) invert that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.fleetsample import FleetSample
from repro.core.report import fmt_percent, format_table
from repro.workloads import calibration as cal

__all__ = ["ServiceShareResult", "analyze_services"]


@dataclass
class ServiceShareResult:
    """Computed statistics for this analysis; ``render()`` prints the paper-vs-measured table."""
    shares: Dict[str, Dict[str, float]]  # service -> {calls, bytes, cycles}
    top8_call_share: float
    network_disk: Dict[str, float]

    def ranked(self, dimension: str, k: int = 10) -> List[Tuple[str, float]]:
        """Top-k services by one share dimension."""
        return sorted(
            ((svc, v[dimension]) for svc, v in self.shares.items()),
            key=lambda kv: -kv[1],
        )[:k]

    def rows(self):
        """Rows for the rendered text table."""
        out = [
            ("top-8 call share", fmt_percent(self.top8_call_share),
             fmt_percent(cal.TOP8_SERVICES_CALL_SHARE)),
            ("NetworkDisk calls", fmt_percent(self.network_disk["calls"]),
             fmt_percent(cal.NETWORK_DISK_CALL_SHARE)),
            ("NetworkDisk cycles", fmt_percent(self.network_disk["cycles"]),
             f"<{fmt_percent(cal.NETWORK_DISK_CYCLE_SHARE_MAX)}"),
        ]
        for svc, paper_cy, paper_ca in (
            ("F1", cal.F1_CYCLE_SHARE, cal.F1_CALL_SHARE),
            ("MLInference", cal.ML_INFERENCE_CYCLE_SHARE,
             cal.ML_INFERENCE_CALL_SHARE),
        ):
            s = self.shares.get(svc, {"calls": 0.0, "cycles": 0.0})
            out.append((f"{svc} cycles", fmt_percent(s["cycles"]),
                        fmt_percent(paper_cy)))
            out.append((f"{svc} calls", fmt_percent(s["calls"]),
                        fmt_percent(paper_ca)))
        return out

    def render(self) -> str:
        """Render the result as an aligned text table."""
        head = format_table(("statistic", "measured", "paper"), self.rows(),
                            title="Fig. 8 — service shares")
        by_calls = format_table(
            ("service", "calls", "bytes", "cycles"),
            [
                (svc, fmt_percent(self.shares[svc]["calls"]),
                 fmt_percent(self.shares[svc]["bytes"]),
                 fmt_percent(self.shares[svc]["cycles"]))
                for svc, _ in self.ranked("calls", 10)
            ],
            title="top services by invocations",
        )
        return head + "\n\n" + by_calls


def analyze_services(fleet: FleetSample) -> ServiceShareResult:
    """Compute this figure's statistics from the study output."""
    shares = fleet.service_shares()
    ranked = sorted(shares.items(), key=lambda kv: -kv[1]["calls"])
    top8 = sum(v["calls"] for _, v in ranked[:8])
    nd = shares.get("NetworkDisk", {"calls": 0.0, "bytes": 0.0, "cycles": 0.0})
    return ServiceShareResult(shares=shares, top8_call_share=top8,
                              network_disk=nd)
