"""Figs. 14 and 16: component-breakdown CDFs per service.

Fig. 14 stacks the nine components of RPCs *sorted by completion time*,
drawn as a CDF: the value at percentile p is the component profile of the
RPCs around that percentile. Fig. 16 shows the P95 breakdown per cluster,
sorted by total, exposing the 1.24-10x cross-cluster spread.

Both work purely on Dapper spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.report import fmt_seconds, format_table
from repro.obs.dapper import DapperCollector, Span
from repro.rpc.stack import COMPONENTS, ComponentMatrix

__all__ = ["BreakdownCdf", "ClusterBreakdownResult",
           "breakdown_cdf", "breakdown_cdf_for_service",
           "analyze_cluster_breakdowns", "dominant_component"]


@dataclass
class BreakdownCdf:
    """Per-percentile mean component profile (the Fig. 14 stacked CDF)."""

    service: str
    percentiles: np.ndarray          # x-axis, e.g. 1..99
    component_values: np.ndarray     # (n_pcts, 9): mean components at each pct
    n_spans: int

    def total_at(self, percentile: float) -> float:
        """Total latency at a completion-time percentile."""
        i = int(np.argmin(np.abs(self.percentiles - percentile)))
        return float(self.component_values[i].sum())

    def dominant_at(self, percentile: float) -> str:
        """Largest mean component at a percentile."""
        i = int(np.argmin(np.abs(self.percentiles - percentile)))
        return COMPONENTS[int(np.argmax(self.component_values[i]))]

    def dominant_share_at(self, percentile: float) -> float:
        """The dominant component's share at a percentile."""
        i = int(np.argmin(np.abs(self.percentiles - percentile)))
        row = self.component_values[i]
        return float(row.max() / row.sum()) if row.sum() > 0 else 0.0

    def p95_over_median(self) -> float:
        """Ratio of the P95 total to the median total."""
        return self.total_at(95) / self.total_at(50)

    def rows(self):
        """Rows for the rendered text table."""
        out = []
        for p in (50, 90, 95, 99):
            i = int(np.argmin(np.abs(self.percentiles - p)))
            row = self.component_values[i]
            out.append((
                f"P{p}", fmt_seconds(row.sum()), self.dominant_at(p),
                f"{self.dominant_share_at(p):.2f}",
            ))
        return out

    def render(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(
            ("percentile", "total", "dominant component", "share"),
            self.rows(),
            title=f"Fig. 14 — {self.service}: completion-time breakdown CDF",
        )


def breakdown_cdf(matrix: ComponentMatrix, service: str = "",
                  percentiles: Optional[Sequence[int]] = None,
                  bin_halfwidth: float = 2.0) -> BreakdownCdf:
    """Mean component profile of spans around each total-latency percentile."""
    if len(matrix) == 0:
        raise ValueError("no spans to analyze")
    percentiles = np.asarray(percentiles if percentiles is not None
                             else np.arange(1, 100), dtype=float)
    totals = matrix.total()
    order = np.argsort(totals)
    n = len(totals)
    values = np.empty((len(percentiles), matrix.values.shape[1]))
    for j, p in enumerate(percentiles):
        lo = int(np.clip((p - bin_halfwidth) / 100.0 * n, 0, n - 1))
        hi = int(np.clip((p + bin_halfwidth) / 100.0 * n, lo + 1, n))
        values[j] = matrix.values[order[lo:hi]].mean(axis=0)
    return BreakdownCdf(service=service, percentiles=percentiles,
                        component_values=values, n_spans=n)


def breakdown_cdf_for_service(dapper: DapperCollector, service: str,
                              method: str, intra_cluster_only: bool = True
                              ) -> BreakdownCdf:
    """Fig. 14 CDF from one service's Dapper spans."""
    spans = dapper.spans_for_method(service, method)
    if intra_cluster_only:
        spans = [s for s in spans if s.client_cluster == s.server_cluster]
    matrix = ComponentMatrix.from_breakdowns([s.breakdown for s in spans])
    return breakdown_cdf(matrix, service=service)


def dominant_component(matrix: ComponentMatrix) -> str:
    """The component with the largest mean over a span population."""
    return COMPONENTS[int(np.argmax(matrix.values.mean(axis=0)))]


@dataclass
class ClusterBreakdownResult:
    """Fig. 16: per-cluster P95 component profiles for one service."""

    service: str
    clusters: List[str]              # sorted by P95 total
    p95_components: np.ndarray       # (n_clusters, 9)
    spread: float                    # max/min of per-cluster P95 totals
    dominant_consistent: bool        # same dominant component across clusters

    def totals(self) -> np.ndarray:
        """Per-row total latencies (seconds)."""
        return self.p95_components.sum(axis=1)

    def rows(self):
        """Rows for the rendered text table."""
        return [
            (c, fmt_seconds(t), COMPONENTS[int(np.argmax(row))])
            for c, t, row in zip(self.clusters, self.totals(),
                                 self.p95_components)
        ]

    def render(self) -> str:
        """Render the result as an aligned text table."""
        table = format_table(
            ("cluster", "P95 total", "dominant"), self.rows(),
            title=f"Fig. 16 — {self.service}: P95 breakdown across clusters "
                  f"(spread {self.spread:.2f}x, paper 1.24-10x)",
        )
        return table


def analyze_cluster_breakdowns(dapper: DapperCollector, service: str,
                               method: str, min_spans: int = 50
                               ) -> ClusterBreakdownResult:
    """P95 component profile per server cluster (intra-cluster calls only)."""
    spans = [
        s for s in dapper.spans_for_method(service, method)
        if s.client_cluster == s.server_cluster
    ]
    by_cluster: Dict[str, List[Span]] = {}
    for s in spans:
        by_cluster.setdefault(s.server_cluster, []).append(s)

    rows = []
    for cluster, cluster_spans in by_cluster.items():
        if len(cluster_spans) < min_spans:
            continue
        matrix = ComponentMatrix.from_breakdowns(
            [s.breakdown for s in cluster_spans]
        )
        totals = matrix.total()
        p95 = np.percentile(totals, 95)
        # Profile of the spans nearest the P95 total.
        near = np.argsort(np.abs(totals - p95))[:max(5, len(totals) // 20)]
        rows.append((cluster, matrix.values[near].mean(axis=0)))
    if len(rows) < 2:
        raise ValueError(
            f"need >= 2 clusters with >= {min_spans} spans, got {len(rows)}"
        )
    rows.sort(key=lambda r: r[1].sum())
    clusters = [r[0] for r in rows]
    comps = np.vstack([r[1] for r in rows])
    totals = comps.sum(axis=1)
    dominants = {int(np.argmax(c)) for c in comps}
    return ClusterBreakdownResult(
        service=service,
        clusters=clusters,
        p95_components=comps,
        spread=float(totals.max() / totals.min()),
        dominant_consistent=len(dominants) == 1,
    )
