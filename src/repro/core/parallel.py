"""Deterministic process-parallel study runner.

The tree-shape studies are embarrassingly parallel — every tree is an
independent draw — but naive parallelism breaks reproducibility: handing
one shared RNG to N workers makes the result depend on scheduling. This
runner instead fixes the *sharding* ahead of time:

- the forest is split into fixed-size shards (independent of ``jobs``),
- shard *i* gets its own RNG seeded by ``derive_seed(seed, "tree-shard",
  i)`` and draws its own roots, trees, and shape samples,
- shard outputs are concatenated **in shard order** before analysis.

Because the per-shard work and the merge order are both functions of
``(seed, n_trees, shard_size)`` alone, ``--jobs 8`` is bit-identical to
``--jobs 1`` — the only thing parallelism changes is which worker happens
to execute a shard. ``jobs=1`` short-circuits the pool entirely and runs
shards in-process.

Workers rebuild the catalog and generator once (pool initializer) from the
picklable :class:`~repro.workloads.catalog.CatalogConfig`, so only small
``(shard_index, n_trees, seed)`` tuples and compact result arrays cross
process boundaries.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Tuple

import numpy as np

from repro.core.cache import StudyCache, study_key
from repro.core.calltree import (TreeShapeResult, analyze_tree_shape,
                                 build_generator)
from repro.rpc.calltree import (CallTreeGenerator, TreeShapeStats,
                                collect_flat_samples)
from repro.sim.random import derive_seed
from repro.workloads.catalog import Catalog, LAYER_LEAF, build_catalog

__all__ = ["DEFAULT_SHARD_SIZE", "shard_layout", "run_tree_study_parallel",
           "run_tree_study_cached"]

#: Trees per shard. Small enough to load-balance across workers, large
#: enough that batched generation stays efficient. Part of the result's
#: identity: changing it changes the RNG stream layout.
DEFAULT_SHARD_SIZE = 64

#: Metadata for the determinism analysis (RL006): functions in this
#: module run inside pool workers, so everything import-reachable from
#: here is scanned for hidden process-local state.
WORKER_ENTRYPOINTS = ("_init_worker", "_worker_shard")

_ShardArrays = Tuple[np.ndarray, np.ndarray, np.ndarray]

# Per-worker state, built once by the pool initializer, and rebuilt
# identically in every worker from the picklable catalog config — the
# pragmas below are the one sanctioned exception to RL006.
_worker_generator: Optional[CallTreeGenerator] = None  # repro-lint: disable=RL006 - rebuilt deterministically from keyed config by _init_worker
_worker_roots: Optional[Tuple[np.ndarray, np.ndarray]] = None  # repro-lint: disable=RL006 - rebuilt deterministically from keyed config by _init_worker


def shard_layout(n_trees: int, shard_size: int = DEFAULT_SHARD_SIZE
                 ) -> List[Tuple[int, int]]:
    """``(shard_index, n_trees_in_shard)`` pairs covering the forest."""
    if n_trees <= 0:
        raise ValueError(f"n_trees must be positive, got {n_trees}")
    if shard_size <= 0:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    return [(i, min(shard_size, n_trees - start))
            for i, start in enumerate(range(0, n_trees, shard_size))]


def _root_table(catalog: Catalog) -> Tuple[np.ndarray, np.ndarray]:
    """Non-leaf root ids and their normalized popularity weights."""
    roots = [m for m in catalog.methods if m.layer < LAYER_LEAF]
    if not roots:
        raise ValueError("catalog has no non-leaf methods to use as roots")
    w = np.array([m.popularity for m in roots])
    return np.array([m.method_id for m in roots]), w / w.sum()


def _run_shard(generator: CallTreeGenerator, ids: np.ndarray, w: np.ndarray,
               shard_index: int, n_trees: int, seed: int) -> _ShardArrays:
    """Generate one shard's forest with its own derived RNG stream."""
    rng = np.random.default_rng(derive_seed(seed, "tree-shard", shard_index))
    chosen = rng.choice(ids, size=n_trees, replace=True, p=w)
    return collect_flat_samples(generator, chosen, rng)


def _init_worker(config, max_nodes: int) -> None:
    """Pool initializer: build catalog + generator once per worker."""
    global _worker_generator, _worker_roots
    catalog = build_catalog(config)
    _worker_generator = build_generator(catalog, max_nodes=max_nodes)
    _worker_roots = _root_table(catalog)


def _worker_shard(task: Tuple[int, int, int]) -> _ShardArrays:
    """Run one shard inside a pool worker."""
    assert _worker_generator is not None and _worker_roots is not None
    shard_index, n_trees, seed = task
    ids, w = _worker_roots
    return _run_shard(_worker_generator, ids, w, shard_index, n_trees, seed)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap start), spawn otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def run_tree_study_parallel(catalog: Catalog, n_trees: int = 400,
                            seed: int = 0, jobs: int = 1,
                            max_nodes: int = 20000,
                            shard_size: int = DEFAULT_SHARD_SIZE
                            ) -> TreeShapeResult:
    """Sharded tree-shape study; bit-identical for any ``jobs`` value.

    Unlike :func:`repro.core.calltree.run_tree_study` (one RNG threaded
    through the whole forest), the RNG layout here is per-shard, so the
    result depends on ``(seed, n_trees, shard_size)`` but never on
    ``jobs`` or scheduling.
    """
    shards = shard_layout(n_trees, shard_size)
    if jobs <= 1 or len(shards) == 1:
        generator = build_generator(catalog, max_nodes=max_nodes)
        ids, w = _root_table(catalog)
        parts = [_run_shard(generator, ids, w, i, n, seed)
                 for i, n in shards]
    else:
        ctx = _pool_context()
        with ctx.Pool(processes=min(jobs, len(shards)),
                      initializer=_init_worker,
                      initargs=(catalog.config, max_nodes)) as pool:
            parts = pool.map(_worker_shard, [(i, n, seed) for i, n in shards])
    method_ids = np.concatenate([p[0] for p in parts])
    descendants = np.concatenate([p[1] for p in parts])
    ancestors = np.concatenate([p[2] for p in parts])
    stats = TreeShapeStats.from_arrays(method_ids, descendants, ancestors)
    return analyze_tree_shape(stats, n_trees=n_trees)


def run_tree_study_cached(catalog: Catalog, n_trees: int = 400,
                          seed: int = 0, jobs: int = 1,
                          max_nodes: int = 20000,
                          cache: Optional[StudyCache] = None
                          ) -> Tuple[TreeShapeResult, bool]:
    """``(result, was_cache_hit)`` for the sharded tree study.

    The key covers everything the result depends on — catalog config,
    seed, forest size, node budget, shard size — and deliberately *not*
    ``jobs``, which by construction cannot change the output.
    """
    if cache is None:
        return run_tree_study_parallel(
            catalog,  # repro-lint: disable=RL007 - catalog is rebuilt deterministically from catalog.config, which the key covers
            n_trees=n_trees, seed=seed,
            jobs=jobs,  # repro-lint: disable=RL007 - sharding is fixed ahead of time; jobs provably cannot change the result
            max_nodes=max_nodes), False
    key = study_key("tree-shape", seed, catalog.config, params={
        "n_trees": n_trees,
        "max_nodes": max_nodes,
        "shard_size": DEFAULT_SHARD_SIZE,
    })
    return cache.get_or_compute(key, lambda: run_tree_study_parallel(
        catalog, n_trees=n_trees, seed=seed, jobs=jobs, max_nodes=max_nodes))
