"""Deterministic out-of-core map-reduce runner for the tree studies.

The tree studies are embarrassingly parallel — every tree is an
independent draw — but naive parallelism breaks reproducibility and
naive materialization breaks memory: holding 10M generated trees (or
even their pooled per-node sample arrays) in process RSS caps studies
around 10^5 trees. This module fixes both with one plan:

- the forest is split into fixed-size shards (independent of ``jobs``),
- shard *i* gets its own RNG seeded by ``derive_seed(seed, "tree-shard",
  i)``, draws its own roots, and generates its trees in one batched
  breadth-first sweep (:meth:`~repro.rpc.calltree.CallTreeGenerator.
  generate_forest_flat`),
- **map** workers optionally spill each shard's columnar arrays through
  :class:`~repro.core.shardstore.ShardStore` (zero-copy ``np.memmap``
  on the way back in),
- **reduce** workers fold shards into bounded accumulator state —
  integer count histograms for tree shape
  (:class:`~repro.rpc.calltree.TreeShapeAccumulator`), shard-keyed path
  arrays for the critical path
  (:class:`~repro.core.critical_path.CriticalPathAccumulator`) — and
  the driver merges partial states in shard order.

Working-set math: at no point does more than one shard's forest exist
per process (spilled shards are memory-mapped and folded level by
level), and the fold state is O(methods × distinct values), so peak RSS
is bounded by ``shard_size × mean tree size`` plus the histograms —
independent of ``n_trees``. That is what lets 10M-trace studies run in
well under 2 GB (see docs/PERFORMANCE.md, "Out-of-core streaming").

Determinism: per-shard outputs are pure functions of ``(seed,
shard_index)`` and the generation parameters; shape histograms merge by
integer addition (order-free) and critical-path arrays are keyed by
shard index, so the result is bit-identical for any ``jobs`` value,
with spill on or off, and whether a shard was generated fresh or
replayed from disk. A corrupt or truncated spill segment behaves as a
miss (:meth:`ShardStore.get` unlinks it) and the shard is simply
regenerated from its derived seed — the recovery path *is* the normal
path.

Workers rebuild the catalog and generator once (pool initializer) from
the picklable :class:`~repro.workloads.catalog.CatalogConfig`, so only
small task tuples and compact folded states cross process boundaries.
"""

from __future__ import annotations

import multiprocessing
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cache import StudyCache, study_key
from repro.core.calltree import (TreeShapeResult, analyze_tree_shape_counts,
                                 build_generator)
from repro.core.critical_path import (CriticalPathAccumulator,
                                      CriticalPathResult,
                                      _sample_components,
                                      critical_path_forest)
from repro.core.shardstore import SPILL_SCHEMA, ShardStore
from repro.obs.manifest import config_digest
from repro.rpc.calltree import (CallTreeGenerator, FlatForest,
                                TreeShapeAccumulator)
from repro.sim.instrument import Probe, resolve_probe
from repro.sim.random import derive_seed
from repro.workloads.catalog import Catalog, LAYER_LEAF, build_catalog

__all__ = ["DEFAULT_SHARD_SIZE", "shard_layout", "spill_run_key",
           "run_tree_study_parallel", "run_tree_study_cached",
           "run_critical_path_study_parallel"]

#: Trees per shard. Large enough that the batched per-level RNG draws
#: amortize across thousands of trees (the streaming throughput lever),
#: small enough that one shard's forest stays a few-MB working set.
#: Part of the result's identity: changing it changes the RNG stream
#: layout.
DEFAULT_SHARD_SIZE = 2048

#: Metadata for the determinism analysis (RL006): functions in this
#: module run inside pool workers, so everything import-reachable from
#: here is scanned for hidden process-local state.
WORKER_ENTRYPOINTS = ("_init_worker", "_worker_map_shard",
                      "_worker_fold_range")

# Per-worker state, built once by the pool initializer, and rebuilt
# identically in every worker from the picklable catalog config — the
# pragmas below are the one sanctioned exception to RL006.
_worker_catalog: Optional[Catalog] = None  # repro-lint: disable=RL006 - rebuilt deterministically from keyed config by _init_worker
_worker_generator: Optional[CallTreeGenerator] = None  # repro-lint: disable=RL006 - rebuilt deterministically from keyed config by _init_worker
_worker_roots: Optional[Tuple[np.ndarray, np.ndarray]] = None  # repro-lint: disable=RL006 - rebuilt deterministically from keyed config by _init_worker
_worker_store: Optional[ShardStore] = None  # repro-lint: disable=RL006 - rebuilt deterministically from the spill path + run key by _init_worker

#: Shard descriptor: ``(shard_index, n_trees_in_shard)``.
_Shard = Tuple[int, int]


def shard_layout(n_trees: int, shard_size: int = DEFAULT_SHARD_SIZE
                 ) -> List[_Shard]:
    """``(shard_index, n_trees_in_shard)`` pairs covering the forest."""
    if n_trees <= 0:
        raise ValueError(f"n_trees must be positive, got {n_trees}")
    if shard_size <= 0:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    return [(i, min(shard_size, n_trees - start))
            for i, start in enumerate(range(0, n_trees, shard_size))]


def spill_run_key(config, seed: int, n_trees: int, shard_size: int,
                  max_nodes: int) -> str:
    """Directory name covering everything the spilled bytes depend on.

    Two runs share spilled shards iff they would generate identical
    forests, so the key digests the catalog config plus every
    generation parameter (and the spill schema so a format change
    orphans old directories instead of misreading them).
    """
    digest = config_digest({
        "spill_schema": SPILL_SCHEMA,
        "config": config.__dict__ if hasattr(config, "__dict__") else config,
        "seed": int(seed),
        "n_trees": int(n_trees),
        "shard_size": int(shard_size),
        "max_nodes": int(max_nodes),
    })
    return f"trees-{digest.split(':', 1)[1][:20]}"


def _root_table(catalog: Catalog) -> Tuple[np.ndarray, np.ndarray]:
    """Non-leaf root ids and their normalized popularity weights."""
    roots = [m for m in catalog.methods if m.layer < LAYER_LEAF]
    if not roots:
        raise ValueError("catalog has no non-leaf methods to use as roots")
    w = np.array([m.popularity for m in roots])
    return np.array([m.method_id for m in roots]), w / w.sum()


def _generate_shard(generator: CallTreeGenerator, ids: np.ndarray,
                    w: np.ndarray, shard_index: int, n_trees: int,
                    seed: int) -> FlatForest:
    """Generate one shard's forest with its own derived RNG stream."""
    rng = np.random.default_rng(derive_seed(seed, "tree-shard", shard_index))
    chosen = rng.choice(ids, size=n_trees, replace=True, p=w)
    return generator.generate_forest_flat(chosen, rng)


def _obtain_shard(generator: CallTreeGenerator, ids: np.ndarray,
                  w: np.ndarray, store: Optional[ShardStore],
                  shard_index: int, n_trees: int, seed: int
                  ) -> Tuple[FlatForest, int]:
    """``(forest, spilled_bytes)`` — replayed from the store when valid,
    regenerated (and re-spilled) otherwise. ``spilled_bytes`` is 0 for a
    replay."""
    if store is not None:
        forest = store.get(shard_index, expect_trees=n_trees)
        if forest is not None:
            return forest, 0
    forest = _generate_shard(generator, ids, w, shard_index, n_trees, seed)
    if store is not None:
        return forest, store.put(shard_index, forest)
    return forest, 0


# ----------------------------------------------------------------------
# Reducers: per-shard fold bodies, dispatched by name so tasks pickle.
# ----------------------------------------------------------------------

def _fold_shape(acc: Optional[TreeShapeAccumulator], catalog: Catalog,
                forest: FlatForest, seed: int, shard_index: int,
                max_nodes: int) -> TreeShapeAccumulator:
    """Fold one forest into the tree-shape histogram state."""
    if acc is None:
        acc = TreeShapeAccumulator(value_cap=max_nodes)
    acc.fold_forest(forest)
    return acc


def _fold_critical_path(acc: Optional[CriticalPathAccumulator],
                        catalog: Catalog, forest: FlatForest, seed: int,
                        shard_index: int, max_nodes: int
                        ) -> CriticalPathAccumulator:
    """Fold one forest's critical paths; latencies use a per-shard RNG."""
    if acc is None:
        acc = CriticalPathAccumulator()
    rng = np.random.default_rng(derive_seed(seed, "cp-latency", shard_index))
    app_s, tax_s = _sample_components(
        catalog, np.asarray(forest.method_ids), rng)
    acc.fold(shard_index, *critical_path_forest(forest, app_s, tax_s))
    return acc


_REDUCERS = {
    "shape": _fold_shape,
    "critical-path": _fold_critical_path,
}


# ----------------------------------------------------------------------
# Pool workers
# ----------------------------------------------------------------------

def _init_worker(config, max_nodes: int, spill_root: Optional[str],
                 run_key: Optional[str]) -> None:
    """Pool initializer: build catalog + generator (+ store) once."""
    global _worker_catalog, _worker_generator, _worker_roots, _worker_store
    _worker_catalog = build_catalog(config)
    _worker_generator = build_generator(_worker_catalog, max_nodes=max_nodes)
    _worker_roots = _root_table(_worker_catalog)
    _worker_store = (ShardStore(Path(spill_root), run_key)
                     if spill_root is not None else None)


def _worker_map_shard(task: Tuple[int, int, int]) -> Dict[str, int]:
    """Map phase: generate one shard, spill it, return its metadata."""
    assert _worker_generator is not None and _worker_roots is not None
    assert _worker_store is not None
    shard_index, n_trees, seed = task
    ids, w = _worker_roots
    forest = _generate_shard(_worker_generator, ids, w, shard_index,
                             n_trees, seed)
    n_bytes = _worker_store.put(shard_index, forest)
    return {"index": shard_index, "n_trees": n_trees,
            "n_nodes": forest.size, "n_bytes": n_bytes}


def _worker_fold_range(task) -> Tuple[object, List[Dict[str, int]]]:
    """Reduce phase: fold a contiguous shard range, return partial state.

    With a store, shards stream back as memmap views; a miss (corrupt or
    never-spilled segment) falls back to regeneration, which reproduces
    the shard bit for bit from its derived seed.
    """
    assert _worker_generator is not None and _worker_roots is not None
    assert _worker_catalog is not None
    shards, seed, reducer, max_nodes = task
    fold = _REDUCERS[reducer]
    ids, w = _worker_roots
    acc = None
    metas: List[Dict[str, int]] = []
    for shard_index, n_trees in shards:
        forest, n_bytes = _obtain_shard(_worker_generator, ids, w,
                                        _worker_store, shard_index,
                                        n_trees, seed)
        acc = fold(acc, _worker_catalog, forest, seed, shard_index,
                   max_nodes)
        metas.append({"index": shard_index, "n_trees": n_trees,
                      "n_nodes": forest.size, "n_bytes": n_bytes})
    state = acc.to_state() if reducer == "shape" else acc
    return state, metas


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap start), spawn otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def _ranges(shards: Sequence[_Shard], n_ranges: int) -> List[List[_Shard]]:
    """Split shards into at most ``n_ranges`` contiguous runs."""
    n_ranges = max(1, min(n_ranges, len(shards)))
    bounds = np.linspace(0, len(shards), n_ranges + 1).astype(int)
    return [list(shards[bounds[i]:bounds[i + 1]]) for i in range(n_ranges)
            if bounds[i] < bounds[i + 1]]


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def _fold_study(catalog: Catalog, n_trees: int, seed: int, jobs: int,
                max_nodes: int, shard_size: int, reducer: str,
                spill_dir=None, probe: Optional[Probe] = None):
    """Run the map-reduce plan; returns the merged accumulator.

    ``spill_dir`` turns on the out-of-core path: every shard is written
    to (or replayed from) ``spill_dir/<run_key>/`` and folded back as a
    memmap view, and the run is committed with a manifest. Without it,
    shards are folded straight from the generator — the same fold code
    on the same arrays, which is why the two paths agree bitwise.
    """
    probe = resolve_probe(probe)
    shards = shard_layout(n_trees, shard_size)
    fold = _REDUCERS[reducer]
    store = None
    if spill_dir is not None:
        store = ShardStore(Path(spill_dir),
                           spill_run_key(catalog.config, seed, n_trees,
                                         shard_size, max_nodes))
    all_metas: Dict[int, Dict[str, int]] = {}

    if jobs <= 1 or len(shards) == 1:
        generator = build_generator(catalog, max_nodes=max_nodes)
        ids, w = _root_table(catalog)
        acc = None
        for shard_index, n in shards:
            forest, n_bytes = _obtain_shard(generator, ids, w, store,
                                            shard_index, n, seed)
            if probe is not None and n_bytes:
                probe.shard_spilled(shard_index, n, forest.size, n_bytes)
            acc = fold(acc, catalog, forest, seed, shard_index, max_nodes)
            if probe is not None:
                probe.shard_folded(shard_index, n, forest.size)
            all_metas[shard_index] = {"index": shard_index, "n_trees": n,
                                      "n_nodes": forest.size,
                                      "n_bytes": n_bytes}
    else:
        ctx = _pool_context()
        spill_root = str(store.root) if store is not None else None
        run_key = store.run_key if store is not None else None
        with ctx.Pool(processes=min(jobs, len(shards)),
                      initializer=_init_worker,
                      initargs=(catalog.config, max_nodes, spill_root,
                                run_key)) as pool:
            if store is not None:
                # Map phase: spill every shard the store cannot already
                # replay (get() validates and unlinks corrupt segments).
                missing = [(i, n, seed) for i, n in shards
                           if store.get(i, expect_trees=n) is None]
                for meta in pool.map(_worker_map_shard, missing):
                    if probe is not None:
                        probe.shard_spilled(meta["index"], meta["n_trees"],
                                            meta["n_nodes"],
                                            meta["n_bytes"])
            # Reduce phase: fold contiguous ranges; merge in shard order.
            tasks = [(r, seed, reducer, max_nodes)
                     for r in _ranges(shards, jobs * 4)]
            acc = None
            for state, metas in pool.map(_worker_fold_range, tasks):
                part = (TreeShapeAccumulator.from_state(state)
                        if reducer == "shape" else state)
                if acc is None:
                    acc = part
                else:
                    acc.merge(part)
                for meta in metas:
                    if probe is not None:
                        if meta["n_bytes"]:
                            probe.shard_spilled(meta["index"],
                                                meta["n_trees"],
                                                meta["n_nodes"],
                                                meta["n_bytes"])
                        probe.shard_folded(meta["index"], meta["n_trees"],
                                           meta["n_nodes"])
                    all_metas[meta["index"]] = meta

    if store is not None:
        store.finalize([{k: v for k, v in all_metas[i].items()
                         if k != "n_bytes"}
                        for i, _ in shards if i in all_metas])
    return acc


def run_tree_study_parallel(catalog: Catalog, n_trees: int = 400,
                            seed: int = 0, jobs: int = 1,
                            max_nodes: int = 20000,
                            shard_size: int = DEFAULT_SHARD_SIZE,
                            spill_dir=None,
                            probe: Optional[Probe] = None
                            ) -> TreeShapeResult:
    """Sharded streaming tree-shape study.

    Bit-identical for any ``jobs`` value and with spill on or off: the
    RNG layout is per-shard, the fold state is integer histograms, and
    percentiles are computed once from the merged counts
    (:func:`~repro.core.calltree.analyze_tree_shape_counts` matches
    ``np.percentile`` of the expanded samples bitwise). The result
    depends on ``(seed, n_trees, shard_size, max_nodes)`` and the
    catalog config — never on ``jobs``, scheduling, or transport.
    """
    acc = _fold_study(catalog, n_trees, seed, jobs, max_nodes, shard_size,
                      "shape", spill_dir=spill_dir, probe=probe)
    return analyze_tree_shape_counts(acc, n_trees=n_trees)


def run_critical_path_study_parallel(catalog: Catalog, n_traces: int = 120,
                                     seed: int = 0, jobs: int = 1,
                                     max_nodes: int = 2000,
                                     shard_size: int = DEFAULT_SHARD_SIZE,
                                     spill_dir=None,
                                     probe: Optional[Probe] = None
                                     ) -> CriticalPathResult:
    """Sharded streaming critical-path study.

    Same plan as :func:`run_tree_study_parallel` with a different
    reducer: each shard synthesizes component latencies with its own
    ``derive_seed(seed, "cp-latency", shard_index)`` stream and folds
    per-path ``(depth, app, tax)`` arrays keyed by shard index, so the
    merged result is bitwise independent of ``jobs`` and spill. A spill
    directory written by the tree-shape study with identical generation
    parameters is replayed as-is — the spilled trees are the same.
    """
    acc = _fold_study(catalog, n_traces, seed, jobs, max_nodes, shard_size,
                      "critical-path", spill_dir=spill_dir, probe=probe)
    return acc.result()


def run_tree_study_cached(catalog: Catalog, n_trees: int = 400,
                          seed: int = 0, jobs: int = 1,
                          max_nodes: int = 20000,
                          shard_size: int = DEFAULT_SHARD_SIZE,
                          spill_dir=None,
                          cache: Optional[StudyCache] = None
                          ) -> Tuple[TreeShapeResult, bool]:
    """``(result, was_cache_hit)`` for the sharded tree study.

    The cache stores the *folded study state* — the compact count
    histograms, a few KB however many trees streamed through — rather
    than a result full of per-method arrays, and the final statistics
    are recomputed from the counts on every hit (exact, order-free).
    The key covers everything the state depends on — catalog config,
    seed, forest size, node budget, shard size — and deliberately *not*
    ``jobs`` or ``spill_dir``, which by construction cannot change the
    output.
    """
    if cache is None:
        return run_tree_study_parallel(
            catalog,  # repro-lint: disable=RL007 - catalog is rebuilt deterministically from catalog.config, which the key covers
            n_trees=n_trees, seed=seed,
            jobs=jobs,  # repro-lint: disable=RL007 - sharding is fixed ahead of time; jobs provably cannot change the result
            max_nodes=max_nodes, shard_size=shard_size,
            spill_dir=spill_dir,  # repro-lint: disable=RL007 - spill is transport, not semantics: folded state is bit-identical with spill on or off
        ), False
    key = study_key("tree-shape", seed, catalog.config, params={
        "n_trees": n_trees,
        "max_nodes": max_nodes,
        "shard_size": shard_size,
    })
    state = cache.load(key)
    if state is not None:
        acc = TreeShapeAccumulator.from_state(state)
        return analyze_tree_shape_counts(acc, n_trees=n_trees), True
    acc = _fold_study(catalog, n_trees, seed, jobs, max_nodes, shard_size,
                      "shape", spill_dir=spill_dir)
    cache.store(key, acc.to_state())
    return analyze_tree_shape_counts(acc, n_trees=n_trees), False
