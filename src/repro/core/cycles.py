"""Figs. 20-21: the RPC cycle tax and per-method CPU cost.

Fig. 20: the fraction of all fleet cycles burned by RPC-stack work and its
category split (compression dominates). Fig. 21: per-method per-call cycle
distributions — a fixed dispatch floor under every method, heavy tails
above it, and (the paper's scheduling point) per-call cost that correlates
with neither size nor latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.exogenous import correlation
from repro.core.fleetsample import FleetSample
from repro.core.report import fmt_percent, format_table
from repro.obs.gwp import GwpProfiler, TAX_CATEGORIES
from repro.workloads import calibration as cal

__all__ = ["CycleTaxResult", "MethodCyclesResult", "analyze_cycle_tax",
           "analyze_method_cycles"]


@dataclass
class CycleTaxResult:
    """Computed statistics for this analysis; ``render()`` prints the paper-vs-measured table."""
    tax_fraction: float
    category_fractions: Dict[str, float]

    PAPER = {
        "compression": cal.COMPRESSION_CYCLE_FRACTION,
        "networking": cal.NETWORKING_CYCLE_FRACTION,
        "serialization": cal.SERIALIZATION_CYCLE_FRACTION,
        "rpc_library": cal.RPC_LIBRARY_CYCLE_FRACTION,
    }

    def rows(self):
        """Rows for the rendered text table."""
        out = [("RPC cycle tax", fmt_percent(self.tax_fraction),
                fmt_percent(cal.FLEET_CYCLE_TAX_FRACTION))]
        for c in TAX_CATEGORIES:
            out.append((f"  {c}", fmt_percent(self.category_fractions[c]),
                        fmt_percent(self.PAPER[c])))
        return out

    def render(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(("statistic", "measured", "paper"), self.rows(),
                            title="Fig. 20 — RPC cycle tax")


def analyze_cycle_tax(gwp: GwpProfiler) -> CycleTaxResult:
    """Compute this figure's statistics from the study output."""
    return CycleTaxResult(
        tax_fraction=gwp.cycle_tax_fraction(),
        category_fractions=gwp.tax_fractions_of_fleet(),
    )


@dataclass
class MethodCyclesResult:
    """Computed statistics for this analysis; ``render()`` prints the paper-vs-measured table."""
    p10_band: Tuple[float, float]    # per-method P10 at 10th/90th pct method
    p90_band: Tuple[float, float]    # per-method P90 at 10th/90th pct method
    p99_over_median_median: float    # per-method P99/median, median across methods
    corr_cycles_latency: float       # across methods: mean cycles vs median RCT
    corr_cycles_size: float          # across methods: mean cycles vs mean size

    def rows(self):
        """Rows for the rendered text table."""
        return [
            ("per-method P10 @ 10%..90% methods",
             f"{self.p10_band[0]:.3f}..{self.p10_band[1]:.3f}",
             f"{cal.CHEAPEST_CALLS_P10_RANGE_CYCLES[0]}..{cal.CHEAPEST_CALLS_P10_RANGE_CYCLES[1]}"),
            ("per-method P90 @ 10%..90% methods",
             f"{self.p90_band[0]:.3f}..{self.p90_band[1]:.3f}",
             f"{cal.EXPENSIVE_CALLS_P90_RANGE_CYCLES[0]}..{cal.EXPENSIVE_CALLS_P90_RANGE_CYCLES[1]}+"),
            ("median per-method P99/median",
             f"{self.p99_over_median_median:.1f}x", "10-100x"),
            ("corr(cycles, latency) across methods",
             f"{self.corr_cycles_latency:+.2f}", "~0 (uncorrelated)"),
            ("corr(cycles, size) across methods",
             f"{self.corr_cycles_size:+.2f}", "~0 (uncorrelated)"),
        ]

    def render(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(("statistic", "measured", "paper"), self.rows(),
                            title="Fig. 21 — per-method CPU cycles")


def analyze_method_cycles(fleet: FleetSample) -> MethodCyclesResult:
    """Compute this figure's statistics from the study output."""
    methods = fleet.methods
    if not methods:
        raise ValueError("fleet sample has no methods")
    p10 = np.array([m.pct("cycles", 10) for m in methods])
    p50 = np.array([m.pct("cycles", 50) for m in methods])
    p90 = np.array([m.pct("cycles", 90) for m in methods])
    p99 = np.array([m.pct("cycles", 99) for m in methods])
    mean_cycles = np.array([m.mean_cycles for m in methods])
    median_rct = np.array([m.pct("rct", 50) for m in methods])
    mean_size = np.array([
        m.mean_request_bytes + m.mean_response_bytes for m in methods
    ])
    # Rank correlations in log space are the fair test for heavy-tailed
    # quantities: linear correlation is destroyed by outliers either way.
    return MethodCyclesResult(
        p10_band=(float(np.quantile(p10, 0.10)), float(np.quantile(p10, 0.90))),
        p90_band=(float(np.quantile(p90, 0.10)), float(np.quantile(p90, 0.90))),
        p99_over_median_median=float(np.median(p99 / p50)),
        corr_cycles_latency=correlation(np.log(mean_cycles), np.log(median_rct)),
        corr_cycles_size=correlation(np.log(mean_cycles), np.log(mean_size)),
    )
