"""Columnar on-disk spill format for generated forest shards.

The streaming study pipeline caps its working set by writing each shard's
:class:`~repro.rpc.calltree.FlatForest` to disk as one ``.npy`` file per
column and folding it back through a zero-copy ``np.load(mmap_mode="r")``
view. The formats are deliberately boring:

- ``<root>/<run_key>/shard-00042.method_ids.npy`` (int32), plus
  ``.parents.npy`` (int32), ``.depths.npy`` (int16), ``.tree_ids.npy``
  (int32) and ``.truncated.npy`` (bool, one flag per tree) — standard
  ``np.save`` output, so any numpy can open a spill directory.
- ``<root>/<run_key>/manifest.json`` — written *last*, atomically, as the
  commit point: per-shard tree/node counts plus the run key. A run
  directory without a manifest is an unfinished spill.

Durability follows :mod:`repro.core.cache`: every file is written to a
same-directory temp name and ``os.replace``d into place, and any
unreadable, truncated, or inconsistent shard behaves as a **miss** — the
corrupt files are unlinked and the caller regenerates that shard from its
derived seed, which by construction reproduces it bit for bit. A killed
writer can therefore never poison a later run.

The ``run_key`` names everything the spilled bytes depend on (catalog
config, seed, forest size, shard size, node budget — the same inputs as
the study-cache key), so a reused ``--spill-dir`` can only ever replay
shards into the run that would have generated them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.rpc.calltree import FlatForest

__all__ = ["SPILL_SCHEMA", "ShardStore"]

#: Bump to invalidate every existing spill directory (column set or
#: dtype change).
SPILL_SCHEMA = 1

#: Column name -> on-disk dtype. int32 node indices bound a shard to
#: 2**31 nodes (a shard is a few hundred thousand); int16 depths bound
#: trees to 32k levels (the generator caps at ``max_depth`` ~ dozens).
_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("method_ids", "int32"),
    ("parents", "int32"),
    ("depths", "int16"),
    ("tree_ids", "int32"),
)


class ShardStore:
    """One spill run directory: put/get forests by shard index.

    >>> import tempfile
    >>> store = ShardStore(tempfile.mkdtemp(), run_key="demo-run")
    >>> store.get(0) is None
    True
    """

    def __init__(self, root: os.PathLike, run_key: str):
        if not run_key or any(c in run_key for c in "/\\"):
            raise ValueError(f"run_key must be a plain name, got {run_key!r}")
        self.root = Path(root)
        self.run_key = run_key
        self.run_dir = self.root / run_key
        self.bytes_written = 0
        self.shards_reused = 0

    # -- paths ---------------------------------------------------------
    def shard_paths(self, shard_index: int) -> Dict[str, Path]:
        """Column name -> file path for one shard."""
        stem = f"shard-{shard_index:05d}"
        paths = {name: self.run_dir / f"{stem}.{name}.npy"
                 for name, _ in _COLUMNS}
        paths["truncated"] = self.run_dir / f"{stem}.truncated.npy"
        return paths

    @property
    def manifest_path(self) -> Path:
        """The run's commit point; absent until :meth:`finalize`."""
        return self.run_dir / "manifest.json"

    # -- writing -------------------------------------------------------
    def _atomic_save(self, path: Path, array: np.ndarray) -> int:
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with tmp.open("wb") as fh:
                np.save(fh, array)
            nbytes = tmp.stat().st_size
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return nbytes

    def put(self, shard_index: int, forest: FlatForest) -> int:
        """Spill one forest; returns bytes written."""
        self.run_dir.mkdir(parents=True, exist_ok=True)
        paths = self.shard_paths(shard_index)
        nbytes = 0
        for name, dtype in _COLUMNS:
            column = np.asarray(getattr(forest, name), dtype=dtype)
            nbytes += self._atomic_save(paths[name], column)
        nbytes += self._atomic_save(
            paths["truncated"], np.asarray(forest.truncated, dtype=bool))
        self.bytes_written += nbytes
        return nbytes

    def finalize(self, shards: List[Dict[str, int]]) -> None:
        """Atomically write the manifest that marks the run complete."""
        self.run_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": SPILL_SCHEMA,
            "run_key": self.run_key,
            "n_shards": len(shards),
            "shards": shards,
        }
        tmp = self.manifest_path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
            os.replace(tmp, self.manifest_path)
        finally:
            tmp.unlink(missing_ok=True)

    # -- reading -------------------------------------------------------
    def manifest(self) -> Optional[dict]:
        """The committed manifest, or ``None`` (missing/corrupt/foreign)."""
        try:
            payload = json.loads(self.manifest_path.read_text())
        except (OSError, ValueError):
            return None
        if (not isinstance(payload, dict)
                or payload.get("schema") != SPILL_SCHEMA
                or payload.get("run_key") != self.run_key):
            return None
        return payload

    def drop(self, shard_index: int) -> None:
        """Remove one shard's files (used when a shard fails validation)."""
        for path in self.shard_paths(shard_index).values():
            path.unlink(missing_ok=True)

    def get(self, shard_index: int,
            expect_trees: Optional[int] = None) -> Optional[FlatForest]:
        """Memory-mapped view of one spilled shard, or ``None`` on miss.

        Any failure to load — absent files, truncated ``.npy`` payloads,
        inconsistent column lengths, or a tree count that contradicts
        ``expect_trees`` — unlinks the shard and reports a miss, the
        same corrupt→miss+remove contract as the study cache, so the
        caller's only recovery path is the always-correct one:
        regenerate the shard from its derived seed.
        """
        paths = self.shard_paths(shard_index)
        columns: Dict[str, np.ndarray] = {}
        try:
            for name in paths:
                columns[name] = np.load(paths[name], mmap_mode="r",
                                        allow_pickle=False)
        except (OSError, ValueError):
            self.drop(shard_index)
            return None
        n_nodes = columns["method_ids"].shape
        n_trees = int(columns["truncated"].size)
        if (any(columns[name].shape != n_nodes for name, _ in _COLUMNS)
                or (expect_trees is not None and n_trees != expect_trees)):
            self.drop(shard_index)
            return None
        self.shards_reused += 1
        return FlatForest(method_ids=columns["method_ids"],
                          parents=columns["parents"],
                          depths=columns["depths"],
                          tree_ids=columns["tree_ids"],
                          n_trees=n_trees,
                          truncated=columns["truncated"])
