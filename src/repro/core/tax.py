"""Figs. 10-13: the RPC latency tax.

- Fig. 10a/b: fleet-average tax fraction and its wire/stack/queue split.
- Fig. 10c/d: the same at the P95 tail, where the tax balloons and skews
  toward the network.
- Fig. 11: per-method tax-ratio distributions.
- Fig. 12: per-method wire + processing/stack latency distributions.
- Fig. 13: per-method queueing latency distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.fleetsample import FleetSample
from repro.core.report import fmt_percent, fmt_seconds, format_table
from repro.workloads import calibration as cal

__all__ = ["FleetTaxResult", "TaxRatioResult", "NetstackResult", "QueueResult",
           "analyze_fleet_tax", "analyze_tax_ratio", "analyze_netstack",
           "analyze_queueing"]


# ----------------------------------------------------------------------
# Fig. 10
# ----------------------------------------------------------------------
@dataclass
class FleetTaxResult:
    """Computed statistics for this analysis; ``render()`` prints the paper-vs-measured table."""
    tax_fraction: float
    component_fractions: Dict[str, float]
    tail_tax_fraction: float
    tail_component_fractions: Dict[str, float]

    def rows(self):
        """Rows for the rendered text table."""
        f = self.component_fractions
        tf = self.tail_component_fractions
        return [
            ("avg tax fraction", fmt_percent(self.tax_fraction),
             fmt_percent(cal.FLEET_AVG_TAX_FRACTION)),
            ("  network", fmt_percent(f["network_wire"]),
             fmt_percent(cal.FLEET_AVG_NETWORK_FRACTION)),
            ("  proc+stack", fmt_percent(f["proc_stack"]),
             fmt_percent(cal.FLEET_AVG_PROC_STACK_FRACTION)),
            ("  queueing", fmt_percent(f["queueing"]),
             fmt_percent(cal.FLEET_AVG_QUEUE_FRACTION)),
            ("P95-tail tax fraction", fmt_percent(self.tail_tax_fraction),
             "significant; network-skewed"),
            ("  tail network", fmt_percent(tf["network_wire"]), "dominant"),
            ("  tail proc+stack", fmt_percent(tf["proc_stack"]), "-"),
            ("  tail queueing", fmt_percent(tf["queueing"]), "-"),
        ]

    def render(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(("statistic", "measured", "paper"), self.rows(),
                            title="Fig. 10 — fleet RPC latency tax")


def analyze_fleet_tax(fleet: FleetSample) -> FleetTaxResult:
    """Compute this figure's statistics from the study output."""
    return FleetTaxResult(
        tax_fraction=fleet.tax_fraction(),
        component_fractions=fleet.tax_component_fractions(),
        tail_tax_fraction=fleet.tail_tax_fraction(),
        tail_component_fractions=fleet.tail_tax_component_fractions(),
    )


# ----------------------------------------------------------------------
# Fig. 11
# ----------------------------------------------------------------------
@dataclass
class TaxRatioResult:
    """Computed statistics for this analysis; ``render()`` prints the paper-vs-measured table."""
    median_method_median_ratio: float
    top10pct_methods_median_ratio: float
    top10pct_methods_p90_ratio: float
    p99_ratio_span: tuple  # (min, max) of per-method P99 ratios

    def rows(self):
        """Rows for the rendered text table."""
        return [
            ("median-method median tax ratio",
             fmt_percent(self.median_method_median_ratio),
             fmt_percent(cal.MEDIAN_METHOD_TAX_RATIO)),
            ("top-10%-methods median tax ratio",
             fmt_percent(self.top10pct_methods_median_ratio),
             fmt_percent(cal.TOP10PCT_TAX_RATIO_MEDIAN)),
            ("top-10%-methods P90 tax ratio",
             fmt_percent(self.top10pct_methods_p90_ratio),
             fmt_percent(cal.TOP10PCT_TAX_RATIO_P90)),
            ("per-method P99 ratio span",
             f"{fmt_percent(self.p99_ratio_span[0])}-{fmt_percent(self.p99_ratio_span[1])}",
             "0.5%-99.99%"),
        ]

    def render(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(("statistic", "measured", "paper"), self.rows(),
                            title="Fig. 11 — per-method tax ratio")


def analyze_tax_ratio(fleet: FleetSample) -> TaxRatioResult:
    """Compute this figure's statistics from the study output."""
    med = np.array([m.pct("tax_ratio", 50) for m in fleet.methods])
    p90 = np.array([m.pct("tax_ratio", 90) for m in fleet.methods])
    p99 = np.array([m.pct("tax_ratio", 99) for m in fleet.methods])
    return TaxRatioResult(
        median_method_median_ratio=float(np.median(med)),
        top10pct_methods_median_ratio=float(np.quantile(med, 0.95)),
        top10pct_methods_p90_ratio=float(np.quantile(p90, 0.95)),
        p99_ratio_span=(float(p99.min()), float(p99.max())),
    )


# ----------------------------------------------------------------------
# Fig. 12
# ----------------------------------------------------------------------
@dataclass
class NetstackResult:
    """Computed statistics for this analysis; ``render()`` prints the paper-vs-measured table."""
    p99_quantiles: Dict[float, float]  # method-quantile -> P99 value (s)

    PAPER = {0.01: cal.NETSTACK_P99_FASTEST_1PCT_S,
             0.10: cal.NETSTACK_P99_FASTEST_10PCT_S,
             0.50: cal.NETSTACK_P99_MEDIAN_METHOD_S,
             0.90: cal.NETSTACK_P99_SLOWEST_10PCT_S,
             0.99: cal.NETSTACK_P99_SLOWEST_1PCT_S}

    def rows(self):
        """Rows for the rendered text table."""
        return [
            (f"P99 wire+stack @ method-q{q:.2f}",
             fmt_seconds(self.p99_quantiles[q]), fmt_seconds(self.PAPER[q]))
            for q in sorted(self.p99_quantiles)
        ]

    def render(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(("statistic", "measured", "paper"), self.rows(),
                            title="Fig. 12 — per-method wire + proc/stack")


def analyze_netstack(fleet: FleetSample) -> NetstackResult:
    """Compute this figure's statistics from the study output."""
    p99 = np.array([m.pct("netstack", 99) for m in fleet.methods])
    return NetstackResult(p99_quantiles={
        q: float(np.quantile(p99, q)) for q in (0.01, 0.10, 0.50, 0.90, 0.99)
    })


# ----------------------------------------------------------------------
# Fig. 13
# ----------------------------------------------------------------------
@dataclass
class QueueResult:
    """Computed statistics for this analysis; ``render()`` prints the paper-vs-measured table."""
    frac_median_under_360us: float
    frac_p99_under_102ms: float
    worst10pct_median_s: float
    worst10pct_p99_s: float

    def rows(self):
        """Rows for the rendered text table."""
        return [
            ("frac methods median queue<=360us",
             f"{self.frac_median_under_360us:.3f}", ">=0.50"),
            ("frac methods P99 queue<=102ms",
             f"{self.frac_p99_under_102ms:.3f}", ">=0.50"),
            ("worst-10% median queue", fmt_seconds(self.worst10pct_median_s),
             fmt_seconds(cal.QUEUE_MEDIAN_WORST_10PCT_S)),
            ("worst-10% P99 queue", fmt_seconds(self.worst10pct_p99_s),
             fmt_seconds(cal.QUEUE_P99_WORST_10PCT_S)),
        ]

    def render(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(("statistic", "measured", "paper"), self.rows(),
                            title="Fig. 13 — per-method queueing latency")


def analyze_queueing(fleet: FleetSample) -> QueueResult:
    """Compute this figure's statistics from the study output."""
    med = np.array([m.pct("queueing", 50) for m in fleet.methods])
    p99 = np.array([m.pct("queueing", 99) for m in fleet.methods])
    return QueueResult(
        frac_median_under_360us=float(
            (med <= cal.QUEUE_MEDIAN_HALF_OF_METHODS_S).mean()
        ),
        frac_p99_under_102ms=float((p99 <= cal.QUEUE_P99_HALF_OF_METHODS_S).mean()),
        worst10pct_median_s=float(np.quantile(med, 0.90)),
        worst10pct_p99_s=float(np.quantile(p99, 0.90)),
    )
