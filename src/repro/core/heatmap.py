"""ASCII rendering of the paper's per-method percentile heatmaps.

Fig. 2a (and its siblings 11a, 12a, 13a, 21a) plot methods on the x-axis
sorted by median, with a colour column per method spanning its P1..P99.
Without a plotting stack, this module renders the same structure as text:
density characters mark each method column's percentile bands on a
log-scaled y-axis, which is enough to *see* the paper's shapes — the
rising median staircase, the deep P1 reach of most methods, and the tail
ceiling.

>>> # print(render_heatmap(grid, title="Fig. 2a — RCT per method"))
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.core.stats import MethodPercentiles

__all__ = ["render_heatmap", "render_cdf"]

# Band characters from faint (P1-P99 envelope) to dense (median).
_BAND_CHARS = {"outer": ".", "inner": "+", "median": "@"}


def _log_bins(lo: float, hi: float, height: int) -> np.ndarray:
    lo = max(lo, 1e-12)
    hi = max(hi, lo * 10)
    return np.logspace(math.log10(lo), math.log10(hi), height + 1)


def render_heatmap(grid: MethodPercentiles, width: int = 72,
                   height: int = 16, title: Optional[str] = None,
                   unit: str = "s") -> str:
    """Render a per-method percentile grid as an ASCII heatmap.

    Methods are downsampled to ``width`` columns (preserving the median
    sort); rows are log-spaced latency bins, largest on top. Each column
    marks three nested bands: ``.`` spans P1-P99, ``+`` spans P10-P90, and
    ``@`` marks the median bin.
    """
    if len(grid) == 0:
        raise ValueError("empty percentile grid")
    pcts = grid.percentiles
    need = {1, 10, 50, 90, 99}
    if not need <= set(pcts):
        raise ValueError(f"grid needs percentiles {sorted(need)}, has {pcts}")

    n = len(grid)
    cols = np.linspace(0, n - 1, min(width, n)).astype(int)
    p = {q: grid.column(q)[cols] for q in (1, 10, 50, 90, 99)}

    lo = float(np.min(p[1]))
    hi = float(np.max(p[99]))
    edges = _log_bins(lo, hi, height)

    canvas: List[List[str]] = [[" "] * len(cols) for _ in range(height)]
    for j in range(len(cols)):
        for i in range(height):
            cell_lo, cell_hi = edges[i], edges[i + 1]
            char = None
            if p[1][j] <= cell_hi and p[99][j] >= cell_lo:
                char = _BAND_CHARS["outer"]
            if p[10][j] <= cell_hi and p[90][j] >= cell_lo:
                char = _BAND_CHARS["inner"]
            if cell_lo <= p[50][j] <= cell_hi:
                char = _BAND_CHARS["median"]
            if char:
                canvas[i][j] = char

    def label(v: float) -> str:
        """Axis label for one bin edge."""
        if v < 1e-3:
            return f"{v * 1e6:7.0f}u{unit}"
        if v < 1.0:
            return f"{v * 1e3:7.1f}m{unit}"
        return f"{v:7.2f}{unit} "

    lines = []
    if title:
        lines.append(title)
    for i in reversed(range(height)):
        prefix = label(edges[i + 1]) if i in (height - 1, height // 2, 0) \
            else " " * 9
        lines.append(f"{prefix}|{''.join(canvas[i])}")
    lines.append(" " * 9 + "+" + "-" * len(cols))
    lines.append(" " * 10 + f"methods 1..{n}, sorted by median "
                 f"(. = P1-P99, + = P10-P90, @ = median)")
    return "\n".join(lines)


def render_cdf(values: Sequence[float], width: int = 60, height: int = 12,
               title: Optional[str] = None, unit: str = "s") -> str:
    """Render a CDF (e.g. Fig. 2b's per-method tail latencies) as ASCII."""
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        raise ValueError("no values")
    qs = np.linspace(0, 100, width)
    xs = np.percentile(arr, qs)
    lo, hi = max(float(xs[0]), 1e-12), float(xs[-1])
    edges = _log_bins(lo, hi, height)
    lines = []
    if title:
        lines.append(title)
    for i in reversed(range(height)):
        row = []
        for j in range(width):
            row.append("#" if edges[i] <= xs[j] <= edges[i + 1] or
                       (xs[j] >= edges[i + 1] and i == height - 1) or
                       (xs[j] <= edges[i] and i == 0)
                       else " ")
        label = ""
        if i == height - 1:
            label = f"{hi:9.3g}"
        elif i == 0:
            label = f"{lo:9.3g}"
        lines.append(f"{label:>9}|{''.join(row)}")
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"percentile of methods 0..100 ({unit}, log y)")
    return "\n".join(lines)
