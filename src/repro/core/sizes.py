"""Figs. 6-7: RPC request sizes and response/request ratios (§2.5).

Also computes the Zerializer-style offload-coverage statistic the paper
derives from the size distribution: the fraction of messages that fit in a
single MTU (what an on-NIC deserialization offload could accelerate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fleetsample import FleetSample
from repro.core.report import fmt_bytes, format_table
from repro.net.flows import MTU_BYTES
from repro.workloads import calibration as cal

__all__ = ["SizeResult", "analyze_sizes"]


@dataclass
class SizeResult:
    """Computed statistics for this analysis; ``render()`` prints the paper-vs-measured table."""
    frac_req_median_under_1530: float
    frac_resp_median_under_315: float
    median_method_req_p90: float
    median_method_req_p99: float
    median_method_resp_p90: float
    median_method_resp_p99: float
    min_request_bytes: float
    frac_methods_write_dominant: float   # per-method median ratio < 1 (Fig. 7)
    median_method_ratio_p99: float       # heavy read tail
    mtu_coverage_by_calls: float         # requests fitting one MTU (call-weighted)

    def rows(self):
        """Rows for the rendered text table."""
        return [
            ("frac methods req median<=1530B",
             f"{self.frac_req_median_under_1530:.3f}", ">=0.50"),
            ("frac methods resp median<=315B",
             f"{self.frac_resp_median_under_315:.3f}", ">=0.50"),
            ("median-method req P90", fmt_bytes(self.median_method_req_p90),
             fmt_bytes(cal.P90_REQUEST_BYTES)),
            ("median-method req P99", fmt_bytes(self.median_method_req_p99),
             fmt_bytes(cal.P99_REQUEST_BYTES)),
            ("median-method resp P90", fmt_bytes(self.median_method_resp_p90),
             fmt_bytes(cal.P90_RESPONSE_BYTES)),
            ("median-method resp P99", fmt_bytes(self.median_method_resp_p99),
             fmt_bytes(cal.P99_RESPONSE_BYTES)),
            ("min request size", fmt_bytes(self.min_request_bytes),
             fmt_bytes(cal.MIN_MESSAGE_BYTES)),
            ("frac methods write-dominant (ratio<1)",
             f"{self.frac_methods_write_dominant:.3f}", "majority"),
            ("1-MTU offload coverage (calls)",
             f"{self.mtu_coverage_by_calls:.3f}", "majority but misses tail"),
        ]

    def render(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(("statistic", "measured", "paper"), self.rows(),
                            title="Figs. 6-7 — RPC sizes")


def analyze_sizes(fleet: FleetSample) -> SizeResult:
    """Compute this figure's statistics from the study output."""
    methods = fleet.methods
    if not methods:
        raise ValueError("fleet sample has no methods")
    req50 = np.array([m.pct("request_bytes", 50) for m in methods])
    resp50 = np.array([m.pct("response_bytes", 50) for m in methods])
    req90 = np.array([m.pct("request_bytes", 90) for m in methods])
    req99 = np.array([m.pct("request_bytes", 99) for m in methods])
    resp90 = np.array([m.pct("response_bytes", 90) for m in methods])
    resp99 = np.array([m.pct("response_bytes", 99) for m in methods])
    ratio50 = np.array([m.pct("size_ratio", 50) for m in methods])
    ratio99 = np.array([m.pct("size_ratio", 99) for m in methods])
    req1 = np.array([m.pct("request_bytes", 1) for m in methods])

    # Call-weighted single-MTU coverage: per method, fraction of its
    # percentile ladder under the MTU approximates its per-call coverage.
    pop = fleet.popularity()
    pcts = np.array(methods[0].percentiles, dtype=float)
    coverage = np.empty(len(methods))
    for i, m in enumerate(methods):
        under = m.request_bytes <= MTU_BYTES
        coverage[i] = pcts[under].max() / 100.0 if under.any() else 0.0
    mtu_cov = float((coverage * pop).sum() / pop.sum())

    return SizeResult(
        frac_req_median_under_1530=float(
            (req50 <= cal.MEDIAN_REQUEST_BYTES_HALF_OF_METHODS).mean()
        ),
        frac_resp_median_under_315=float(
            (resp50 <= cal.MEDIAN_RESPONSE_BYTES_HALF_OF_METHODS).mean()
        ),
        median_method_req_p90=float(np.median(req90)),
        median_method_req_p99=float(np.median(req99)),
        median_method_resp_p90=float(np.median(resp90)),
        median_method_resp_p99=float(np.median(resp99)),
        min_request_bytes=float(req1.min()),
        frac_methods_write_dominant=float((ratio50 < 1.0).mean()),
        median_method_ratio_p99=float(np.median(ratio99)),
        mtu_coverage_by_calls=mtu_cov,
    )
