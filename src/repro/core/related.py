"""§2.4's cross-study comparison: our call-graph shape vs published data.

The paper positions its tree-shape findings against three earlier studies:

- **Luo et al. (Alibaba, SoCC '21)** — >20,000 microservices; call graphs
  wider than deep, heavy-tailed sizes, similar depths at median and tail;
  Google's descendant tails are larger.
- **Huye et al. (Meta, ATC '23)** — request workflows with P99 depth 5-6,
  max depth 9-19, median blocks per trace 2-498, P99 ~1K-10K.
- **Gan et al. (DeathStarBench, ASPLOS '19)** — benchmark suite; service
  graph depths 3-9 and 21-41 total services, far smaller than production
  tails.

This module renders our measured tree shape next to those reported bands
and checks the qualitative relations the paper asserts (wider-than-deep
everywhere; production tails exceed benchmark-suite sizes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.calltree import TreeShapeResult
from repro.core.report import format_table

__all__ = ["RelatedWorkComparison", "compare_with_related_studies",
           "ALIBABA", "META", "DEATHSTARBENCH"]


@dataclass(frozen=True)
class PublishedShape:
    """Call-graph shape numbers as reported by a published study."""

    study: str
    venue: str
    depth_p99_range: tuple      # (low, high)
    max_depth_range: tuple
    size_median_range: tuple    # spans/blocks per trace
    size_p99_range: tuple


ALIBABA = PublishedShape(
    study="Luo et al. (Alibaba)", venue="SoCC '21",
    depth_p99_range=(4, 10), max_depth_range=(10, 20),
    size_median_range=(2, 40), size_p99_range=(100, 4000),
)
META = PublishedShape(
    study="Huye et al. (Meta)", venue="ATC '23",
    depth_p99_range=(5, 6), max_depth_range=(9, 19),
    size_median_range=(2, 498), size_p99_range=(1000, 10_000),
)
DEATHSTARBENCH = PublishedShape(
    study="Gan et al. (DSB)", venue="ASPLOS '19",
    depth_p99_range=(3, 9), max_depth_range=(3, 9),
    size_median_range=(21, 41), size_p99_range=(21, 41),
)


@dataclass
class RelatedWorkComparison:
    """Our measured call-graph shape vs the published bands."""
    ours_depth_p99: float
    ours_max_depth: int
    ours_size_median: float
    ours_size_p99: float

    def wider_than_deep(self) -> bool:
        """The shared finding across all four datasets."""
        return self.ours_size_p99 > 3 * self.ours_depth_p99

    def exceeds_benchmark_suite_tail(self) -> bool:
        """Production tails dwarf DeathStarBench's fixed graphs (§2.4)."""
        return self.ours_size_p99 > DEATHSTARBENCH.size_p99_range[1]

    def depth_consistent_with_meta(self) -> bool:
        """Depths land in the band Meta reports (the paper: 'similar')."""
        return self.ours_max_depth <= META.max_depth_range[1] + 3

    def rows(self):
        """Rows for the rendered text table."""
        def fmt_range(r):
            """Format a (low, high) band."""
            return f"{r[0]}-{r[1]}"

        out = [(
            "this reproduction",
            f"{self.ours_depth_p99:.0f}",
            f"{self.ours_max_depth}",
            f"{self.ours_size_median:.0f}",
            f"{self.ours_size_p99:.0f}",
        )]
        for pub in (ALIBABA, META, DEATHSTARBENCH):
            out.append((
                f"{pub.study} ({pub.venue})",
                fmt_range(pub.depth_p99_range),
                fmt_range(pub.max_depth_range),
                fmt_range(pub.size_median_range),
                fmt_range(pub.size_p99_range),
            ))
        return out

    def render(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(
            ("study", "P99 depth", "max depth", "median size", "P99 size"),
            self.rows(),
            title="§2.4 — call-graph shape across published studies",
        )


def compare_with_related_studies(trees: TreeShapeResult
                                 ) -> RelatedWorkComparison:
    """Reduce a tree study to the cross-study comparison quantities.

    Trace size is measured per *root* (descendants of depth-0 invocations
    plus one) — the published studies count whole request workflows, not
    per-invocation subtrees.
    """
    root_sizes = []
    for mid, desc in trees.per_method_descendants.items():
        anc = trees.per_method_ancestors[mid]
        root_sizes.extend(d + 1 for d, a in zip(desc, anc) if a == 0)
    if not root_sizes:
        raise ValueError("tree study contains no root invocations")
    sizes = np.asarray(root_sizes)
    all_anc = np.concatenate(list(trees.per_method_ancestors.values()))
    return RelatedWorkComparison(
        ours_depth_p99=float(np.percentile(all_anc, 99)),
        ours_max_depth=trees.max_depth_seen,
        ours_size_median=float(np.median(sizes)),
        ours_size_p99=float(np.percentile(sizes, 99)),
    )
