"""Fig. 2: per-method RPC completion time (heatmap + CDF).

The heatmap is per-method percentile columns sorted by median; the CDF
plots one percentile across methods. The anchor statistics quoted in §2.3
are computed exactly as stated in the text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.fleetsample import FleetSample
from repro.core.report import fmt_seconds, format_table
from repro.workloads import calibration as cal

__all__ = ["LatencyDistributionResult", "analyze_latency_distribution"]


@dataclass
class LatencyDistributionResult:
    """Fig. 2's content plus the §2.3 anchors."""

    # Heatmap: (n_methods, n_pcts) grid sorted by median RCT.
    method_names: List[str]
    percentiles: tuple
    grid: np.ndarray

    frac_p1_under_657us: float
    frac_median_over_10_7ms: float
    frac_p99_over_1ms: float
    median_method_p99_s: float
    slowest5_min_p1_s: float
    slowest5_min_p99_s: float

    def cdf_of_percentile(self, p: int) -> np.ndarray:
        """One percentile across methods, sorted (Fig. 2b series)."""
        return np.sort(self.grid[:, self.percentiles.index(p)])

    def rows(self):
        """Paper-vs-measured rows for the bench output."""
        return [
            ("frac methods P1<=657us", f"{self.frac_p1_under_657us:.3f}", "0.90"),
            ("frac methods median>=10.7ms",
             f"{self.frac_median_over_10_7ms:.3f}", "0.90"),
            ("frac methods P99>=1ms", f"{self.frac_p99_over_1ms:.3f}", "0.995"),
            ("median-method P99", fmt_seconds(self.median_method_p99_s),
             fmt_seconds(cal.P99_LATENCY_MEDIAN_METHOD_S)),
            ("slowest-5% min P1", fmt_seconds(self.slowest5_min_p1_s),
             fmt_seconds(cal.SLOWEST_5PCT_P1_S)),
            ("slowest-5% min P99", fmt_seconds(self.slowest5_min_p99_s),
             fmt_seconds(cal.SLOWEST_5PCT_P99_S)),
        ]

    def render(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(
            ("statistic", "measured", "paper"), self.rows(),
            title="Fig. 2 — per-method RPC completion time",
        )


def analyze_latency_distribution(fleet: FleetSample) -> LatencyDistributionResult:
    """Compute this figure's statistics from the study output."""
    methods = fleet.by_median_latency()
    if not methods:
        raise ValueError("fleet sample has no methods")
    pcts = methods[0].percentiles
    grid = np.vstack([m.rct for m in methods])
    p1 = grid[:, pcts.index(1)]
    p50 = grid[:, pcts.index(50)]
    p99 = grid[:, pcts.index(99)]
    n_slow = max(1, len(methods) // 20)
    slow = np.argsort(p50)[-n_slow:]
    return LatencyDistributionResult(
        method_names=[m.full_method for m in methods],
        percentiles=tuple(pcts),
        grid=grid,
        frac_p1_under_657us=float((p1 <= cal.P1_LATENCY_90PCT_OF_METHODS_S).mean()),
        frac_median_over_10_7ms=float(
            (p50 >= cal.MEDIAN_LATENCY_90PCT_OF_METHODS_S).mean()
        ),
        frac_p99_over_1ms=float((p99 >= 1e-3).mean()),
        median_method_p99_s=float(np.median(p99)),
        slowest5_min_p1_s=float(p1[slow].min()),
        slowest5_min_p99_s=float(p99[slow].min()),
    )
