"""Plain-text table rendering for benches and examples.

Every benchmark prints its figure/table as aligned rows through these
helpers, so paper-vs-measured comparisons read uniformly across the suite.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

__all__ = ["format_table", "fmt_seconds", "fmt_bytes", "fmt_percent", "fmt_num"]

Cell = Union[str, float, int]


def fmt_seconds(value: float) -> str:
    """Human-scale latency: picks µs/ms/s."""
    if value < 0:
        return f"-{fmt_seconds(-value)}"
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.2f}s"


def fmt_bytes(value: float) -> str:
    """Human-scale byte size (B/KB/MB)."""
    if value < 1024:
        return f"{value:.0f}B"
    if value < 1024**2:
        return f"{value / 1024:.1f}KB"
    return f"{value / 1024**2:.2f}MB"


def fmt_percent(value: float, digits: int = 2) -> str:
    """Percentage with fixed digits."""
    return f"{100 * value:.{digits}f}%"


def fmt_num(value: float, digits: int = 3) -> str:
    """Compact general-format number."""
    return f"{value:.{digits}g}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                 title: Optional[str] = None) -> str:
    """Render an aligned text table; numeric cells are right-aligned."""
    str_rows: List[List[str]] = []
    for row in rows:
        str_rows.append([
            cell if isinstance(cell, str) else fmt_num(float(cell))
            for cell in row
        ])
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
