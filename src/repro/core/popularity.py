"""Fig. 3: per-method call frequency and its skew (§2.3).

Two orderings matter: sorted by latency (Fig. 3 itself — popularity
concentrates at the fast end) and sorted by popularity (the top-10 = 58 %
/ top-100 = 91 % skew). The slowest-1000 statistic crosses the two views:
few calls, most of the total RPC time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fleetsample import FleetSample
from repro.core.report import format_table
from repro.workloads import calibration as cal

__all__ = ["PopularityResult", "analyze_popularity"]


@dataclass
class PopularityResult:
    """Computed statistics for this analysis; ``render()`` prints the paper-vs-measured table."""
    fastest_share: float       # call share of the fastest `head_k` methods
    head_k: int
    top1_share: float
    top10_share: float
    top100_share: float
    slowest_call_share: float  # call share of the slowest `slow_k` methods
    slowest_time_share: float  # ... and their share of total RPC time
    slow_k: int
    n_methods: int

    def rows(self):
        """Rows for the rendered text table."""
        return [
            (f"fastest-{self.head_k} call share", f"{self.fastest_share:.3f}",
             f"{cal.FASTEST_100_CALL_SHARE} (fastest 100 of 10k)"),
            ("top-1 method call share", f"{self.top1_share:.3f}",
             f"{cal.NETWORK_DISK_WRITE_CALL_SHARE}"),
            ("top-10 call share", f"{self.top10_share:.3f}",
             f"{cal.TOP_10_CALL_SHARE}"),
            ("top-100 call share", f"{self.top100_share:.3f}",
             f"{cal.TOP_100_CALL_SHARE}"),
            (f"slowest-{self.slow_k} call share",
             f"{self.slowest_call_share:.4f}",
             f"{cal.SLOWEST_1000_CALL_SHARE} (slowest 1000 of 10k)"),
            (f"slowest-{self.slow_k} time share",
             f"{self.slowest_time_share:.3f}",
             f"{cal.SLOWEST_1000_TIME_SHARE}"),
        ]

    def render(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(("statistic", "measured", "paper"), self.rows(),
                            title="Fig. 3 — method popularity skew")


def analyze_popularity(fleet: FleetSample) -> PopularityResult:
    """Computes Fig. 3's skew statistics, scaling the paper's absolute
    method counts (100 fastest, 1000 slowest of 10,000) to the catalog
    size in use."""
    pop = fleet.popularity()
    medians = np.array([m.pct("rct", 50) for m in fleet.methods])
    mean_rct = np.array([m.mean_rct for m in fleet.methods])
    n = len(pop)
    if n == 0:
        raise ValueError("fleet sample has no methods")
    head_k = max(1, round(n * 100 / cal.METHOD_COUNT))
    slow_k = max(1, round(n * 1000 / cal.METHOD_COUNT))
    order = np.argsort(medians)
    sorted_pop = np.sort(pop)[::-1]
    time_weight = pop * mean_rct
    slow_idx = order[-slow_k:]
    return PopularityResult(
        fastest_share=float(pop[order[:head_k]].sum()),
        head_k=head_k,
        top1_share=float(sorted_pop[0]),
        top10_share=float(sorted_pop[:10].sum()),
        top100_share=float(sorted_pop[:min(100, n)].sum()),
        slowest_call_share=float(pop[slow_idx].sum()),
        slowest_time_share=float(time_weight[slow_idx].sum() / time_weight.sum()),
        slow_k=slow_k,
        n_methods=n,
    )
